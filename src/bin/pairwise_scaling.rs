//! Pairwise-scan scaling: naive `O(n²)` pair loops vs the blocking /
//! similarity-index paths, on selective-predicate synthetics at
//! 10k/50k/100k rows, for the three workloads the index machinery was
//! built for — MD discovery, FASTDC evidence-set construction, and MD
//! dedup clustering.  Results (wall-clock, speedups, identity checks) are
//! written to `BENCH_pairwise.json`.
//!
//! ```sh
//! cargo run --release --bin pairwise_scaling             # 10k/50k/100k
//! cargo run --release --bin pairwise_scaling -- --smoke  # tiny, CI gate
//! cargo run --release --bin pairwise_scaling -- --smoke --trace-out spans.jsonl
//! ```
//!
//! `--trace-out` attaches a tracer to the timed indexed runs and writes
//! their phase spans (`pairs.blocks` etc.) as JSONL.
//!
//! Every indexed result is asserted byte-identical to its naive baseline
//! (and identical at 1 vs 8 threads); the run aborts on any mismatch.
//! Naive baselines above [`NAIVE_CAP`] rows are skipped (recorded as
//! `null`): a 100k-row naive scan is 5·10⁹ pairs and exists only to be
//! avoided.  The FASTDC baseline at 50k is [`dc::evidence_sets_grouped`]
//! — itself a full Θ(n²) pair scan, just with bitwise predicate reuse —
//! while the plain per-predicate scan is additionally timed up to
//! [`PLAIN_DC_CAP`] rows.

use deptree::core::engine::obs::Tracer;
use deptree::core::engine::Exec;
use deptree::core::Md;
use deptree::discovery::dc::{self, FastDcStats};
use deptree::discovery::md::{self, MdConfig};
use deptree::metrics::Metric;
use deptree::quality::dedup;
use deptree::relation::{AttrSet, Relation, RelationBuilder, Value, ValueType};
use deptree::synth::{entities, EntitiesConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Largest size the naive baselines run at.
const NAIVE_CAP: usize = 50_000;
/// Largest size the per-predicate (ungrouped) FASTDC scan runs at.
const PLAIN_DC_CAP: usize = 10_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tracer = trace_out.as_ref().map(|_| Arc::new(Tracer::new()));
    let sizes: &[usize] = if smoke {
        &[300, 800]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let mut rows_json = Vec::new();
    for &n in sizes {
        println!("== {n} rows ==");
        let mut obj = format!("    {{\n      \"rows\": {n}");
        bench_md(n, &mut obj, tracer.as_ref());
        bench_dc(n, &mut obj, tracer.as_ref());
        bench_dedup(n, &mut obj, tracer.as_ref());
        obj.push_str("\n    }");
        rows_json.push(obj);
    }
    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        if let Err(e) = std::fs::write(path, tracer.to_jsonl()) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {} trace spans to {path}", tracer.spans().len());
    }
    let json = format!(
        "{{\n  \"bench\": \"pairwise_scaling\",\n  \"mode\": \"{}\",\n  \"naive_cap_rows\": {NAIVE_CAP},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows_json.join(",\n"),
    );
    if smoke {
        println!("{json}");
        println!("smoke: indexed ≡ naive on every workload");
    } else {
        if let Err(e) = std::fs::write("BENCH_pairwise.json", &json) {
            eprintln!("error: cannot write BENCH_pairwise.json: {e}");
            std::process::exit(2);
        }
        println!("wrote BENCH_pairwise.json");
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn push_metric(obj: &mut String, name: &str, naive_ms: Option<f64>, indexed_ms: f64) {
    let speedup = naive_ms.map(|nv| nv / indexed_ms.max(1e-9));
    // Writing into a String is infallible.
    let _ = write!(
        obj,
        ",\n      \"{name}\": {{\"naive_ms\": {}, \"indexed_ms\": {indexed_ms:.3}, \"speedup\": {}, \"identical\": true}}",
        naive_ms.map_or("null".into(), |v| format!("{v:.3}")),
        speedup.map_or("null".into(), |v| format!("{v:.2}")),
    );
}

/// The indexed runs' executor, with the shared tracer attached when
/// `--trace-out` asked for one.
fn exec_with(threads: usize, tracer: Option<&Arc<Tracer>>) -> Exec {
    let exec = Exec::unbounded().with_threads(threads);
    match tracer {
        Some(t) => exec.with_tracer(Arc::clone(t)),
        None => exec,
    }
}

/// Finish a builder whose shape is fixed by the code above it; arity
/// mistakes are programmer errors, reported without a panic/backtrace.
fn built(b: RelationBuilder) -> Relation {
    match b.build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: internal workload builder produced an invalid relation: {e}");
            std::process::exit(4);
        }
    }
}

/// Two selective numeric key columns plus a correlated dependent column —
/// the MD-discovery workload (all predicates band/equality ⇒ countable).
fn md_relation(n: usize) -> Relation {
    let mut b = RelationBuilder::new()
        .attr("a", ValueType::Numeric)
        .attr("b", ValueType::Numeric)
        .attr("c", ValueType::Numeric);
    for i in 0..n as i64 {
        b = b.row(vec![
            Value::int(i % 50),
            Value::int((i / 50) % 40),
            Value::int((i % 50) * 2 + i % 7),
        ]);
    }
    built(b)
}

fn render_mds(found: &[md::ScoredMd]) -> Vec<(String, u64, u64)> {
    found
        .iter()
        .map(|s| {
            (
                s.md.to_string(),
                s.support.to_bits(),
                s.confidence.to_bits(),
            )
        })
        .collect()
}

fn bench_md(n: usize, obj: &mut String, tracer: Option<&Arc<Tracer>>) {
    let r = md_relation(n);
    let rhs = AttrSet::single(r.schema().id("c"));
    let cfg = MdConfig {
        min_support: 0.001,
        min_confidence: 0.5,
        thresholds_per_attr: 1,
        max_lhs: 1,
    };
    let t0 = Instant::now();
    let fast = md::discover_bounded(&r, rhs, &cfg, &exec_with(1, tracer)).result;
    let indexed_ms = ms(t0.elapsed());
    let fast8 = md::discover_bounded(&r, rhs, &cfg, &Exec::unbounded().with_threads(8)).result;
    assert_eq!(
        render_mds(&fast),
        render_mds(&fast8),
        "MD discovery differs at 1 vs 8 threads"
    );
    let naive_ms = (n <= NAIVE_CAP).then(|| {
        let t0 = Instant::now();
        let slow = md::discover_naive(&r, rhs, &cfg);
        let elapsed = ms(t0.elapsed());
        assert_eq!(
            render_mds(&fast),
            render_mds(&slow),
            "indexed MD discovery differs from naive"
        );
        elapsed
    });
    println!(
        "  md_discovery : naive {}  indexed {indexed_ms:9.1}ms  ({} rules)",
        naive_ms.map_or("   skipped".into(), |v| format!("{v:9.1}ms")),
        fast.len()
    );
    push_metric(obj, "md_discovery", naive_ms, indexed_ms);
}

/// Two small-domain numeric columns — ≤1000 distinct tuples at any size,
/// so distinct-tuple blocking collapses the evidence scan.
fn dc_relation(n: usize) -> Relation {
    let mut b = RelationBuilder::new()
        .attr("x", ValueType::Numeric)
        .attr("y", ValueType::Numeric);
    for i in 0..n as i64 {
        b = b.row(vec![Value::int(i % 40), Value::int((i * 7) % 25)]);
    }
    built(b)
}

fn bench_dc(n: usize, obj: &mut String, tracer: Option<&Arc<Tracer>>) {
    let r = dc_relation(n);
    let preds = dc::predicate_space(&r);
    let mut stats = FastDcStats::default();
    let t0 = Instant::now();
    let (blocked, complete) =
        dc::evidence_sets_blocked(&r, &preds, &mut stats, &exec_with(1, tracer));
    let indexed_ms = ms(t0.elapsed());
    assert!(complete);
    let mut stats8 = FastDcStats::default();
    let (blocked8, _) =
        dc::evidence_sets_blocked(&r, &preds, &mut stats8, &Exec::unbounded().with_threads(8));
    assert_eq!(blocked, blocked8, "DC evidence differs at 1 vs 8 threads");
    assert_eq!(stats.pairs_evaluated, stats8.pairs_evaluated);
    let naive_ms = (n <= NAIVE_CAP).then(|| {
        let mut gstats = FastDcStats::default();
        let t0 = Instant::now();
        let grouped = dc::evidence_sets_grouped(&r, &preds, &mut gstats);
        let elapsed = ms(t0.elapsed());
        assert_eq!(blocked, grouped, "blocked DC evidence differs from naive");
        assert_eq!(stats.pairs_evaluated, gstats.pairs_evaluated);
        elapsed
    });
    let plain_ms = (n <= PLAIN_DC_CAP).then(|| {
        let mut pstats = FastDcStats::default();
        let t0 = Instant::now();
        let plain = dc::evidence_sets(&r, &preds, &mut pstats);
        let elapsed = ms(t0.elapsed());
        assert_eq!(blocked, plain, "blocked DC evidence differs from plain");
        elapsed
    });
    println!(
        "  dc_evidence  : naive {}  indexed {indexed_ms:9.1}ms  ({} evidence sets)",
        naive_ms.map_or("   skipped".into(), |v| format!("{v:9.1}ms")),
        blocked.len()
    );
    push_metric(obj, "dc_evidence", naive_ms, indexed_ms);
    let _ = write!(
        obj,
        ",\n      \"dc_evidence_plain_ms\": {}",
        plain_ms.map_or("null".into(), |v| format!("{v:.3}")),
    );
}

fn bench_dedup(n: usize, obj: &mut String, tracer: Option<&Arc<Tracer>>) {
    let cfg = EntitiesConfig {
        n_entities: (n / 2).max(4),
        max_duplicates: 3,
        variety: 0.6,
        error_rate: 0.02,
        seed: 20260806,
    };
    let data = entities::generate(&cfg, &mut deptree::synth::rng(cfg.seed));
    let r = &data.relation;
    let s = r.schema();
    let mds = vec![
        Md::new(
            s,
            vec![(s.id("zip"), Metric::Equality, 0.0)],
            AttrSet::single(s.id("name")),
        ),
        Md::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 5.0)],
            AttrSet::single(s.id("name")),
        ),
    ];
    let t0 = Instant::now();
    let fast = dedup::cluster(r, &mds);
    let indexed_ms = ms(t0.elapsed());
    let fast2 = dedup::cluster_bounded(r, &mds, &exec_with(8, tracer)).result;
    assert_eq!(
        fast.cluster, fast2.cluster,
        "dedup differs at 1 vs 8 threads"
    );
    let naive_ms = (r.n_rows() <= NAIVE_CAP).then(|| {
        let t0 = Instant::now();
        let slow = dedup::cluster_naive(r, &mds);
        let elapsed = ms(t0.elapsed());
        assert_eq!(
            fast.cluster, slow.cluster,
            "indexed dedup differs from naive"
        );
        elapsed
    });
    println!(
        "  dedup        : naive {}  indexed {indexed_ms:9.1}ms  ({} rows, {} clusters)",
        naive_ms.map_or("   skipped".into(), |v| format!("{v:9.1}ms")),
        r.n_rows(),
        fast.n_clusters
    );
    push_metric(obj, "dedup_cluster", naive_ms, indexed_ms);
    let _ = write!(obj, ",\n      \"dedup_rows\": {}", r.n_rows());
}
