//! Closed-loop load generator for `deptree serve`: keep-alive and the
//! versioned response cache, measured against close-per-request.
//!
//! ```sh
//! cargo run --release --bin serve_loadgen             # full: writes BENCH_serve.json
//! cargo run --release --bin serve_loadgen -- --smoke  # tiny, CI gate
//! ```
//!
//! Three server configurations, each a fresh in-process `deptree serve`
//! on an ephemeral port over the same seeded synthetic dataset:
//!
//! - `close` — `max_requests_per_conn = 1`, cache off: every request
//!   dials, sends, reads, and closes (the pre-keep-alive behavior);
//! - `keepalive` — connection reuse on, cache off;
//! - `keepalive_cache` — connection reuse on, response cache on.
//!
//! The workload is repeat-read: a fixed cycle of distinct
//! discover/validate/detect requests, the shape a profiling service
//! actually sees (the same questions asked again and again against an
//! unchanged dataset). Closed-loop client threads — each owning one
//! connection, issuing its next request only after the previous reply —
//! run at 1×/4×/16× the server's worker count for a fixed wall window;
//! requests/sec, p50/p99 latency and the shed rate (429/503 refusals)
//! are recorded per cell. `--smoke` runs just the 4× cells and asserts
//! the contracts CI gates on: keep-alive beats close-per-request,
//! cached replay is byte-identical, and the cache hit counter moved.
//!
//! Everything is seeded and closed-loop; no wall-clock-dependent request
//! mix, so two runs on the same machine measure the same schedule.

use deptree::relation::{Relation, RelationBuilder, Value, ValueType};
use deptree::serve::{self, ClientConfig, ConnPool, Json, ServeConfig, ServerHandle};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Worker threads per phase server (and the unit of load: 1× = this
/// many client threads).
const WORKERS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rows = if smoke { 1_500 } else { 8_000 };
    let window = if smoke {
        Duration::from_millis(1_500)
    } else {
        Duration::from_secs(5)
    };
    let loads: &[usize] = if smoke { &[4] } else { &[1, 4, 16] };

    let relation = bench_relation(rows);
    let bodies = request_mix();
    println!(
        "dataset: {rows} rows × {} columns; {} distinct requests in the cycle",
        relation.n_attrs(),
        bodies.len()
    );

    let mut phase_json = Vec::new();
    let mut rps_at_4x: Vec<(String, f64)> = Vec::new();
    let mut cache_identical = false;
    let mut cache_hits = 0.0;
    for phase in ["close", "keepalive", "keepalive_cache"] {
        let handle = spawn_phase_server(phase, &relation);
        let addr = handle.addr().to_string();
        // Populate-and-replay check before the timed window, so the
        // byte-identity claim in the JSON is about the cache itself and
        // not about two computations happening to agree.
        if phase == "keepalive_cache" {
            cache_identical = assert_cached_replay_identical(&addr, &bodies[0]);
        }
        let mut cells = Vec::new();
        for &load in loads {
            let threads = WORKERS * load;
            let cell = run_cell(&addr, phase != "close", threads, window, &bodies);
            println!(
                "{phase:>16} {load:>2}x: {:>8.1} req/s  p50 {:>7.2} ms  p99 {:>7.2} ms  shed {:.3}",
                cell.rps, cell.p50_ms, cell.p99_ms, cell.shed_rate
            );
            if load == 4 {
                rps_at_4x.push((phase.to_owned(), cell.rps));
            }
            let mut obj = String::new();
            let _ = write!(
                obj,
                "        {{\"load_x\": {load}, \"threads\": {threads}, \"requests\": {}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed\": {}, \"shed_rate\": {:.4}, \"errors\": {}}}",
                cell.completed, cell.rps, cell.p50_ms, cell.p99_ms, cell.shed, cell.shed_rate, cell.errors
            );
            cells.push(obj);
        }
        if phase == "keepalive_cache" {
            cache_hits = scrape_counter(&addr, "deptree_response_cache_hits_total");
        }
        handle.drain();
        handle.join();
        let mut obj = String::new();
        let _ = write!(
            obj,
            "    {{\n      \"phase\": \"{phase}\",\n      \"cells\": [\n{}\n      ]\n    }}",
            cells.join(",\n")
        );
        phase_json.push(obj);
    }

    let rps_of = |name: &str| -> f64 {
        rps_at_4x
            .iter()
            .find(|(p, _)| p == name)
            .map_or(0.0, |(_, r)| *r)
    };
    let close = rps_of("close");
    let keepalive = rps_of("keepalive");
    let cached = rps_of("keepalive_cache");
    let speedup = if close > 0.0 { cached / close } else { 0.0 };
    println!(
        "at 4x: close {close:.1} req/s, keepalive {keepalive:.1} req/s, keepalive+cache {cached:.1} req/s ({speedup:.2}x over close)"
    );
    println!("cache: replay byte-identical: {cache_identical}; hits counted: {cache_hits}");

    if !cache_identical {
        eprintln!("error: cached replay was not byte-identical to the reply that populated it");
        std::process::exit(3);
    }
    if cache_hits <= 0.0 {
        eprintln!("error: deptree_response_cache_hits_total never moved during the cache phase");
        std::process::exit(3);
    }
    if smoke {
        // The CI contracts. The full ≥2x floor is asserted on the real
        // benchmark below; the smoke sizes are too small to promise a
        // stable multiple, but reuse must never *lose* to re-dialing.
        if keepalive + cached <= 2.0 * close && cached <= close {
            eprintln!(
                "error: keep-alive did not beat close-per-request (close {close:.1}, keepalive {keepalive:.1}, cached {cached:.1} req/s)"
            );
            std::process::exit(3);
        }
        println!(
            "smoke: keep-alive + cache beat close-per-request; cache replays byte-identically"
        );
        return;
    }
    if speedup < 2.0 {
        eprintln!(
            "error: keep-alive + cache is only {speedup:.2}x over close-per-request at 4x (floor: 2x)"
        );
        std::process::exit(3);
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_loadgen\",\n  \"mode\": \"full\",\n  \"rows\": {rows},\n  \"workers\": {WORKERS},\n  \"window_ms\": {},\n  \"request_cycle\": {},\n  \"phases\": [\n{}\n  ],\n  \"rps_at_4x\": {{\"close\": {close:.1}, \"keepalive\": {keepalive:.1}, \"keepalive_cache\": {cached:.1}}},\n  \"keepalive_cache_vs_close_at_4x\": {speedup:.2},\n  \"cached_replay_byte_identical\": {cache_identical},\n  \"cache_hits_total\": {cache_hits}\n}}\n",
        window.as_millis(),
        bodies.len(),
        phase_json.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_serve.json", &json) {
        eprintln!("error: cannot write BENCH_serve.json: {e}");
        std::process::exit(2);
    }
    println!("wrote BENCH_serve.json");
}

/// A seeded dataset shaped like reference data: a functional key column,
/// a dependent column that mostly follows it, and enough co-varying
/// columns to make `discover` genuinely search.
fn bench_relation(n: usize) -> Relation {
    let mut b = RelationBuilder::new()
        .attr("city", ValueType::Categorical)
        .attr("region", ValueType::Categorical)
        .attr("zip", ValueType::Categorical)
        .attr("carrier", ValueType::Categorical)
        .attr("population", ValueType::Numeric);
    for i in 0..n as i64 {
        let city = i % 211;
        // One city in fifty points at the "wrong" region: detect and
        // validate have real violations to count.
        let region = if i % 50 == 0 { 97 } else { city % 23 };
        b = b.row(vec![
            Value::str(format!("c{city}")),
            Value::str(format!("r{region}")),
            Value::str(format!("z{}", city % 89)),
            Value::str(format!("k{}", i % 7)),
            Value::int(city * 1000 + (i % 13) * 17),
        ]);
    }
    match b.build() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: internal workload builder produced an invalid relation: {e}");
            std::process::exit(4);
        }
    }
}

/// The repeat-read cycle: distinct requests, every one cacheable.
fn request_mix() -> Vec<Json> {
    vec![
        Json::obj()
            .set("dataset", "bench")
            .set("max_lhs", 2u64)
            .set("timeout_ms", 30_000u64),
        Json::obj()
            .set("dataset", "bench")
            .set("rule", "city -> region")
            .set("timeout_ms", 30_000u64),
        Json::obj()
            .set("dataset", "bench")
            .set("rule", "zip, carrier -> region")
            .set("timeout_ms", 30_000u64),
        Json::obj()
            .set("dataset", "bench")
            .set("rule", "city -> region")
            .set("timeout_ms", 30_000u64),
    ]
}

/// The path each request in the cycle goes to (index-aligned with
/// [`request_mix`]): one discover, then validate/detect reads.
fn path_of(i: usize) -> &'static str {
    match i % 4 {
        0 => "/v1/discover",
        1 => "/v1/validate",
        2 => "/v1/detect",
        _ => "/v1/detect",
    }
}

fn spawn_phase_server(phase: &str, relation: &Relation) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        datasets: vec![("bench".to_owned(), relation.clone())],
        workers: WORKERS,
        max_connections: 256,
        queue_depth: 256,
        max_requests_per_conn: if phase == "close" { 1 } else { 1024 },
        keepalive_idle: Duration::from_millis(200),
        response_cache_bytes: if phase == "keepalive_cache" {
            64 << 20
        } else {
            0
        },
        ..ServeConfig::default()
    };
    match serve::spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot start the {phase} phase server: {e}");
            std::process::exit(2);
        }
    }
}

fn client_config(addr: &str) -> ClientConfig {
    ClientConfig {
        addr: addr.to_owned(),
        retries: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        io_timeout: Duration::from_secs(60),
        frame_timeout: Duration::from_secs(75),
        ..ClientConfig::default()
    }
}

/// One measured cell's client-side tallies.
struct Cell {
    completed: u64,
    shed: u64,
    errors: u64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed_rate: f64,
}

/// Run `threads` closed-loop clients against `addr` for `window`. Each
/// thread owns its connection (its own single-socket pool) and walks the
/// request cycle from a thread-distinct offset, so every distinct
/// request is always in flight somewhere.
fn run_cell(addr: &str, pooled: bool, threads: usize, window: Duration, bodies: &[Json]) -> Cell {
    let mut joins = Vec::new();
    for t in 0..threads {
        let addr = addr.to_owned();
        let bodies = bodies.to_vec();
        let spawned = std::thread::Builder::new()
            .name(format!("loadgen-{t}"))
            .spawn(move || {
                let config = client_config(&addr);
                let pool = ConnPool::new();
                let deadline = Instant::now() + window;
                let mut lat_ms: Vec<f64> = Vec::new();
                let (mut shed, mut errors) = (0u64, 0u64);
                let mut i = t; // distinct starting offset per thread
                while Instant::now() < deadline {
                    let body = &bodies[i % bodies.len()];
                    let path = path_of(i);
                    let t0 = Instant::now();
                    let outcome = if pooled {
                        serve::query_pooled(&pool, &config, "POST", path, Some(body))
                    } else {
                        serve::query(&config, "POST", path, Some(body))
                    };
                    match outcome {
                        Ok(_) => lat_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                        Err(e) if matches!(e.code.http_status(), 429 | 503) => shed += 1,
                        Err(_) => errors += 1,
                    }
                    i += 1;
                }
                (lat_ms, shed, errors)
            });
        match spawned {
            Ok(j) => joins.push(j),
            Err(e) => {
                eprintln!("error: cannot spawn load thread: {e}");
                std::process::exit(2);
            }
        }
    }
    let started = Instant::now();
    let mut lat_ms: Vec<f64> = Vec::new();
    let (mut shed, mut errors) = (0u64, 0u64);
    for j in joins {
        match j.join() {
            Ok((l, s, e)) => {
                lat_ms.extend(l);
                shed += s;
                errors += e;
            }
            Err(_) => errors += 1,
        }
    }
    let elapsed = window.as_secs_f64().max(started.elapsed().as_secs_f64());
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let completed = lat_ms.len() as u64;
    let issued = completed + shed + errors;
    Cell {
        completed,
        shed,
        errors,
        rps: completed as f64 / elapsed,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
        shed_rate: if issued == 0 {
            0.0
        } else {
            shed as f64 / issued as f64
        },
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * q).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Issue the same request twice on one pooled connection and require the
/// second (cached) reply to be byte-for-byte the first (the reply that
/// populated the cache). A fresh recompute would differ in its timing
/// stats; byte equality is the cache's replay contract.
fn assert_cached_replay_identical(addr: &str, body: &Json) -> bool {
    let config = client_config(addr);
    let pool = ConnPool::new();
    let payload = body.render().into_bytes();
    let first = serve::forward_pooled(&pool, &config, "POST", "/v1/discover", Some(&payload));
    let second = serve::forward_pooled(&pool, &config, "POST", "/v1/discover", Some(&payload));
    match (first, second) {
        (Ok(a), Ok(b)) => {
            if a.status != 200 || b.status != 200 {
                eprintln!(
                    "error: replay probe answered {} then {}",
                    a.status, b.status
                );
                return false;
            }
            a.body == b.body
        }
        (a, b) => {
            eprintln!(
                "error: replay probe failed: {} / {}",
                a.err().map_or_else(|| "ok".into(), |e| e.to_string()),
                b.err().map_or_else(|| "ok".into(), |e| e.to_string()),
            );
            false
        }
    }
}

/// Read one counter's value off the server's Prometheus exposition.
fn scrape_counter(addr: &str, series: &str) -> f64 {
    let config = client_config(addr);
    match serve::fetch_text(&config, "/metrics") {
        Ok((200, text)) => text
            .lines()
            .find(|l| l.starts_with(series))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
        Ok((status, _)) => {
            eprintln!("error: /metrics answered HTTP {status}");
            0.0
        }
        Err(e) => {
            eprintln!("error: /metrics scrape failed: {e}");
            0.0
        }
    }
}
