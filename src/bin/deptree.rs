//! `deptree` — command-line data-dependency profiler and cleaner.
//!
//! ```text
//! deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]
//!                            [--timeout-ms MS] [--max-nodes N] [--threads T] [--lossy]
//! deptree detect  <file.csv> --rule "<lhs> -> <rhs>" [--types ...] [--lossy]
//! deptree repair  <file.csv> --rule "<lhs> -> <rhs>" [--types ...] [--out repaired.csv]
//!                            [--timeout-ms MS] [--max-nodes N] [--threads T] [--lossy]
//! deptree tree
//! ```
//!
//! Column types: `c` categorical, `t` text, `n` numeric (default: all
//! categorical). `profile` runs approximate-FD, soft-FD, OD and DC
//! discovery and prints a report; `detect`/`repair` work with one FD-style
//! rule.
//!
//! ## Budgets and exit codes
//!
//! `--timeout-ms` and `--max-nodes` bound the search. When a budget runs
//! out, the partial (still sound) results are printed and the process
//! exits with a distinct status so scripts can tell "done" from
//! "truncated". Exit codes: 0 success, 1 usage, 2 I/O, 3 parse,
//! 4 relation, 5 config, 6 budget exhausted, 7 cancelled, 8 unsupported.
//!
//! ## Parallelism
//!
//! `--threads T` runs the discovery searches on `T` worker threads
//! (default: the `DEPTREE_THREADS` environment variable, else 1). Results
//! are identical at every thread count — parallelism changes wall-clock
//! time, never output.

use deptree::core::engine::{Budget, BudgetKind, Exec};
use deptree::core::{Dependency, DeptreeError, Fd};
use deptree::discovery::{cords, dc, od, tane};
use deptree::quality::repair;
use deptree::relation::{parse_csv, parse_csv_lossy, to_csv, Relation, ValueType};
use std::io::Write as _;
use std::process::ExitCode;

/// Print a line to stdout; if the reader has gone away (`deptree … |
/// head` closes the pipe), stop quietly instead of panicking on EPIPE —
/// the consumer asked for no more output.
macro_rules! say {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    };
}

/// Print a line to stderr, ignoring a closed stream: when stderr is gone
/// there is nobody left to warn, and dying over it would be worse.
macro_rules! esay {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($arg)*);
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            esay!("error: {msg}");
            esay!();
            esay!("usage:");
            esay!("  deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]");
            esay!("                             [--timeout-ms MS] [--max-nodes N] [--threads T]");
            esay!("                             [--lossy]");
            esay!("  deptree detect  <file.csv> --rule \"a, b -> c\" [--types ...] [--lossy]");
            esay!("  deptree repair  <file.csv> --rule \"a, b -> c\" [--types ...] [--out FILE]");
            esay!("                             [--timeout-ms MS] [--max-nodes N] [--threads T]");
            esay!("                             [--lossy]");
            esay!("  deptree tree");
            ExitCode::FAILURE
        }
        Err(CliError::Structured(e)) => {
            esay!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// CLI failures: malformed invocations keep the classic exit status 1 and
/// usage text; everything else carries a [`DeptreeError`] whose class
/// decides the exit status.
enum CliError {
    Usage(String),
    Structured(DeptreeError),
}

impl From<DeptreeError> for CliError {
    fn from(e: DeptreeError) -> Self {
        CliError::Structured(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("profile") => profile(&args[1..]),
        Some("detect") => detect(&args[1..]),
        Some("repair") => repair_cmd(&args[1..]),
        Some("tree") => {
            let art = deptree::core::familytree::ExtensionGraph::survey().to_ascii();
            // The payload carries its own trailing newline; ignore EPIPE.
            let _ = write!(std::io::stdout(), "{art}");
            Ok(())
        }
        Some(other) => Err(usage(format!("unknown command `{other}`"))),
        None => Err(usage("missing command")),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Build the execution budget from `--timeout-ms` / `--max-nodes`.
fn budget(args: &[String]) -> Result<Budget, CliError> {
    let mut b = Budget::default();
    if let Some(ms) = flag(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| usage("bad --timeout-ms"))?;
        b = b.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = flag(args, "--max-nodes") {
        let n: u64 = n.parse().map_err(|_| usage("bad --max-nodes"))?;
        b = b.with_max_nodes(n);
    }
    Ok(b)
}

/// Worker-thread count: `--threads` wins, else the `DEPTREE_THREADS`
/// environment default (else 1). Zero is clamped up to one worker.
fn threads(args: &[String]) -> Result<usize, CliError> {
    match flag(args, "--threads") {
        Some(t) => {
            let t: usize = t.parse().map_err(|_| usage("bad --threads"))?;
            Ok(t.max(1))
        }
        None => Ok(deptree::core::engine::default_threads()),
    }
}

fn load(args: &[String]) -> Result<Relation, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".csv"))
        .ok_or_else(|| usage("no input CSV given"))?;
    let text = std::fs::read_to_string(path).map_err(|e| DeptreeError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    let header_cols = text
        .lines()
        .next()
        .ok_or_else(|| DeptreeError::Parse(format!("{path}: empty file")))?
        .split(',')
        .count();
    let types: Vec<ValueType> = match flag(args, "--types") {
        Some(spec) => spec
            .split(',')
            .map(|t| match t.trim() {
                "c" => Ok(ValueType::Categorical),
                "t" => Ok(ValueType::Text),
                "n" => Ok(ValueType::Numeric),
                other => Err(usage(format!("unknown type `{other}` (use c, t or n)"))),
            })
            .collect::<Result<_, _>>()?,
        None => vec![ValueType::Categorical; header_cols],
    };
    if args.iter().any(|a| a == "--lossy") {
        let out = parse_csv_lossy(&text, &types).map_err(DeptreeError::from)?;
        for issue in &out.issues {
            esay!("warning: {path}: {issue}");
        }
        Ok(out.relation)
    } else {
        Ok(parse_csv(&text, &types).map_err(DeptreeError::from)?)
    }
}

/// After printing partial results, surface the truncation as the exit
/// status (code 6) so callers can distinguish complete from partial runs.
fn check_complete(exhausted: Option<BudgetKind>) -> Result<(), CliError> {
    match exhausted {
        None => Ok(()),
        Some(BudgetKind::Cancelled) => Err(DeptreeError::Cancelled.into()),
        Some(kind) => {
            esay!("note: {kind} exhausted — results above are sound but partial");
            Err(DeptreeError::BudgetExhausted(kind).into())
        }
    }
}

fn profile(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let max_lhs: usize = flag(args, "--max-lhs")
        .map(|v| v.parse().map_err(|_| usage("bad --max-lhs")))
        .transpose()?
        .unwrap_or(2);
    let error: f64 = flag(args, "--error")
        .map(|v| v.parse().map_err(|_| usage("bad --error")))
        .transpose()?
        .unwrap_or(0.0);
    let budget = budget(args)?;
    let threads = threads(args)?;
    let mut exhausted: Option<BudgetKind> = None;

    say!("{} rows × {} columns", r.n_rows(), r.n_attrs());
    say!();

    let kind = if error > 0.0 {
        "approximate FDs"
    } else {
        "exact FDs"
    };
    let exec = Exec::new(budget.clone()).with_threads(threads);
    let t = tane::discover_bounded(
        &r,
        &tane::TaneConfig {
            max_lhs,
            max_error: error,
        },
        &exec,
    );
    exhausted = exhausted.or(t.exhausted);
    say!(
        "== {kind} (TANE, max LHS {max_lhs}) — {} found{} ==",
        t.result.fds.len(),
        if t.complete { "" } else { ", search truncated" }
    );
    for fd in t.result.fds.iter().take(25) {
        say!("  {fd}");
    }
    if t.result.fds.len() > 25 {
        say!("  … and {} more", t.result.fds.len() - 25);
    }

    let c = cords::discover(
        &r,
        &cords::CordsConfig {
            min_strength: 0.8,
            ..Default::default()
        },
    );
    say!(
        "\n== soft FDs (CORDS, strength ≥ 0.8 on {}-row sample) — {} found ==",
        c.sampled_rows,
        c.sfds.len()
    );
    for sfd in c.sfds.iter().take(10) {
        say!("  {sfd} (strength {:.2})", sfd.strength(&r));
    }

    let numeric = r
        .schema()
        .iter()
        .filter(|(_, a)| a.ty == ValueType::Numeric)
        .count();
    if numeric >= 2 {
        let exec = Exec::new(budget.clone()).with_threads(threads);
        let ods = od::discover_bounded(&r, &od::OdConfig::default(), &exec);
        exhausted = exhausted.or(ods.exhausted);
        say!(
            "\n== order dependencies — {} found{} ==",
            ods.result.len(),
            if ods.complete {
                ""
            } else {
                ", search truncated"
            }
        );
        for o in ods.result.iter().take(10) {
            say!("  {o}");
        }
        if r.n_rows() <= 500 || !budget.is_unlimited() {
            let exec = Exec::new(budget.clone()).with_threads(threads);
            let d = dc::discover_bounded(&r, &dc::DcConfig::default(), &exec);
            exhausted = exhausted.or(d.exhausted);
            say!(
                "\n== denial constraints (FASTDC) — {} found{} ==",
                d.result.dcs.len(),
                if d.complete { "" } else { ", search truncated" }
            );
            for rule in d.result.dcs.iter().take(10) {
                say!("  {rule}");
            }
        } else {
            say!(
                "\n(skipping FASTDC: {} rows > 500; sample the file or pass --timeout-ms)",
                r.n_rows()
            );
        }
    }
    check_complete(exhausted)
}

fn parse_rule(args: &[String], r: &Relation) -> Result<Fd, CliError> {
    let rule = flag(args, "--rule").ok_or_else(|| usage("missing --rule \"lhs -> rhs\""))?;
    Fd::parse(r.schema(), &rule).ok_or_else(|| {
        DeptreeError::Parse(format!("cannot parse rule `{rule}` against the header")).into()
    })
}

fn detect(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let fd = parse_rule(args, &r)?;
    let violations = fd.violations(&r);
    say!(
        "{fd}: {} violation witness(es), g3 = {:.4}",
        violations.len(),
        fd.g3(&r)
    );
    for v in violations.iter().take(50) {
        let rows: Vec<String> = v.rows.iter().map(|row| format!("#{}", row + 1)).collect();
        say!("  rows {}", rows.join(" / "));
    }
    if violations.len() > 50 {
        say!("  … and {} more", violations.len() - 50);
    }
    Ok(())
}

fn repair_cmd(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let fd = parse_rule(args, &r)?;
    let exec = Exec::new(budget(args)?).with_threads(threads(args)?);
    let out_come = repair::repair_fds_bounded(&r, std::slice::from_ref(&fd), 10, &exec);
    let result = &out_come.result;
    say!(
        "repaired in {} iteration(s), {} cell(s) changed; rule now holds: {}",
        result.iterations,
        result.changes.len(),
        fd.holds(&result.relation)
    );
    let out = flag(args, "--out").unwrap_or_else(|| "repaired.csv".into());
    std::fs::write(&out, to_csv(&result.relation)).map_err(|e| DeptreeError::Io {
        path: out.clone(),
        message: e.to_string(),
    })?;
    say!("wrote {out}");
    check_complete(out_come.exhausted)
}
