//! `deptree` — command-line data-dependency profiler and cleaner.
//!
//! ```text
//! deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]
//! deptree detect  <file.csv> --rule "<lhs> -> <rhs>" [--types ...]
//! deptree repair  <file.csv> --rule "<lhs> -> <rhs>" [--types ...] [--out repaired.csv]
//! deptree tree
//! ```
//!
//! Column types: `c` categorical, `t` text, `n` numeric (default: all
//! categorical). `profile` runs approximate-FD, soft-FD, OD and DC
//! discovery and prints a report; `detect`/`repair` work with one FD-style
//! rule.

use deptree::core::{Dependency, Fd};
use deptree::discovery::{cords, dc, od, tane};
use deptree::quality::repair;
use deptree::relation::{parse_csv, to_csv, Relation, ValueType};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]");
            eprintln!("  deptree detect  <file.csv> --rule \"a, b -> c\" [--types ...]");
            eprintln!("  deptree repair  <file.csv> --rule \"a, b -> c\" [--types ...] [--out FILE]");
            eprintln!("  deptree tree");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("profile") => profile(&args[1..]),
        Some("detect") => detect(&args[1..]),
        Some("repair") => repair_cmd(&args[1..]),
        Some("tree") => {
            print!(
                "{}",
                deptree::core::familytree::ExtensionGraph::survey().to_ascii()
            );
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load(args: &[String]) -> Result<Relation, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".csv"))
        .ok_or("no input CSV given")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let header_cols = text
        .lines()
        .next()
        .ok_or("empty file")?
        .split(',')
        .count();
    let types: Vec<ValueType> = match flag(args, "--types") {
        Some(spec) => spec
            .split(',')
            .map(|t| match t.trim() {
                "c" => Ok(ValueType::Categorical),
                "t" => Ok(ValueType::Text),
                "n" => Ok(ValueType::Numeric),
                other => Err(format!("unknown type `{other}` (use c, t or n)")),
            })
            .collect::<Result<_, _>>()?,
        None => vec![ValueType::Categorical; header_cols],
    };
    parse_csv(&text, &types).map_err(|e| e.to_string())
}

fn profile(args: &[String]) -> Result<(), String> {
    let r = load(args)?;
    let max_lhs: usize = flag(args, "--max-lhs")
        .map(|v| v.parse().map_err(|_| "bad --max-lhs"))
        .transpose()?
        .unwrap_or(2);
    let error: f64 = flag(args, "--error")
        .map(|v| v.parse().map_err(|_| "bad --error"))
        .transpose()?
        .unwrap_or(0.0);

    println!("{} rows × {} columns", r.n_rows(), r.n_attrs());
    println!();

    let kind = if error > 0.0 { "approximate FDs" } else { "exact FDs" };
    let t = tane::discover(&r, &tane::TaneConfig { max_lhs, max_error: error });
    println!("== {kind} (TANE, max LHS {max_lhs}) — {} found ==", t.fds.len());
    for fd in t.fds.iter().take(25) {
        println!("  {fd}");
    }
    if t.fds.len() > 25 {
        println!("  … and {} more", t.fds.len() - 25);
    }

    let c = cords::discover(
        &r,
        &cords::CordsConfig {
            min_strength: 0.8,
            ..Default::default()
        },
    );
    println!(
        "\n== soft FDs (CORDS, strength ≥ 0.8 on {}-row sample) — {} found ==",
        c.sampled_rows,
        c.sfds.len()
    );
    for sfd in c.sfds.iter().take(10) {
        println!("  {sfd} (strength {:.2})", sfd.strength(&r));
    }

    let numeric = r
        .schema()
        .iter()
        .filter(|(_, a)| a.ty == ValueType::Numeric)
        .count();
    if numeric >= 2 {
        let ods = od::discover(&r, &od::OdConfig::default());
        println!("\n== order dependencies — {} found ==", ods.len());
        for o in ods.iter().take(10) {
            println!("  {o}");
        }
        if r.n_rows() <= 500 {
            let d = dc::discover(&r, &dc::DcConfig::default());
            println!("\n== denial constraints (FASTDC) — {} found ==", d.dcs.len());
            for rule in d.dcs.iter().take(10) {
                println!("  {rule}");
            }
        } else {
            println!("\n(skipping FASTDC: {} rows > 500; sample the file first)", r.n_rows());
        }
    }
    Ok(())
}

fn parse_rule(args: &[String], r: &Relation) -> Result<Fd, String> {
    let rule = flag(args, "--rule").ok_or("missing --rule \"lhs -> rhs\"")?;
    Fd::parse(r.schema(), &rule).ok_or_else(|| format!("cannot parse rule `{rule}` against the header"))
}

fn detect(args: &[String]) -> Result<(), String> {
    let r = load(args)?;
    let fd = parse_rule(args, &r)?;
    let violations = fd.violations(&r);
    println!("{fd}: {} violation witness(es), g3 = {:.4}", violations.len(), fd.g3(&r));
    for v in violations.iter().take(50) {
        let rows: Vec<String> = v.rows.iter().map(|row| format!("#{}", row + 1)).collect();
        println!("  rows {}", rows.join(" / "));
    }
    if violations.len() > 50 {
        println!("  … and {} more", violations.len() - 50);
    }
    Ok(())
}

fn repair_cmd(args: &[String]) -> Result<(), String> {
    let r = load(args)?;
    let fd = parse_rule(args, &r)?;
    let result = repair::repair_fds(&r, std::slice::from_ref(&fd), 10);
    println!(
        "repaired in {} iteration(s), {} cell(s) changed; rule now holds: {}",
        result.iterations,
        result.changes.len(),
        fd.holds(&result.relation)
    );
    let out = flag(args, "--out").unwrap_or_else(|| "repaired.csv".into());
    std::fs::write(&out, to_csv(&result.relation)).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
