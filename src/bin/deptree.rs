//! `deptree` — command-line data-dependency profiler, cleaner and server.
//!
//! ```text
//! deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]
//!                            [--timeout-ms MS] [--max-nodes N] [--threads T] [--lossy]
//!                            [--trace-out spans.jsonl]
//! deptree detect  <file.csv> --rule "<lhs> -> <rhs>" [--types ...] [--lossy]
//! deptree repair  <file.csv> --rule "<lhs> -> <rhs>" [--types ...] [--out repaired.csv]
//!                            [--timeout-ms MS] [--max-nodes N] [--threads T] [--lossy]
//!                            [--trace-out spans.jsonl]
//! deptree serve   --data name=path[:types] [--data ...] [--addr HOST:PORT]
//!                            [--workers N] [--queue-depth N] [--max-conns N]
//!                            [--default-timeout-ms MS] [--max-timeout-ms MS]
//!                            [--drain-grace-ms MS] [--threads T] [--lossy]
//!                            [--max-requests-per-conn N] [--keepalive-idle-ms MS]
//!                            [--response-cache-bytes N]
//! deptree query   <discover|validate|detect|repair|dedup|datasets|metrics|reload>
//!                            --addr HOST:PORT
//!                            [--dataset NAME] [--rule "..."] [--keys a,b] [--max-lhs K]
//!                            [--error E] [--timeout-ms MS] [--max-nodes N] [--max-rows N]
//!                            [--retries N] [--max-attempts N] [--seed S] [--out FILE]
//!                            [--repeat N]
//! deptree gateway --data name=path[:types] [--data ...] [--shard NAME] [--workers N]
//!                            [--addr HOST:PORT] [--worker-bin PATH] [--replicas N]
//!                            [--respawn-base-ms MS] [--respawn-max-ms MS]
//!                            [--quarantine-after K] [--quarantine-cooldown-ms MS]
//!                            [--probe-interval-ms MS] [--default-timeout-ms MS]
//!                            [--max-timeout-ms MS] [--drain-grace-ms MS]
//!                            [--child-grace-ms MS] [--chaos-plan SEED] [--threads T] [--lossy]
//! deptree tree
//! ```
//!
//! Column types: `c` categorical, `t` text, `n` numeric (default: all
//! categorical). `profile` runs approximate-FD, soft-FD, OD and DC
//! discovery and prints a report; `detect`/`repair` work with one FD-style
//! rule. `serve` exposes the same tasks over HTTP against preloaded
//! datasets (see DESIGN.md §10); `query` is the matching retry client.
//! `gateway` supervises a fleet of `serve` workers — crash respawn with
//! backoff, crash-loop quarantine, digest sharding and degraded-partial
//! fan-out (DESIGN.md §12).
//!
//! ## Budgets, cancellation and exit codes
//!
//! `--timeout-ms` and `--max-nodes` bound the search. When a budget runs
//! out — or Ctrl-C arrives mid-search — the partial (still sound) results
//! are printed and the process exits with a distinct status so scripts
//! can tell "done" from "truncated". Exit codes: 0 success, 1 usage,
//! 2 I/O, 3 parse, 4 relation, 5 config, 6 budget exhausted,
//! 7 cancelled, 8 unsupported. A second Ctrl-C force-exits (130).
//!
//! ## Parallelism
//!
//! `--threads T` runs the discovery searches on `T` worker threads
//! (default: the `DEPTREE_THREADS` environment variable, else 1). Results
//! are identical at every thread count — parallelism changes wall-clock
//! time, never output.

use deptree::core::engine::obs::Tracer;
use deptree::core::engine::{signal, Budget, BudgetKind, CancelToken, Exec};
use deptree::core::DeptreeError;
use deptree::relation::{parse_csv, parse_csv_lossy, to_csv, Relation, ValueType};
use deptree::serve::protocol::budget_from_wire;
use deptree::serve::{tasks, ClientConfig, DatasetSpec, GatewayConfig, Json, ServeConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Print a line to stdout; if the reader has gone away (`deptree … |
/// head` closes the pipe), stop quietly instead of panicking on EPIPE —
/// the consumer asked for no more output.
macro_rules! say {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    };
}

/// Print a line to stderr, ignoring a closed stream: when stderr is gone
/// there is nobody left to warn, and dying over it would be worse.
macro_rules! esay {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($arg)*);
    };
}

/// Print an already-rendered (newline-terminated) report to stdout with
/// the same EPIPE policy as [`say!`].
fn emit(text: &str) {
    if write!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            esay!("error: {msg}");
            esay!();
            esay!("usage:");
            esay!("  deptree profile <file.csv> [--types c,t,n,...] [--max-lhs K] [--error E]");
            esay!("                             [--timeout-ms MS] [--max-nodes N] [--threads T]");
            esay!("                             [--lossy] [--trace-out spans.jsonl]");
            esay!("  deptree detect  <file.csv> --rule \"a, b -> c\" [--types ...] [--lossy]");
            esay!("  deptree repair  <file.csv> --rule \"a, b -> c\" [--types ...] [--out FILE]");
            esay!("                             [--timeout-ms MS] [--max-nodes N] [--threads T]");
            esay!("                             [--lossy] [--trace-out spans.jsonl]");
            esay!("  deptree serve   --data name=path[:types] [--addr HOST:PORT] [--workers N]");
            esay!("                             [--queue-depth N] [--max-conns N] [--threads T]");
            esay!("                             [--default-timeout-ms MS] [--max-timeout-ms MS]");
            esay!("                             [--drain-grace-ms MS] [--lossy]");
            esay!(
                "                             [--max-requests-per-conn N] [--keepalive-idle-ms MS]"
            );
            esay!("                             [--response-cache-bytes N]");
            esay!(
                "  deptree query   <discover|validate|detect|repair|dedup|datasets|metrics|reload>"
            );
            esay!(
                "                             --addr HOST:PORT [--dataset NAME] [--rule \"...\"]"
            );
            esay!("                             [--keys a,b] [--timeout-ms MS] [--retries N]");
            esay!("                             [--max-attempts N] [--repeat N]");
            esay!("  deptree gateway --data name=path[:types] [--shard NAME] [--workers N]");
            esay!("                             [--addr HOST:PORT] [--worker-bin PATH] [--replicas N]");
            esay!("                             [--respawn-base-ms MS] [--quarantine-after K]");
            esay!("                             [--drain-grace-ms MS] [--chaos-plan SEED]");
            esay!("                             [--threads T] [--lossy]");
            esay!("  deptree tree");
            ExitCode::FAILURE
        }
        Err(CliError::Structured(e)) => {
            esay!("error: {e}");
            ExitCode::from(e.exit_code())
        }
        Err(CliError::Exit(code, msg)) => {
            esay!("error: {msg}");
            ExitCode::from(code)
        }
    }
}

/// CLI failures: malformed invocations keep the classic exit status 1 and
/// usage text; library failures carry a [`DeptreeError`] whose class
/// decides the exit status; remote failures already arrive as an exit
/// code + message from the protocol's error table.
enum CliError {
    Usage(String),
    Structured(DeptreeError),
    Exit(u8, String),
}

impl From<DeptreeError> for CliError {
    fn from(e: DeptreeError) -> Self {
        CliError::Structured(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("profile") => profile(&args[1..]),
        Some("detect") => detect(&args[1..]),
        Some("repair") => repair_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("gateway") => gateway_cmd(&args[1..]),
        Some("query") => query_cmd(&args[1..]),
        Some("tree") => {
            let art = deptree::core::familytree::ExtensionGraph::survey().to_ascii();
            // The payload carries its own trailing newline; ignore EPIPE.
            let _ = write!(std::io::stdout(), "{art}");
            Ok(())
        }
        Some(other) => Err(usage(format!("unknown command `{other}`"))),
        None => Err(usage("missing command")),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse an optional integer-valued flag.
fn num_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| usage(format!("bad {name}"))),
    }
}

/// Build the execution budget from `--timeout-ms` / `--max-nodes`.
fn budget(args: &[String]) -> Result<Budget, CliError> {
    let mut b = Budget::default();
    if let Some(ms) = num_flag(args, "--timeout-ms")? {
        b = b.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = num_flag(args, "--max-nodes")? {
        b = b.with_max_nodes(n);
    }
    Ok(b)
}

/// Worker-thread count: `--threads` wins, else the `DEPTREE_THREADS`
/// environment default (else 1). Zero is clamped up to one worker.
fn threads(args: &[String]) -> Result<usize, CliError> {
    match flag(args, "--threads") {
        Some(t) => {
            let t: usize = t.parse().map_err(|_| usage("bad --threads"))?;
            Ok(t.max(1))
        }
        None => Ok(deptree::core::engine::default_threads()),
    }
}

/// An `Exec` whose budget is also released by Ctrl-C: the first signal
/// cancels the token (the search winds down to its sound partial, the
/// process exits 7), a second force-exits.
fn interruptible_exec(args: &[String]) -> Result<Exec, CliError> {
    let token = CancelToken::new();
    signal::cancel_on_signal(token.clone());
    Ok(Exec::with_cancel(budget(args)?, token).with_threads(threads(args)?))
}

/// Attach a tracer to `exec` when `--trace-out <path>` is given. The
/// returned handle flushes the recorded spans as JSONL after the run.
fn with_trace(args: &[String], exec: Exec) -> (Exec, Option<(Arc<Tracer>, String)>) {
    match flag(args, "--trace-out") {
        Some(path) => {
            let tracer = Arc::new(Tracer::new());
            let exec = exec.with_tracer(Arc::clone(&tracer));
            (exec, Some((tracer, path)))
        }
        None => (exec, None),
    }
}

/// Write the spans collected by [`with_trace`] to the requested file.
/// Tracing is observation-only: a failed flush is an I/O error, but the
/// report already printed is complete and correct.
fn flush_trace(trace: Option<(Arc<Tracer>, String)>) -> Result<(), CliError> {
    if let Some((tracer, path)) = trace {
        std::fs::write(&path, tracer.to_jsonl()).map_err(|e| DeptreeError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        esay!("wrote {} trace spans to {path}", tracer.spans().len());
    }
    Ok(())
}

/// Parse a `--types` spec (`c,t,n,...`) into column types.
fn parse_types(spec: &str) -> Result<Vec<ValueType>, CliError> {
    spec.split(',')
        .map(|t| match t.trim() {
            "c" => Ok(ValueType::Categorical),
            "t" => Ok(ValueType::Text),
            "n" => Ok(ValueType::Numeric),
            other => Err(usage(format!("unknown type `{other}` (use c, t or n)"))),
        })
        .collect()
}

/// Load one CSV file with an optional type spec; `lossy` downgrades cell
/// errors to stderr warnings.
fn load_csv_file(path: &str, types_spec: Option<&str>, lossy: bool) -> Result<Relation, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| DeptreeError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let header_cols = text
        .lines()
        .next()
        .ok_or_else(|| DeptreeError::Parse(format!("{path}: empty file")))?
        .split(',')
        .count();
    let types = match types_spec {
        Some(spec) => parse_types(spec)?,
        None => vec![ValueType::Categorical; header_cols],
    };
    if lossy {
        let out = parse_csv_lossy(&text, &types).map_err(DeptreeError::from)?;
        for issue in &out.issues {
            esay!("warning: {path}: {issue}");
        }
        Ok(out.relation)
    } else {
        Ok(parse_csv(&text, &types).map_err(DeptreeError::from)?)
    }
}

fn load(args: &[String]) -> Result<Relation, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".csv"))
        .ok_or_else(|| usage("no input CSV given"))?;
    load_csv_file(
        path,
        flag(args, "--types").as_deref(),
        args.iter().any(|a| a == "--lossy"),
    )
}

/// After printing partial results, surface the truncation as the exit
/// status (code 6, or 7 when cancelled) so callers can distinguish
/// complete from partial runs.
fn check_complete(exhausted: Option<BudgetKind>) -> Result<(), CliError> {
    match exhausted {
        None => Ok(()),
        Some(BudgetKind::Cancelled) => {
            esay!("note: cancelled — results above are sound but partial");
            Err(DeptreeError::Cancelled.into())
        }
        Some(kind) => {
            esay!("note: {kind} exhausted — results above are sound but partial");
            Err(DeptreeError::BudgetExhausted(kind).into())
        }
    }
}

fn profile(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let opts = tasks::ProfileOpts {
        max_lhs: num_flag(args, "--max-lhs")?.unwrap_or(2) as usize,
        error: flag(args, "--error")
            .map(|v| v.parse().map_err(|_| usage("bad --error")))
            .transpose()?
            .unwrap_or(0.0),
    };
    let (exec, trace) = with_trace(args, interruptible_exec(args)?);
    let report = tasks::profile(&r, &opts, &exec);
    emit(&report.text);
    drop(exec);
    flush_trace(trace)?;
    check_complete(report.exhausted)
}

/// The `--rule` flag (shared by detect/repair/validate-style commands).
fn rule_flag(args: &[String]) -> Result<String, CliError> {
    flag(args, "--rule").ok_or_else(|| usage("missing --rule \"lhs -> rhs\""))
}

fn detect(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let report = tasks::detect(&r, &rule_flag(args)?)?;
    emit(&report.text);
    Ok(())
}

fn repair_cmd(args: &[String]) -> Result<(), CliError> {
    let r = load(args)?;
    let rule = rule_flag(args)?;
    let (exec, trace) = with_trace(args, interruptible_exec(args)?);
    let (report, repaired) = tasks::repair(&r, &rule, &exec)?;
    emit(&report.text);
    drop(exec);
    flush_trace(trace)?;
    let out = flag(args, "--out").unwrap_or_else(|| "repaired.csv".into());
    std::fs::write(&out, to_csv(&repaired)).map_err(|e| DeptreeError::Io {
        path: out.clone(),
        message: e.to_string(),
    })?;
    say!("wrote {out}");
    check_complete(report.exhausted)
}

/// Parse one `--data name=path[:types]` spec. The `:types` suffix is
/// only treated as a type list when it looks like one (`c`/`t`/`n`,
/// comma-separated), so paths containing `:` keep working.
fn parse_data_spec(spec: &str) -> Result<(String, String, Option<String>), CliError> {
    let Some((name, rest)) = spec.split_once('=') else {
        return Err(usage(format!(
            "bad --data `{spec}` (want name=path[:types])"
        )));
    };
    if name.is_empty() {
        return Err(usage(format!("bad --data `{spec}`: empty dataset name")));
    }
    if let Some((path, types)) = rest.rsplit_once(':') {
        let is_types = !types.is_empty() && types.split(',').all(|t| matches!(t, "c" | "t" | "n"));
        if is_types {
            return Ok((name.to_owned(), path.to_owned(), Some(types.to_owned())));
        }
    }
    Ok((name.to_owned(), rest.to_owned(), None))
}

/// All occurrences of a repeatable flag.
fn flag_all(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// `deptree serve`: preload datasets, run the daemon, drain gracefully on
/// SIGINT/SIGTERM and exit 0.
fn serve_cmd(args: &[String]) -> Result<(), CliError> {
    let specs = flag_all(args, "--data");
    if specs.is_empty() {
        return Err(usage("serve needs at least one --data name=path[:types]"));
    }
    let lossy = args.iter().any(|a| a == "--lossy");
    let mut datasets = Vec::new();
    for spec in &specs {
        let (name, path, types) = parse_data_spec(spec)?;
        let r = load_csv_file(&path, types.as_deref(), lossy)?;
        esay!(
            "loaded `{name}`: {} rows × {} columns",
            r.n_rows(),
            r.n_attrs()
        );
        datasets.push((name, r));
    }

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        datasets,
        max_connections: num_flag(args, "--max-conns")?
            .map_or(defaults.max_connections, |n| n as usize),
        queue_depth: num_flag(args, "--queue-depth")?.map_or(defaults.queue_depth, |n| n as usize),
        workers: num_flag(args, "--workers")?.map_or(defaults.workers, |n| n as usize),
        read_timeout: num_flag(args, "--read-timeout-ms")?
            .map_or(defaults.read_timeout, Duration::from_millis),
        frame_timeout: num_flag(args, "--frame-timeout-ms")?
            .map_or(defaults.frame_timeout, Duration::from_millis),
        write_timeout: num_flag(args, "--write-timeout-ms")?
            .map_or(defaults.write_timeout, Duration::from_millis),
        default_deadline: num_flag(args, "--default-timeout-ms")?
            .map_or(defaults.default_deadline, Duration::from_millis),
        max_deadline: num_flag(args, "--max-timeout-ms")?
            .map_or(defaults.max_deadline, Duration::from_millis),
        drain_grace: num_flag(args, "--drain-grace-ms")?
            .map_or(defaults.drain_grace, Duration::from_millis),
        threads: threads(args)?,
        limits: defaults.limits,
        max_requests_per_conn: num_flag(args, "--max-requests-per-conn")?
            .map_or(defaults.max_requests_per_conn, |n| (n as usize).max(1)),
        keepalive_idle: num_flag(args, "--keepalive-idle-ms")?
            .map_or(defaults.keepalive_idle, Duration::from_millis),
        // The CLI default turns the response cache ON (the library
        // default is off so embedded tests opt in): production traffic
        // is read-heavy and the cache is invalidation-safe by design.
        response_cache_bytes: num_flag(args, "--response-cache-bytes")?
            .map_or(64 << 20, |n| n as usize),
    };

    // Install the signal handler *before* announcing the listener: a
    // supervisor that reacts to "listening on" with an immediate SIGTERM
    // must find the counting handler in place, not the default one.
    signal::install();
    let handle = deptree::serve::spawn(config).map_err(CliError::from)?;
    say!("listening on {}", handle.addr());

    // First signal → graceful drain; second → force exit. The handler
    // only counts; this loop acts.
    while signal::received() == 0 {
        std::thread::sleep(Duration::from_millis(25));
    }
    esay!(
        "signal received — draining (in-flight: {})",
        handle.drain_state().inflight()
    );
    let force = std::thread::Builder::new()
        .name("deptree-force-exit".to_owned())
        .spawn(|| loop {
            if signal::received() >= 2 {
                // The contract a supervisor can script against: a second
                // SIGTERM mid-drain abandons in-flight work, says so on
                // stderr, and exits 130 — never 0, never a hang.
                esay!("forced shutdown during drain");
                std::process::exit(130);
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    drop(force);
    handle.drain();
    handle.join();
    esay!("drained; exiting");
    Ok(())
}

/// `deptree gateway`: supervise a fleet of `deptree serve` workers and
/// front them with sharding, health-probed respawn and degraded-partial
/// fan-out (DESIGN.md §12).
fn gateway_cmd(args: &[String]) -> Result<(), CliError> {
    let specs = flag_all(args, "--data");
    if specs.is_empty() {
        return Err(usage("gateway needs at least one --data name=path[:types]"));
    }
    let shard_names = flag_all(args, "--shard");
    let lossy = args.iter().any(|a| a == "--lossy");
    let mut datasets = Vec::new();
    for spec in &specs {
        let (name, path, types) = parse_data_spec(spec)?;
        let shard = shard_names.iter().any(|s| s == &name);
        datasets.push(DatasetSpec {
            name,
            path,
            types,
            shard,
        });
    }
    for shard in &shard_names {
        if !datasets.iter().any(|d| &d.name == shard) {
            return Err(usage(format!("--shard `{shard}` names no --data dataset")));
        }
    }

    let d = GatewayConfig::default();
    let mut listen = d.listen.clone();
    listen.addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    if let Some(n) = num_flag(args, "--max-conns")? {
        listen.max_connections = n as usize;
    }
    if let Some(n) = num_flag(args, "--queue-depth")? {
        listen.queue_depth = n as usize;
    }
    if let Some(ms) = num_flag(args, "--drain-grace-ms")? {
        listen.drain_grace = Duration::from_millis(ms);
    }
    let config = GatewayConfig {
        worker_bin: flag(args, "--worker-bin")
            .map(std::path::PathBuf::from)
            .unwrap_or(d.worker_bin),
        workers: num_flag(args, "--workers")?.map_or(d.workers, |n| (n as usize).max(1)),
        replicas: num_flag(args, "--replicas")?.map_or(d.replicas, |n| n as usize),
        datasets,
        lossy,
        worker_threads: threads(args)?,
        default_deadline: num_flag(args, "--default-timeout-ms")?
            .map_or(d.default_deadline, Duration::from_millis),
        max_deadline: num_flag(args, "--max-timeout-ms")?
            .map_or(d.max_deadline, Duration::from_millis),
        respawn_base: num_flag(args, "--respawn-base-ms")?
            .map_or(d.respawn_base, Duration::from_millis),
        respawn_max: num_flag(args, "--respawn-max-ms")?
            .map_or(d.respawn_max, Duration::from_millis),
        fast_crash: d.fast_crash,
        quarantine_after: num_flag(args, "--quarantine-after")?
            .map_or(d.quarantine_after, |n| (n as u32).max(1)),
        quarantine_cooldown: num_flag(args, "--quarantine-cooldown-ms")?
            .map_or(d.quarantine_cooldown, Duration::from_millis),
        probe_interval: num_flag(args, "--probe-interval-ms")?
            .map_or(d.probe_interval, Duration::from_millis),
        probe_failures: d.probe_failures,
        spawn_timeout: d.spawn_timeout,
        child_grace: num_flag(args, "--child-grace-ms")?
            .map_or(d.child_grace, Duration::from_millis),
        chaos_seed: num_flag(args, "--chaos-plan")?,
        listen,
    };

    // Signal handler before the announcement, same contract as `serve`:
    // a supervisor may SIGTERM us the instant it sees "listening on".
    // SIGHUP is counted separately and mapped to a rolling restart.
    signal::install();
    signal::install_hup();
    let handle = deptree::serve::spawn_gateway(config).map_err(CliError::from)?;
    say!("listening on {}", handle.addr());

    let mut hups_seen = 0;
    while signal::received() == 0 {
        let hups = signal::hup_received();
        if hups > hups_seen {
            hups_seen = hups;
            if handle.request_reload() {
                esay!("SIGHUP — rolling restart started");
            } else {
                esay!("SIGHUP ignored — a rolling restart is already in progress");
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    esay!(
        "signal received — draining (in-flight: {})",
        handle.drain_state().inflight()
    );
    // The force path cannot wait for the drain: pass the worker pids in,
    // SIGTERM them directly, and exit 130. Workers drain themselves.
    let worker_pids: Vec<u32> = handle.worker_pids().into_iter().flatten().collect();
    let force = std::thread::Builder::new()
        .name("deptree-force-exit".to_owned())
        .spawn(move || loop {
            if signal::received() >= 2 {
                esay!("forced shutdown during drain");
                for pid in &worker_pids {
                    let _ = signal::send(*pid, signal::SIGTERM);
                }
                std::process::exit(130);
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    drop(force);
    handle.drain_and_join();
    esay!("drained; exiting");
    Ok(())
}

/// `deptree query`: one request to a running `deptree serve`, with retry
/// and jittered backoff for retryable failures.
fn query_cmd(args: &[String]) -> Result<(), CliError> {
    let Some(task) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(usage(
            "query needs a task: discover|validate|detect|repair|dedup|datasets|metrics|reload",
        ));
    };
    let addr = flag(args, "--addr").ok_or_else(|| usage("missing --addr HOST:PORT"))?;
    let defaults = ClientConfig::default();
    // `--max-attempts` is the total request cap (attempts = retries + 1)
    // and wins over `--retries`; the DEPTREE_QUERY_MAX_ATTEMPTS
    // environment variable sits between the two, so a CI harness can
    // tighten every invocation without editing each call site.
    let max_attempts = match num_flag(args, "--max-attempts")? {
        Some(0) => return Err(usage("bad --max-attempts (must be at least 1)")),
        Some(n) => Some(n),
        None => std::env::var("DEPTREE_QUERY_MAX_ATTEMPTS")
            .ok()
            .map(|v| match v.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(usage(
                    "bad DEPTREE_QUERY_MAX_ATTEMPTS (must be an integer >= 1)",
                )),
            })
            .transpose()?,
    };
    let retries = match max_attempts {
        Some(n) => (n - 1).min(u32::MAX as u64) as u32,
        None => num_flag(args, "--retries")?.map_or(defaults.retries, |n| n as u32),
    };
    let config = ClientConfig {
        addr,
        retries,
        seed: num_flag(args, "--seed")?.unwrap_or(defaults.seed),
        ..defaults
    };

    if task == "reload" {
        // Kick a gateway's rolling restart; progress shows up in
        // /healthz (`reloading`) and the per-worker restart counters.
        let resp = deptree::serve::query(&config, "POST", "/admin/reload", None)
            .map_err(|e| CliError::Exit(e.code.exit_code(), e.to_string()))?;
        say!(
            "rolling restart started ({} worker(s))",
            resp.body.u64_field("workers").unwrap_or(0)
        );
        return Ok(());
    }

    if task == "metrics" {
        // `/metrics` is Prometheus text, not JSON — fetch and print raw
        // so scrapers and CI can grep it without an HTTP client.
        let (status, text) = deptree::serve::fetch_text(&config, "/metrics")
            .map_err(|e| CliError::Exit(e.code.exit_code(), e.to_string()))?;
        if status != 200 {
            return Err(CliError::Exit(
                DeptreeError::Unsupported(String::new()).exit_code(),
                format!("/metrics answered HTTP {status}"),
            ));
        }
        emit(&text);
        return Ok(());
    }

    let (method, path, body) = match task.as_str() {
        "datasets" => ("GET", "/v1/datasets".to_owned(), None),
        "discover" | "validate" | "detect" | "repair" | "dedup" => {
            let dataset = flag(args, "--dataset").ok_or_else(|| usage("missing --dataset"))?;
            let mut body = Json::obj().set("dataset", dataset.as_str());
            match task.as_str() {
                "validate" | "detect" | "repair" => {
                    body = body.set("rule", rule_flag(args)?.as_str());
                }
                "dedup" => {
                    let keys = flag(args, "--keys")
                        .ok_or_else(|| usage("missing --keys a,b for dedup"))?;
                    let keys: Vec<Json> = keys.split(',').map(|k| Json::from(k.trim())).collect();
                    body = body.set("keys", keys);
                }
                _ => {
                    if let Some(k) = num_flag(args, "--max-lhs")? {
                        body = body.set("max_lhs", k);
                    }
                    if let Some(e) = flag(args, "--error") {
                        let e: f64 = e.parse().map_err(|_| usage("bad --error"))?;
                        body = body.set("error", e);
                    }
                }
            }
            if let Some(ms) = num_flag(args, "--timeout-ms")? {
                body = body.set("timeout_ms", ms);
            }
            if let Some(n) = num_flag(args, "--max-nodes")? {
                body = body.set("max_nodes", n);
            }
            if let Some(n) = num_flag(args, "--max-rows")? {
                body = body.set("max_rows", n);
            }
            ("POST", format!("/v1/{task}"), Some(body))
        }
        other => {
            return Err(usage(format!(
                "unknown query task `{other}` (use discover|validate|detect|repair|dedup|datasets|metrics|reload)"
            )))
        }
    };

    // `--repeat N` re-issues the same request N times over one pooled
    // keep-alive connection (a cache/latency probe); the last response
    // is the one rendered. N = 1 is the plain single-shot path.
    let repeat = match num_flag(args, "--repeat")? {
        Some(0) => return Err(usage("bad --repeat (must be at least 1)")),
        Some(n) => n,
        None => 1,
    };
    let pool = deptree::serve::ConnPool::new();
    let mut resp = deptree::serve::query_pooled(&pool, &config, method, &path, body.as_ref())
        .map_err(|e| CliError::Exit(e.code.exit_code(), e.to_string()))?;
    for _ in 1..repeat {
        resp = deptree::serve::query_pooled(&pool, &config, method, &path, body.as_ref())
            .map_err(|e| CliError::Exit(e.code.exit_code(), e.to_string()))?;
    }

    if task == "datasets" {
        for d in resp
            .body
            .get("datasets")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            say!(
                "{}: {} rows × {} columns",
                d.str_field("name").unwrap_or("?"),
                d.u64_field("rows").unwrap_or(0),
                d.u64_field("columns").unwrap_or(0)
            );
        }
        return Ok(());
    }

    if let Some(report) = resp.body.str_field("report") {
        emit(report);
    }
    if let Some(csv) = resp.body.str_field("csv") {
        // Repair defaults its output file like the local command does —
        // silently dropping the repaired CSV would be data loss.
        let out =
            flag(args, "--out").or_else(|| (task == "repair").then(|| "repaired.csv".to_owned()));
        if let Some(out) = out {
            std::fs::write(&out, csv).map_err(|e| DeptreeError::Io {
                path: out.clone(),
                message: e.to_string(),
            })?;
            say!("wrote {out}");
        }
    }
    if resp.body.bool_field("partial") == Some(true) {
        let kind = resp
            .body
            .str_field("exhausted")
            .and_then(budget_from_wire)
            .unwrap_or(BudgetKind::Deadline);
        return check_complete(Some(kind));
    }
    Ok(())
}
