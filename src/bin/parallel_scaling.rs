//! Parallel scaling comparison: TANE over a planted-FD synthetic relation
//! (default 100 000 rows) at 1 thread vs N threads, printing the
//! wall-clock per configuration and verifying the discovered FD sets are
//! identical — the determinism contract of the parallel executor.
//!
//! ```sh
//! cargo run --release --bin parallel_scaling              # 100k rows, 8 threads
//! cargo run --release --bin parallel_scaling -- 200000 4  # rows, threads
//! cargo run --release --bin parallel_scaling -- 100000 8 --trace-out spans.jsonl
//! ```
//!
//! On a single-core machine the speedup is ~1×; the identity assertion is
//! the part that must hold everywhere, and the workload is reproducible
//! (fixed seed) for machines with more cores. `--trace-out` records the
//! engine's phase spans (base partitions, lattice levels, products) for
//! the *last* configuration as JSONL.

use deptree::core::engine::obs::Tracer;
use deptree::core::engine::Exec;
use deptree::discovery::tane::{self, TaneConfig};
use deptree::synth::{categorical, CategoricalConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let rows: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let threads: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);

    let cfg = CategoricalConfig {
        n_rows: rows,
        n_key_attrs: 4,
        n_dep_attrs: 4,
        domain: 64,
        error_rate: 0.0,
        seed: 20260806,
    };
    let mut rng = deptree::synth::rng(cfg.seed);
    let data = categorical::generate(&cfg, &mut rng);
    let r = &data.relation;
    println!(
        "workload: {} rows x {} attrs ({} planted FDs)",
        r.n_rows(),
        r.n_attrs(),
        data.planted_fds.len()
    );

    let tane_cfg = TaneConfig {
        max_lhs: 3,
        max_error: 0.0,
    };
    let mut fd_sets: Vec<Vec<String>> = Vec::new();
    let mut last_trace: Option<Arc<Tracer>> = None;
    for t in [1, threads] {
        let mut exec = Exec::unbounded().with_threads(t);
        if trace_out.is_some() {
            let tracer = Arc::new(Tracer::new());
            exec = exec.with_tracer(Arc::clone(&tracer));
            last_trace = Some(tracer);
        }
        let start = Instant::now();
        let out = tane::discover_bounded(r, &tane_cfg, &exec);
        let elapsed = start.elapsed();
        println!(
            "tane threads={t:>2}: {elapsed:>10.2?}  fds={} nodes={} cache hit/miss={}/{}",
            out.result.fds.len(),
            out.result.stats.nodes_visited,
            out.result.stats.cache_hits,
            out.result.stats.cache_misses,
        );
        fd_sets.push(out.result.fds.iter().map(|f| f.to_string()).collect());
    }
    assert!(
        fd_sets.windows(2).all(|w| w[0] == w[1]),
        "FD sets differ across thread counts"
    );
    println!("identical FD sets at 1 and {threads} threads");
    if let (Some(path), Some(tracer)) = (trace_out, last_trace) {
        if let Err(e) = std::fs::write(&path, tracer.to_jsonl()) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {} trace spans to {path}", tracer.spans().len());
    }
}
