//! Columnar-core scaling: the dictionary-encoded column paths vs the
//! frozen row-major reference paths (forced via
//! [`deptree::relation::compat::force_row_major`]), on synthetic
//! relations at 1M/3M/10M rows, for the four workloads the columnar
//! refactor targets — stripped-partition construction, TANE level 1,
//! MD equality/band blocking, and the sorted OD check.  Results
//! (wall-clock, speedups, identity checks) are written to
//! `BENCH_columnar.json`.
//!
//! ```sh
//! cargo run --release --bin columnar_scaling             # 1M/3M/10M
//! cargo run --release --bin columnar_scaling -- --smoke  # tiny, CI gate
//! ```
//!
//! Every columnar result is asserted byte-identical to its row-major
//! baseline; the run aborts on any mismatch.  Row-major baselines above
//! [`ROW_MAJOR_CAP`] rows are skipped (recorded as `null`): the legacy
//! path materializes every cell as a boxed [`Value`], and a 10M-row
//! materialization exists only to be avoided.  In full mode the run
//! additionally enforces the acceptance floors: ≥3× on partition build
//! and ≥2× on MD blocking at 1M rows.
//!
//! `--smoke` also runs the parse-allocation gate: the same CSV text is
//! ingested once through the interning `parse_csv_lossy` path and once
//! through a replica of the pre-columnar parser (a `String` per cell, a
//! `Vec<Value>` per column), under a counting global allocator; both the
//! peak and the resident allocation of the interned path must come in
//! below the row-materializing replica.

use deptree::core::{Dependency, Direction, Od};
use deptree::discovery::tane::{self, TaneConfig};
use deptree::relation::compat;
use deptree::relation::pairgen::{band_pairs_sorted, PairIndex, PairSpec};
use deptree::relation::{
    parse_csv_lossy, AttrId, Column, ProductScratch, Relation, Schema, StrippedPartition, Value,
    ValueType,
};
use deptree::synth::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::Instant;

/// Largest size the row-major baselines run at: the legacy path clones
/// every cell into a `Vec<Value>`, which at 10M rows is pure ballast.
const ROW_MAJOR_CAP: usize = 3_000_000;

// ---------------------------------------------------------------------
// Counting allocator: tracks resident and peak heap bytes so the smoke
// gate can compare the interned parse against the row-major replica.
// ---------------------------------------------------------------------

static MEASURING: AtomicBool = AtomicBool::new(false);
static NET_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        // Counting every allocation slows allocation-heavy phases several
        // fold, so the counters are armed only inside [`measured`] windows
        // — the wall-clock benchmarks run at native allocator speed.
        if !MEASURING.load(Ordering::Relaxed) {
            return;
        }
        let cur = NET_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK_BYTES.fetch_max(cur, Ordering::Relaxed);
    }
    fn on_dealloc(size: usize) {
        if !MEASURING.load(Ordering::Relaxed) {
            return;
        }
        NET_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

// SAFETY: defers all allocation to `System`; the counters are advisory
// and touched with relaxed atomics only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                Self::on_alloc(new_size - layout.size());
            } else {
                Self::on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `(resident_delta, peak_delta)` in bytes across `f`, alongside its
/// value. The gate closures run single-threaded, so the window is exact.
fn measured<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    NET_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    MEASURING.store(true, Ordering::SeqCst);
    let out = f();
    MEASURING.store(false, Ordering::SeqCst);
    let resident = NET_BYTES.load(Ordering::Relaxed).max(0) as usize;
    let peak = PEAK_BYTES.load(Ordering::Relaxed).max(0) as usize;
    (out, resident, peak)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--kernels") {
        run_kernels(smoke);
        return;
    }
    let sizes: &[usize] = if smoke {
        &[2_000, 20_000]
    } else {
        &[1_000_000, 3_000_000, 10_000_000]
    };
    let mut rows_json = Vec::new();
    let mut floors: Vec<(String, f64, f64)> = Vec::new();
    for &n in sizes {
        println!("== {n} rows ==");
        let rel = workload_relation(n);
        let mut obj = format!("    {{\n      \"rows\": {n}");
        let p = bench_partition(&rel, n, &mut obj);
        bench_tane(&rel, n, &mut obj);
        let m = bench_md_blocking(&rel, n, &mut obj);
        bench_od(&rel, n, &mut obj);
        let _ = write!(obj, ",\n      \"relation_bytes\": {}", rel.approx_bytes());
        obj.push_str("\n    }");
        rows_json.push(obj);
        if !smoke && n == 1_000_000 {
            if let Some(s) = p {
                floors.push(("partition_build".into(), s, 3.0));
            }
            if let Some(s) = m {
                floors.push(("md_blocking".into(), s, 2.0));
            }
        }
    }
    let alloc_json = if smoke { Some(alloc_gate()) } else { None };
    // Smoke also drives the code-native kernel suite at a tiny size: the
    // identity asserts inside are the CI gate; timings are incidental.
    let kernel_json = smoke.then(|| kernel_suite(20_000).0);
    let json = format!(
        "{{\n  \"bench\": \"columnar_scaling\",\n  \"mode\": \"{}\",\n  \"row_major_cap_rows\": {ROW_MAJOR_CAP},\n  \"sizes\": [\n{}\n  ]{}{}\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows_json.join(",\n"),
        alloc_json.map_or(String::new(), |a| format!(",\n  \"parse_alloc\": {a}")),
        kernel_json.map_or(String::new(), |k| format!(",\n  \"kernels\": {k}")),
    );
    if smoke {
        println!("{json}");
        println!("smoke: columnar ≡ row-major on every workload; interned parse allocates less");
    } else {
        for (name, got, floor) in &floors {
            if got < floor {
                eprintln!(
                    "error: {name} speedup {got:.2}× at 1M rows is below the {floor:.0}× floor"
                );
                std::process::exit(3);
            }
            println!("floor ok: {name} {got:.2}× ≥ {floor:.0}×");
        }
        if let Err(e) = std::fs::write("BENCH_columnar.json", &json) {
            eprintln!("error: cannot write BENCH_columnar.json: {e}");
            std::process::exit(2);
        }
        println!("wrote BENCH_columnar.json");
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` wall time in ms — the sub-5ms kernels need repetition
/// to push scheduler noise below the effect being measured.
fn time_min_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(ms(t0.elapsed()));
    }
    best
}

fn push_metric(
    obj: &mut String,
    name: &str,
    row_major_ms: Option<f64>,
    columnar_ms: f64,
) -> Option<f64> {
    let speedup = row_major_ms.map(|rm| rm / columnar_ms.max(1e-9));
    // Writing into a String is infallible.
    let _ = write!(
        obj,
        ",\n      \"{name}\": {{\"row_major_ms\": {}, \"columnar_ms\": {columnar_ms:.3}, \"speedup\": {}, \"identical\": true}}",
        row_major_ms.map_or("null".into(), |v| format!("{v:.3}")),
        speedup.map_or("null".into(), |v| format!("{v:.2}")),
    );
    speedup
}

fn print_line(name: &str, row_major_ms: Option<f64>, columnar_ms: f64) {
    println!(
        "  {name:<15}: row-major {}  columnar {columnar_ms:9.1}ms",
        row_major_ms.map_or("   skipped".into(), |v| format!("{v:9.1}ms")),
    );
}

/// Four columns exercising each hot path: `key` (1009 distinct ints, the
/// blocking / partition column), `grp` (97 distinct strings, the
/// string-hashing partition column), and `lo`/`hi` (numeric, jointly
/// monotone so the OD `lo asc → hi asc` holds and the sorted check walks
/// both full columns).
fn workload_relation(n: usize) -> Relation {
    let schema = Schema::from_attrs(vec![
        ("key", ValueType::Numeric),
        ("grp", ValueType::Text),
        ("lo", ValueType::Numeric),
        ("hi", ValueType::Numeric),
    ]);
    let mut rel = match Relation::empty(schema) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: internal workload schema invalid: {e}");
            std::process::exit(4);
        }
    };
    let grps: Vec<String> = (0..97).map(|g| format!("grp_{g:02}")).collect();
    for i in 0..n {
        let key = (i % 1009) as i64;
        let lo = (i / 10) as i64;
        let row_ok = rel
            .push_row(vec![
                Value::Int(key),
                Value::Str(grps[i % 97].clone()),
                Value::Int(lo),
                Value::Int(lo * 3),
            ])
            .is_ok();
        if !row_ok {
            eprintln!("error: internal workload row has wrong arity");
            std::process::exit(4);
        }
    }
    rel
}

/// Materialize the legacy `Vec<Value>` views so row-major timings measure
/// the algorithm, not the compatibility shim (the pre-columnar relation
/// stored these vectors natively).
fn prewarm_row_major(rel: &Relation) {
    for a in rel.schema().ids() {
        let _ = rel.column(a);
    }
}

fn attr(rel: &Relation, name: &str) -> AttrId {
    rel.schema().id(name)
}

fn bench_partition(rel: &Relation, n: usize, obj: &mut String) -> Option<f64> {
    let attrs = [attr(rel, "key"), attr(rel, "grp")];
    // Each timed run is preceded by an identical untimed pass in the same
    // mode, so neither side pays first-touch page faults or cold-allocator
    // costs inside its measurement window.
    for &a in &attrs {
        let _ = StrippedPartition::from_column(rel, a);
    }
    let t0 = Instant::now();
    let fast: Vec<StrippedPartition> = attrs
        .iter()
        .map(|&a| StrippedPartition::from_column(rel, a))
        .collect();
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        for &a in &attrs {
            let _ = StrippedPartition::from_column(rel, a);
        }
        let t0 = Instant::now();
        let slow: Vec<StrippedPartition> = attrs
            .iter()
            .map(|&a| StrippedPartition::from_column(rel, a))
            .collect();
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(fast, slow, "columnar partitions differ from row-major");
        elapsed
    });
    print_line("partition_build", row_major_ms, columnar_ms);
    push_metric(obj, "partition_build", row_major_ms, columnar_ms)
}

fn render_fds(res: &tane::TaneResult) -> Vec<String> {
    res.fds.iter().map(|fd| fd.to_string()).collect()
}

fn bench_tane(rel: &Relation, n: usize, obj: &mut String) {
    let cfg = TaneConfig {
        max_lhs: 1,
        max_error: 0.0,
    };
    let _ = tane::discover(rel, &cfg);
    let t0 = Instant::now();
    let fast = tane::discover(rel, &cfg);
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        let _ = tane::discover(rel, &cfg);
        let t0 = Instant::now();
        let slow = tane::discover(rel, &cfg);
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(
            render_fds(&fast),
            render_fds(&slow),
            "columnar TANE level-1 differs from row-major"
        );
        elapsed
    });
    print_line("tane_level1", row_major_ms, columnar_ms);
    push_metric(obj, "tane_level1", row_major_ms, columnar_ms);
    let _ = write!(obj, ",\n      \"tane_fds\": {}", fast.fds.len());
}

fn bench_md_blocking(rel: &Relation, n: usize, obj: &mut String) -> Option<f64> {
    let key = attr(rel, "key");
    let lo = attr(rel, "lo");
    let specs = [(key, PairSpec::Eq), (lo, PairSpec::Band(5.0))];
    for &(a, spec) in &specs {
        let _ = PairIndex::build_attr(rel, a, spec);
    }
    let t0 = Instant::now();
    let fast: Vec<PairIndex> = specs
        .iter()
        .map(|&(a, spec)| PairIndex::build_attr(rel, a, spec))
        .collect();
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        for &(a, spec) in &specs {
            let _ = PairIndex::build_attr(rel, a, spec);
        }
        let t0 = Instant::now();
        let slow: Vec<PairIndex> = specs
            .iter()
            .map(|&(a, spec)| PairIndex::build_attr(rel, a, spec))
            .collect();
        let elapsed = ms(t0.elapsed());
        drop(guard);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.classes(), s.classes(), "columnar blocking classes differ");
            assert_eq!(f.links(), s.links(), "columnar blocking links differ");
        }
        elapsed
    });
    print_line("md_blocking", row_major_ms, columnar_ms);
    push_metric(obj, "md_blocking", row_major_ms, columnar_ms)
}

fn bench_od(rel: &Relation, n: usize, obj: &mut String) {
    let s = rel.schema();
    let holds = Od::new(
        s,
        vec![(s.id("lo"), Direction::Asc)],
        vec![(s.id("hi"), Direction::Asc)],
    );
    let broken = Od::new(
        s,
        vec![(s.id("key"), Direction::Asc)],
        vec![(s.id("grp"), Direction::Asc)],
    );
    let _ = (holds.holds(rel), broken.holds(rel));
    let t0 = Instant::now();
    let fast = (holds.holds(rel), broken.holds(rel));
    let columnar_ms = ms(t0.elapsed());
    assert!(fast.0, "monotone OD must hold on the workload");
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        let _ = (holds.holds(rel), broken.holds(rel));
        let t0 = Instant::now();
        let slow = (holds.holds(rel), broken.holds(rel));
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(fast, slow, "columnar OD verdicts differ from row-major");
        elapsed
    });
    print_line("od_check", row_major_ms, columnar_ms);
    push_metric(obj, "od_check", row_major_ms, columnar_ms);
}

// ---------------------------------------------------------------------
// Smoke-only parse-allocation gate (the pre-columnar parser replica).
// ---------------------------------------------------------------------

/// Rows in the allocation-gate CSV.
const ALLOC_ROWS: usize = 40_000;

fn alloc_csv() -> (String, Vec<ValueType>) {
    let mut text = String::from("id,name,city,score\n");
    for i in 0..ALLOC_ROWS {
        let _ = writeln!(
            text,
            "{i},user_{:04},city_{:02},{}.5",
            i % 500,
            i % 50,
            i % 100
        );
    }
    (
        text,
        vec![
            ValueType::Numeric,
            ValueType::Text,
            ValueType::Text,
            ValueType::Numeric,
        ],
    )
}

/// The pre-columnar ingest, reproduced: one heap `String` per non-empty
/// cell, one `Vec<Value>` per column — the representation the old
/// `Relation` stored natively.
fn parse_row_materializing(text: &str, types: &[ValueType]) -> Vec<Vec<Value>> {
    let mut lines = text.lines();
    let header = lines.next().map_or(0, |h| h.split(',').count());
    let mut cols: Vec<Vec<Value>> = (0..header).map(|_| Vec::new()).collect();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        for ((cell, ty), col) in line.split(',').zip(types).zip(&mut cols) {
            let v = if cell.is_empty() {
                Value::Null
            } else {
                match ty {
                    ValueType::Numeric => {
                        if let Ok(n) = cell.parse::<i64>() {
                            Value::Int(n)
                        } else if let Ok(f) = cell.parse::<f64>() {
                            Value::float(f)
                        } else {
                            Value::Str(cell.to_string())
                        }
                    }
                    _ => Value::Str(cell.to_string()),
                }
            };
            col.push(v);
        }
    }
    cols
}

fn alloc_gate() -> String {
    let (text, types) = alloc_csv();
    let (interned, interned_resident, interned_peak) =
        measured(|| match parse_csv_lossy(&text, &types) {
            Ok(lossy) => lossy.relation,
            Err(e) => {
                eprintln!("error: allocation-gate CSV failed to parse: {e}");
                std::process::exit(4);
            }
        });
    let (rowwise, rowwise_resident, rowwise_peak) =
        measured(|| parse_row_materializing(&text, &types));
    // Outside the measured windows: fold the row-major columns back into
    // a relation and check the two ingests agree cell-for-cell.
    let n_rows = rowwise.first().map_or(0, Vec::len);
    let schema = Schema::from_attrs(vec![
        ("id", ValueType::Numeric),
        ("name", ValueType::Text),
        ("city", ValueType::Text),
        ("score", ValueType::Numeric),
    ]);
    let rows = (0..n_rows).map(|r| rowwise.iter().map(|c| c[r].clone()).collect());
    let via_rows = match Relation::from_rows(schema, rows) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: row-materialized parse produced invalid relation: {e}");
            std::process::exit(4);
        }
    };
    assert_eq!(
        interned, via_rows,
        "interned parse disagrees with the row-materializing replica"
    );
    println!(
        "  parse_alloc    : row-major peak {:>9} resident {:>9}  interned peak {:>9} resident {:>9}",
        rowwise_peak, rowwise_resident, interned_peak, interned_resident
    );
    assert!(
        interned_peak < rowwise_peak,
        "interned parse peak allocation ({interned_peak}B) must beat row-materializing ({rowwise_peak}B)"
    );
    assert!(
        interned_resident < rowwise_resident,
        "interned relation ({interned_resident}B resident) must beat row-major columns ({rowwise_resident}B)"
    );
    format!(
        "{{\"rows\": {ALLOC_ROWS}, \"row_major_peak_bytes\": {rowwise_peak}, \"row_major_resident_bytes\": {rowwise_resident}, \"interned_peak_bytes\": {interned_peak}, \"interned_resident_bytes\": {interned_resident}}}"
    )
}

// ---------------------------------------------------------------------
// Code-native kernel suite: the four u32-code kernels vs in-binary
// replicas of the paths they replaced (see DESIGN.md §14).  Every kernel
// result is asserted identical to its replica; `--kernels` (full mode)
// writes BENCH_kernels.json and enforces the ≥2× floors on the two
// kernels with a like-for-like algorithmic baseline.
// ---------------------------------------------------------------------

/// Rows the full `--kernels` run measures at (the floor size).
const KERNEL_ROWS: usize = 1_000_000;

fn run_kernels(smoke: bool) {
    let n = if smoke { 20_000 } else { KERNEL_ROWS };
    println!("== code-native kernels, {n} rows ==");
    let (json, floors) = kernel_suite(n);
    let doc = format!(
        "{{\n  \"bench\": \"columnar_kernels\",\n  \"mode\": \"{}\",\n  \"rows\": {n},\n  \"kernels\": {json}\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    if smoke {
        println!("{doc}");
        println!("smoke: every kernel identical to its replica");
        return;
    }
    for (name, got, floor) in &floors {
        if got < floor {
            eprintln!("error: {name} speedup {got:.2}× at {n} rows is below the {floor:.0}× floor");
            std::process::exit(3);
        }
        println!("floor ok: {name} {got:.2}× ≥ {floor:.0}×");
    }
    if let Err(e) = std::fs::write("BENCH_kernels.json", &doc) {
        eprintln!("error: cannot write BENCH_kernels.json: {e}");
        std::process::exit(2);
    }
    println!("wrote BENCH_kernels.json");
}

/// Run all four kernel benches on the kernel workload; returns the JSON
/// object and the `(name, speedup, floor)` list for full-mode gating.
fn kernel_suite(n: usize) -> (String, Vec<(String, f64, f64)>) {
    let rel = kernel_relation(n);
    let mut obj = String::from("{");
    let mut floors = Vec::new();
    let s = bench_kernel_product(&rel, &mut obj);
    floors.push(("partition_product".to_string(), s, 2.0));
    obj.push(',');
    let s = bench_kernel_edit(&rel, &mut obj);
    floors.push(("edit_index".to_string(), s, 2.0));
    obj.push(',');
    bench_kernel_packed(&rel, &mut obj);
    obj.push(',');
    bench_kernel_band(n, &mut obj);
    obj.push('}');
    (obj, floors)
}

/// Kernel workload: `pa`/`pb` are the partition-product pair (1009 × 601
/// int codes — a combined domain that fits the radix gate), `cat` a
/// 13-value column whose codes pack into 4-bit lanes, and `txt` a pool of
/// distinct strings (≈ n/33, capped at 30k, length 12–20 over a wide
/// codepoint alphabet so q-gram collisions stay below the link cap)
/// repeated across rows — the distinct-value edit-index shape.
fn kernel_relation(n: usize) -> Relation {
    let schema = Schema::from_attrs(vec![
        ("pa", ValueType::Numeric),
        ("pb", ValueType::Numeric),
        ("cat", ValueType::Text),
        ("txt", ValueType::Text),
    ]);
    let mut rel = match Relation::empty(schema) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: internal kernel schema invalid: {e}");
            std::process::exit(4);
        }
    };
    let mut rng = Rng::seed_from_u64(0x6b65726e);
    let distinct = (n / 33).clamp(64, 30_000);
    let pool: Vec<String> = (0..distinct)
        .map(|_| {
            let len = rng.random_range(12..=20usize);
            (0..len)
                .map(|_| {
                    // CJK block: 512 distinct chars ⇒ 262k possible grams,
                    // so random strings rarely share one.
                    char::from_u32(0x4E00 + rng.random_range(0..512u32)).unwrap_or('一')
                })
                .collect()
        })
        .collect();
    let cats: Vec<String> = (0..13).map(|c| format!("cat_{c:02}")).collect();
    for i in 0..n {
        let row_ok = rel
            .push_row(vec![
                Value::Int((i % 1009) as i64),
                Value::Int(((i * 7) % 601) as i64),
                Value::Str(cats[i % 13].clone()),
                Value::Str(pool[(i * 2_654_435_761) % distinct].clone()),
            ])
            .is_ok();
        if !row_ok {
            eprintln!("error: internal kernel row has wrong arity");
            std::process::exit(4);
        }
    }
    rel
}

fn push_kernel(
    obj: &mut String,
    name: &str,
    baseline_ms: f64,
    kernel_ms: f64,
    floor: Option<f64>,
) -> f64 {
    let speedup = baseline_ms / kernel_ms.max(1e-9);
    let _ = write!(
        obj,
        "\n    \"{name}\": {{\"baseline_ms\": {baseline_ms:.3}, \"kernel_ms\": {kernel_ms:.3}, \"speedup\": {speedup:.2}, \"floor\": {}, \"identical\": true}}",
        floor.map_or("null".into(), |f| format!("{f:.1}")),
    );
    println!(
        "  {name:<17}: baseline {baseline_ms:9.1}ms  kernel {kernel_ms:9.1}ms  ({speedup:.2}×)"
    );
    speedup
}

/// Radix partition product (counting over dense codes, no right-parent
/// materialization) vs the memoized probe-table product over pre-built
/// parent partitions — the PR 7 cache path with the parent build already
/// paid.
fn bench_kernel_product(rel: &Relation, obj: &mut String) -> f64 {
    let a = attr(rel, "pa");
    let b = attr(rel, "pb");
    let left = StrippedPartition::from_column(rel, a);
    let right = StrippedPartition::from_column(rel, b);
    let mut scratch = ProductScratch::new();
    let _ = left.product_with(&right, &mut scratch);
    let t0 = Instant::now();
    let hash = left.product_with(&right, &mut scratch);
    let baseline_ms = ms(t0.elapsed());
    let _ = left.product_with_column(rel.col(b), &mut scratch);
    let t0 = Instant::now();
    let radix = left.product_with_column(rel.col(b), &mut scratch);
    let kernel_ms = ms(t0.elapsed());
    let Some(radix) = radix else {
        eprintln!("error: radix product refused the kernel workload domain");
        std::process::exit(4);
    };
    assert_eq!(radix, hash, "radix product differs from probe product");
    push_kernel(obj, "partition_product", baseline_ms, kernel_ms, Some(2.0))
}

/// Distinct-value q-gram edit index (flat u64 grams, vec candidates) vs a
/// replica of the PR 7 builder: same distinct-value classing, but BTreeSet
/// gram/candidate bookkeeping and char-tuple postings.
fn bench_kernel_edit(rel: &Relation, obj: &mut String) -> f64 {
    let txt = attr(rel, "txt");
    const K: usize = 2;
    let _ = edit_index_pr7(rel.col(txt), K);
    let t0 = Instant::now();
    let reference = edit_index_pr7(rel.col(txt), K);
    let baseline_ms = ms(t0.elapsed());
    let _ = PairIndex::build_attr(rel, txt, PairSpec::Edit(K));
    let t0 = Instant::now();
    let fast = PairIndex::build_attr(rel, txt, PairSpec::Edit(K));
    let kernel_ms = ms(t0.elapsed());
    let Some((classes, links)) = reference else {
        eprintln!("error: PR 7 edit replica overflowed its link cap; retune the workload");
        std::process::exit(4);
    };
    assert!(fast.is_indexed(), "edit kernel fell back to the full scan");
    assert_eq!(
        fast.classes(),
        &classes[..],
        "edit classes differ from PR 7 replica"
    );
    assert_eq!(
        fast.links(),
        &links[..],
        "edit links differ from PR 7 replica"
    );
    push_kernel(obj, "edit_index", baseline_ms, kernel_ms, Some(2.0))
}

/// The PR 7 distinct-value edit builder, reproduced: classes keyed on
/// rendered text, `BTreeSet<(char, char)>` grams, `BTreeSet<usize>`
/// candidates, char-tuple postings.  Returns `None` past the link cap
/// (where the real builder degrades to a full scan).
#[allow(clippy::type_complexity)]
fn edit_index_pr7(col: &Column, k: usize) -> Option<(Vec<Vec<usize>>, Vec<(usize, usize)>)> {
    const NO_CLASS: u32 = u32::MAX;
    let dict = col.dict();
    let mut class_of: Vec<u32> = vec![NO_CLASS; dict.len()];
    let mut by_key: HashMap<Option<String>, usize> = HashMap::new();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut texts: Vec<Option<Vec<char>>> = Vec::new();
    for (row, &code) in col.codes().iter().enumerate() {
        let cls = if class_of[code as usize] != NO_CLASS {
            class_of[code as usize] as usize
        } else {
            let v = &dict[code as usize];
            let key = (!v.is_null()).then(|| v.render().into_owned());
            let cls = *by_key.entry(key).or_insert_with(|| {
                classes.push(Vec::new());
                texts.push((!v.is_null()).then(|| v.render().chars().collect()));
                classes.len() - 1
            });
            class_of[code as usize] = cls as u32;
            cls
        };
        classes[cls].push(row);
    }
    const QGRAM: usize = 2;
    let short_lim = QGRAM * (k + 1);
    let cap = 8 * col.len() + 1024;
    let mut links: Vec<(usize, usize)> = Vec::new();
    let mut shorts: Vec<usize> = Vec::new();
    let mut postings: HashMap<(char, char), Vec<usize>> = HashMap::new();
    for (c, text) in texts.iter().enumerate() {
        let Some(chars) = text else { continue };
        let len_c = chars.len();
        let grams: BTreeSet<(char, char)> = chars.windows(QGRAM).map(|w| (w[0], w[1])).collect();
        let mut cand: BTreeSet<usize> = BTreeSet::new();
        for g in &grams {
            if let Some(list) = postings.get(g) {
                for &e in list {
                    let len_e = texts[e].as_ref().map_or(0, Vec::len);
                    if len_e.abs_diff(len_c) <= k {
                        cand.insert(e);
                    }
                }
            }
        }
        if len_c < short_lim {
            for &e in &shorts {
                let len_e = texts[e].as_ref().map_or(0, Vec::len);
                if len_e.abs_diff(len_c) <= k {
                    cand.insert(e);
                }
            }
            shorts.push(c);
        }
        for e in cand {
            links.push((e, c));
            if links.len() > cap {
                return None;
            }
        }
        for g in grams {
            postings.entry(g).or_default().push(c);
        }
    }
    Some((classes, links))
}

/// Bit-packed code lanes vs the plain u32 code vector on the counting
/// pass every partition build starts with — the bandwidth the packing
/// exists to save.  No floor: the win is memory-bound and machine-sized.
fn bench_kernel_packed(rel: &Relation, obj: &mut String) {
    let col = rel.col(attr(rel, "cat"));
    let d = col.dict().len();
    let Some(packed) = col.packed_codes() else {
        eprintln!("error: kernel `cat` column refused to bit-pack");
        std::process::exit(4);
    };
    let count_plain = |codes: &[u32]| {
        let mut counts = vec![0u32; d];
        for &c in codes {
            counts[c as usize] += 1;
        }
        counts
    };
    let count_packed = || {
        let mut counts = vec![0u32; d];
        for code in packed.iter() {
            counts[code as usize] += 1;
        }
        counts
    };
    let plain = count_plain(col.codes());
    let bits = count_packed();
    let baseline_ms = time_min_ms(9, || count_plain(col.codes()));
    let kernel_ms = time_min_ms(9, count_packed);
    assert_eq!(plain, bits, "packed code counts differ from plain codes");
    assert_eq!(
        packed.width_bits(),
        4,
        "13-value dictionary must take 4-bit lanes"
    );
    push_kernel(obj, "packed_code_count", baseline_ms, kernel_ms, None);
}

/// Vectorized band probe (8-lane compare-mask burst advance) vs the PR 7
/// scalar two-pointer sweep over the same sorted values. Clustered values
/// (the common shape of real numeric columns: dense runs separated by
/// gaps) make the low pointer sprint across each gap — exactly the case
/// the kernel vectorizes. No floor: the gain is
/// autovectorization-dependent.
fn bench_kernel_band(n: usize, obj: &mut String) {
    let mut rng = Rng::seed_from_u64(0x62616e64);
    let clusters = (n / 1000).max(1);
    let mut nums: Vec<f64> = (0..n)
        .map(|i| {
            let c = (i % clusters) as f64 * 1.0e4;
            c + rng.random_range(0..8_000i64) as f64 / 1000.0
        })
        .collect();
    nums.sort_unstable_by(f64::total_cmp);
    let theta = 16.0;
    let scalar = |nums: &[f64]| {
        let mut total = 0u64;
        let mut lo = 0usize;
        for hi in 0..nums.len() {
            while nums[hi] - nums[lo] > theta {
                lo += 1;
            }
            total += (hi - lo) as u64;
        }
        total
    };
    let want = scalar(&nums);
    let got = band_pairs_sorted(&nums, theta);
    let baseline_ms = time_min_ms(9, || scalar(&nums));
    let kernel_ms = time_min_ms(9, || band_pairs_sorted(&nums, theta));
    assert_eq!(got, want, "vector band count differs from scalar sweep");
    push_kernel(obj, "band_probe", baseline_ms, kernel_ms, None);
}
