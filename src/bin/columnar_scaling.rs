//! Columnar-core scaling: the dictionary-encoded column paths vs the
//! frozen row-major reference paths (forced via
//! [`deptree::relation::compat::force_row_major`]), on synthetic
//! relations at 1M/3M/10M rows, for the four workloads the columnar
//! refactor targets — stripped-partition construction, TANE level 1,
//! MD equality/band blocking, and the sorted OD check.  Results
//! (wall-clock, speedups, identity checks) are written to
//! `BENCH_columnar.json`.
//!
//! ```sh
//! cargo run --release --bin columnar_scaling             # 1M/3M/10M
//! cargo run --release --bin columnar_scaling -- --smoke  # tiny, CI gate
//! ```
//!
//! Every columnar result is asserted byte-identical to its row-major
//! baseline; the run aborts on any mismatch.  Row-major baselines above
//! [`ROW_MAJOR_CAP`] rows are skipped (recorded as `null`): the legacy
//! path materializes every cell as a boxed [`Value`], and a 10M-row
//! materialization exists only to be avoided.  In full mode the run
//! additionally enforces the acceptance floors: ≥3× on partition build
//! and ≥2× on MD blocking at 1M rows.
//!
//! `--smoke` also runs the parse-allocation gate: the same CSV text is
//! ingested once through the interning `parse_csv_lossy` path and once
//! through a replica of the pre-columnar parser (a `String` per cell, a
//! `Vec<Value>` per column), under a counting global allocator; both the
//! peak and the resident allocation of the interned path must come in
//! below the row-materializing replica.

use deptree::core::{Dependency, Direction, Od};
use deptree::discovery::tane::{self, TaneConfig};
use deptree::relation::compat;
use deptree::relation::pairgen::{PairIndex, PairSpec};
use deptree::relation::{
    parse_csv_lossy, AttrId, Relation, Schema, StrippedPartition, Value, ValueType,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::Instant;

/// Largest size the row-major baselines run at: the legacy path clones
/// every cell into a `Vec<Value>`, which at 10M rows is pure ballast.
const ROW_MAJOR_CAP: usize = 3_000_000;

// ---------------------------------------------------------------------
// Counting allocator: tracks resident and peak heap bytes so the smoke
// gate can compare the interned parse against the row-major replica.
// ---------------------------------------------------------------------

static MEASURING: AtomicBool = AtomicBool::new(false);
static NET_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        // Counting every allocation slows allocation-heavy phases several
        // fold, so the counters are armed only inside [`measured`] windows
        // — the wall-clock benchmarks run at native allocator speed.
        if !MEASURING.load(Ordering::Relaxed) {
            return;
        }
        let cur = NET_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK_BYTES.fetch_max(cur, Ordering::Relaxed);
    }
    fn on_dealloc(size: usize) {
        if !MEASURING.load(Ordering::Relaxed) {
            return;
        }
        NET_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

// SAFETY: defers all allocation to `System`; the counters are advisory
// and touched with relaxed atomics only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                Self::on_alloc(new_size - layout.size());
            } else {
                Self::on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `(resident_delta, peak_delta)` in bytes across `f`, alongside its
/// value. The gate closures run single-threaded, so the window is exact.
fn measured<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    NET_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    MEASURING.store(true, Ordering::SeqCst);
    let out = f();
    MEASURING.store(false, Ordering::SeqCst);
    let resident = NET_BYTES.load(Ordering::Relaxed).max(0) as usize;
    let peak = PEAK_BYTES.load(Ordering::Relaxed).max(0) as usize;
    (out, resident, peak)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[2_000, 20_000]
    } else {
        &[1_000_000, 3_000_000, 10_000_000]
    };
    let mut rows_json = Vec::new();
    let mut floors: Vec<(String, f64, f64)> = Vec::new();
    for &n in sizes {
        println!("== {n} rows ==");
        let rel = workload_relation(n);
        let mut obj = format!("    {{\n      \"rows\": {n}");
        let p = bench_partition(&rel, n, &mut obj);
        bench_tane(&rel, n, &mut obj);
        let m = bench_md_blocking(&rel, n, &mut obj);
        bench_od(&rel, n, &mut obj);
        let _ = write!(obj, ",\n      \"relation_bytes\": {}", rel.approx_bytes());
        obj.push_str("\n    }");
        rows_json.push(obj);
        if !smoke && n == 1_000_000 {
            if let Some(s) = p {
                floors.push(("partition_build".into(), s, 3.0));
            }
            if let Some(s) = m {
                floors.push(("md_blocking".into(), s, 2.0));
            }
        }
    }
    let alloc_json = if smoke { Some(alloc_gate()) } else { None };
    let json = format!(
        "{{\n  \"bench\": \"columnar_scaling\",\n  \"mode\": \"{}\",\n  \"row_major_cap_rows\": {ROW_MAJOR_CAP},\n  \"sizes\": [\n{}\n  ]{}\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows_json.join(",\n"),
        alloc_json.map_or(String::new(), |a| format!(",\n  \"parse_alloc\": {a}")),
    );
    if smoke {
        println!("{json}");
        println!("smoke: columnar ≡ row-major on every workload; interned parse allocates less");
    } else {
        for (name, got, floor) in &floors {
            if got < floor {
                eprintln!(
                    "error: {name} speedup {got:.2}× at 1M rows is below the {floor:.0}× floor"
                );
                std::process::exit(3);
            }
            println!("floor ok: {name} {got:.2}× ≥ {floor:.0}×");
        }
        if let Err(e) = std::fs::write("BENCH_columnar.json", &json) {
            eprintln!("error: cannot write BENCH_columnar.json: {e}");
            std::process::exit(2);
        }
        println!("wrote BENCH_columnar.json");
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn push_metric(
    obj: &mut String,
    name: &str,
    row_major_ms: Option<f64>,
    columnar_ms: f64,
) -> Option<f64> {
    let speedup = row_major_ms.map(|rm| rm / columnar_ms.max(1e-9));
    // Writing into a String is infallible.
    let _ = write!(
        obj,
        ",\n      \"{name}\": {{\"row_major_ms\": {}, \"columnar_ms\": {columnar_ms:.3}, \"speedup\": {}, \"identical\": true}}",
        row_major_ms.map_or("null".into(), |v| format!("{v:.3}")),
        speedup.map_or("null".into(), |v| format!("{v:.2}")),
    );
    speedup
}

fn print_line(name: &str, row_major_ms: Option<f64>, columnar_ms: f64) {
    println!(
        "  {name:<15}: row-major {}  columnar {columnar_ms:9.1}ms",
        row_major_ms.map_or("   skipped".into(), |v| format!("{v:9.1}ms")),
    );
}

/// Four columns exercising each hot path: `key` (1009 distinct ints, the
/// blocking / partition column), `grp` (97 distinct strings, the
/// string-hashing partition column), and `lo`/`hi` (numeric, jointly
/// monotone so the OD `lo asc → hi asc` holds and the sorted check walks
/// both full columns).
fn workload_relation(n: usize) -> Relation {
    let schema = Schema::from_attrs(vec![
        ("key", ValueType::Numeric),
        ("grp", ValueType::Text),
        ("lo", ValueType::Numeric),
        ("hi", ValueType::Numeric),
    ]);
    let mut rel = match Relation::empty(schema) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: internal workload schema invalid: {e}");
            std::process::exit(4);
        }
    };
    let grps: Vec<String> = (0..97).map(|g| format!("grp_{g:02}")).collect();
    for i in 0..n {
        let key = (i % 1009) as i64;
        let lo = (i / 10) as i64;
        let row_ok = rel
            .push_row(vec![
                Value::Int(key),
                Value::Str(grps[i % 97].clone()),
                Value::Int(lo),
                Value::Int(lo * 3),
            ])
            .is_ok();
        if !row_ok {
            eprintln!("error: internal workload row has wrong arity");
            std::process::exit(4);
        }
    }
    rel
}

/// Materialize the legacy `Vec<Value>` views so row-major timings measure
/// the algorithm, not the compatibility shim (the pre-columnar relation
/// stored these vectors natively).
fn prewarm_row_major(rel: &Relation) {
    for a in rel.schema().ids() {
        let _ = rel.column(a);
    }
}

fn attr(rel: &Relation, name: &str) -> AttrId {
    rel.schema().id(name)
}

fn bench_partition(rel: &Relation, n: usize, obj: &mut String) -> Option<f64> {
    let attrs = [attr(rel, "key"), attr(rel, "grp")];
    // Each timed run is preceded by an identical untimed pass in the same
    // mode, so neither side pays first-touch page faults or cold-allocator
    // costs inside its measurement window.
    for &a in &attrs {
        let _ = StrippedPartition::from_column(rel, a);
    }
    let t0 = Instant::now();
    let fast: Vec<StrippedPartition> = attrs
        .iter()
        .map(|&a| StrippedPartition::from_column(rel, a))
        .collect();
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        for &a in &attrs {
            let _ = StrippedPartition::from_column(rel, a);
        }
        let t0 = Instant::now();
        let slow: Vec<StrippedPartition> = attrs
            .iter()
            .map(|&a| StrippedPartition::from_column(rel, a))
            .collect();
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(fast, slow, "columnar partitions differ from row-major");
        elapsed
    });
    print_line("partition_build", row_major_ms, columnar_ms);
    push_metric(obj, "partition_build", row_major_ms, columnar_ms)
}

fn render_fds(res: &tane::TaneResult) -> Vec<String> {
    res.fds.iter().map(|fd| fd.to_string()).collect()
}

fn bench_tane(rel: &Relation, n: usize, obj: &mut String) {
    let cfg = TaneConfig {
        max_lhs: 1,
        max_error: 0.0,
    };
    let _ = tane::discover(rel, &cfg);
    let t0 = Instant::now();
    let fast = tane::discover(rel, &cfg);
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        let _ = tane::discover(rel, &cfg);
        let t0 = Instant::now();
        let slow = tane::discover(rel, &cfg);
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(
            render_fds(&fast),
            render_fds(&slow),
            "columnar TANE level-1 differs from row-major"
        );
        elapsed
    });
    print_line("tane_level1", row_major_ms, columnar_ms);
    push_metric(obj, "tane_level1", row_major_ms, columnar_ms);
    let _ = write!(obj, ",\n      \"tane_fds\": {}", fast.fds.len());
}

fn bench_md_blocking(rel: &Relation, n: usize, obj: &mut String) -> Option<f64> {
    let key = attr(rel, "key");
    let lo = attr(rel, "lo");
    let specs = [(key, PairSpec::Eq), (lo, PairSpec::Band(5.0))];
    for &(a, spec) in &specs {
        let _ = PairIndex::build_attr(rel, a, spec);
    }
    let t0 = Instant::now();
    let fast: Vec<PairIndex> = specs
        .iter()
        .map(|&(a, spec)| PairIndex::build_attr(rel, a, spec))
        .collect();
    let columnar_ms = ms(t0.elapsed());
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        for &(a, spec) in &specs {
            let _ = PairIndex::build_attr(rel, a, spec);
        }
        let t0 = Instant::now();
        let slow: Vec<PairIndex> = specs
            .iter()
            .map(|&(a, spec)| PairIndex::build_attr(rel, a, spec))
            .collect();
        let elapsed = ms(t0.elapsed());
        drop(guard);
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.classes(), s.classes(), "columnar blocking classes differ");
            assert_eq!(f.links(), s.links(), "columnar blocking links differ");
        }
        elapsed
    });
    print_line("md_blocking", row_major_ms, columnar_ms);
    push_metric(obj, "md_blocking", row_major_ms, columnar_ms)
}

fn bench_od(rel: &Relation, n: usize, obj: &mut String) {
    let s = rel.schema();
    let holds = Od::new(
        s,
        vec![(s.id("lo"), Direction::Asc)],
        vec![(s.id("hi"), Direction::Asc)],
    );
    let broken = Od::new(
        s,
        vec![(s.id("key"), Direction::Asc)],
        vec![(s.id("grp"), Direction::Asc)],
    );
    let _ = (holds.holds(rel), broken.holds(rel));
    let t0 = Instant::now();
    let fast = (holds.holds(rel), broken.holds(rel));
    let columnar_ms = ms(t0.elapsed());
    assert!(fast.0, "monotone OD must hold on the workload");
    let row_major_ms = (n <= ROW_MAJOR_CAP).then(|| {
        prewarm_row_major(rel);
        let guard = compat::force_row_major();
        let _ = (holds.holds(rel), broken.holds(rel));
        let t0 = Instant::now();
        let slow = (holds.holds(rel), broken.holds(rel));
        let elapsed = ms(t0.elapsed());
        drop(guard);
        assert_eq!(fast, slow, "columnar OD verdicts differ from row-major");
        elapsed
    });
    print_line("od_check", row_major_ms, columnar_ms);
    push_metric(obj, "od_check", row_major_ms, columnar_ms);
}

// ---------------------------------------------------------------------
// Smoke-only parse-allocation gate (the pre-columnar parser replica).
// ---------------------------------------------------------------------

/// Rows in the allocation-gate CSV.
const ALLOC_ROWS: usize = 40_000;

fn alloc_csv() -> (String, Vec<ValueType>) {
    let mut text = String::from("id,name,city,score\n");
    for i in 0..ALLOC_ROWS {
        let _ = writeln!(
            text,
            "{i},user_{:04},city_{:02},{}.5",
            i % 500,
            i % 50,
            i % 100
        );
    }
    (
        text,
        vec![
            ValueType::Numeric,
            ValueType::Text,
            ValueType::Text,
            ValueType::Numeric,
        ],
    )
}

/// The pre-columnar ingest, reproduced: one heap `String` per non-empty
/// cell, one `Vec<Value>` per column — the representation the old
/// `Relation` stored natively.
fn parse_row_materializing(text: &str, types: &[ValueType]) -> Vec<Vec<Value>> {
    let mut lines = text.lines();
    let header = lines.next().map_or(0, |h| h.split(',').count());
    let mut cols: Vec<Vec<Value>> = (0..header).map(|_| Vec::new()).collect();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        for ((cell, ty), col) in line.split(',').zip(types).zip(&mut cols) {
            let v = if cell.is_empty() {
                Value::Null
            } else {
                match ty {
                    ValueType::Numeric => {
                        if let Ok(n) = cell.parse::<i64>() {
                            Value::Int(n)
                        } else if let Ok(f) = cell.parse::<f64>() {
                            Value::float(f)
                        } else {
                            Value::Str(cell.to_string())
                        }
                    }
                    _ => Value::Str(cell.to_string()),
                }
            };
            col.push(v);
        }
    }
    cols
}

fn alloc_gate() -> String {
    let (text, types) = alloc_csv();
    let (interned, interned_resident, interned_peak) =
        measured(|| match parse_csv_lossy(&text, &types) {
            Ok(lossy) => lossy.relation,
            Err(e) => {
                eprintln!("error: allocation-gate CSV failed to parse: {e}");
                std::process::exit(4);
            }
        });
    let (rowwise, rowwise_resident, rowwise_peak) =
        measured(|| parse_row_materializing(&text, &types));
    // Outside the measured windows: fold the row-major columns back into
    // a relation and check the two ingests agree cell-for-cell.
    let n_rows = rowwise.first().map_or(0, Vec::len);
    let schema = Schema::from_attrs(vec![
        ("id", ValueType::Numeric),
        ("name", ValueType::Text),
        ("city", ValueType::Text),
        ("score", ValueType::Numeric),
    ]);
    let rows = (0..n_rows).map(|r| rowwise.iter().map(|c| c[r].clone()).collect());
    let via_rows = match Relation::from_rows(schema, rows) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: row-materialized parse produced invalid relation: {e}");
            std::process::exit(4);
        }
    };
    assert_eq!(
        interned, via_rows,
        "interned parse disagrees with the row-materializing replica"
    );
    println!(
        "  parse_alloc    : row-major peak {:>9} resident {:>9}  interned peak {:>9} resident {:>9}",
        rowwise_peak, rowwise_resident, interned_peak, interned_resident
    );
    assert!(
        interned_peak < rowwise_peak,
        "interned parse peak allocation ({interned_peak}B) must beat row-materializing ({rowwise_peak}B)"
    );
    assert!(
        interned_resident < rowwise_resident,
        "interned relation ({interned_resident}B resident) must beat row-major columns ({rowwise_resident}B)"
    );
    format!(
        "{{\"rows\": {ALLOC_ROWS}, \"row_major_peak_bytes\": {rowwise_peak}, \"row_major_resident_bytes\": {rowwise_resident}, \"interned_peak_bytes\": {interned_peak}, \"interned_resident_bytes\": {interned_resident}}}"
    )
}
