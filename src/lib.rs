//! # deptree — a family tree of data dependencies
//!
//! A from-scratch Rust reproduction of *"Data Dependencies Extended for
//! Variety and Veracity: A Family Tree"* (Song, Gao, Huang & Wang): every
//! dependency notation the survey covers, the extension graph relating
//! them, a discovery algorithm per notation, and the data-quality
//! applications of Table 3.
//!
//! This crate is the façade: it re-exports the workspace members under
//! stable module names.
//!
//! ```
//! use deptree::core::{Dependency, Fd};
//! use deptree::relation::examples::hotels_r1;
//!
//! let hotels = hotels_r1();
//! let rule = Fd::parse(hotels.schema(), "address -> region").unwrap();
//! assert!(!rule.holds(&hotels)); // Table 1's t3/t4 error
//! ```
//!
//! ## Map of the workspace
//!
//! * [`relation`] — schemas, values, relations, partitions, the paper's
//!   example instances;
//! * [`metrics`] — distance metrics, differential functions, fuzzy
//!   resemblance relations;
//! * [`core`] — the 24 dependency notations and the family tree
//!   ([`core::familytree`]);
//! * [`synth`] — workload generators with planted rules and ground truth;
//! * [`discovery`] — TANE, FastFD, CORDS, CFDMiner/CTANE, FASTDC,
//!   FASTOD-lite, the CSD tableau DP, and friends;
//! * [`quality`] — violation detection, repairing, deduplication,
//!   imputation, consistent query answering, normalization, optimizer
//!   statistics, fairness repair;
//! * [`serve`] — the hardened network daemon behind `deptree serve`
//!   (admission control, deadlines, graceful drain) and the
//!   `deptree query` retry client.

#![warn(missing_docs)]

pub use deptree_core as core;
pub use deptree_discovery as discovery;
pub use deptree_metrics as metrics;
pub use deptree_quality as quality;
pub use deptree_relation as relation;
pub use deptree_serve as serve;
pub use deptree_synth as synth;
