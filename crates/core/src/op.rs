//! The shared comparison-operator set `{=, ≠, <, ≤, >, ≥}` used by eCFD
//! patterns (§2.5.5) and denial-constraint predicates (§4.3.1).

use deptree_relation::Value;
use std::cmp::Ordering;
use std::fmt;

/// A binary comparison operator. The set is *negation closed*: the negation
/// of each operator is again in the set, which is what lets denial
/// constraints express implication-style rules (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Leq,
    /// `>`
    Gt,
    /// `≥`
    Geq,
}

impl CmpOp {
    /// All six operators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Lt,
        CmpOp::Leq,
        CmpOp::Gt,
        CmpOp::Geq,
    ];

    /// The operators meaningful for unordered (categorical) domains.
    pub const EQUALITY: [CmpOp; 2] = [CmpOp::Eq, CmpOp::Neq];

    /// The negation: `¬(a op b) ⇔ a (op.negate()) b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Geq,
            CmpOp::Leq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Leq,
            CmpOp::Geq => CmpOp::Lt,
        }
    }

    /// The inverse obtained by swapping operands: `a op b ⇔ b (op.flip()) a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Leq => CmpOp::Geq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Geq => CmpOp::Leq,
        }
    }

    /// Does the operator express an order (not mere (in)equality)?
    pub fn is_order(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Leq | CmpOp::Gt | CmpOp::Geq)
    }

    /// Evaluate `a op b` with value semantics: numeric values compare by
    /// numeric value (`Int(2) = Float(2.0)`), others by the structural
    /// total order.
    ///
    /// Comparisons against `Null` are *failed* (return `false`) for every
    /// operator except `Neq`, mirroring SQL's unknown-is-not-satisfied.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return match self {
                CmpOp::Neq => !(a.is_null() && b.is_null()),
                CmpOp::Eq => a.is_null() && b.is_null(),
                _ => false,
            };
        }
        let ord = a.numeric_cmp(b);
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Neq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Leq => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Geq => ord != Ordering::Less,
        }
    }

    /// The operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "≠",
            CmpOp::Lt => "<",
            CmpOp::Leq => "≤",
            CmpOp::Gt => ">",
            CmpOp::Geq => "≥",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_numbers() {
        let a = Value::int(189);
        let b = Value::int(200);
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Leq.eval(&a, &b));
        assert!(CmpOp::Neq.eval(&a, &b));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(!CmpOp::Gt.eval(&a, &b));
        assert!(CmpOp::Geq.eval(&b, &a));
    }

    #[test]
    fn negation_law() {
        let vals = [Value::int(1), Value::int(2), Value::str("x")];
        for op in CmpOp::ALL {
            for a in &vals {
                for b in &vals {
                    if a.is_null() || b.is_null() {
                        continue;
                    }
                    assert_eq!(
                        op.eval(a, b),
                        !op.negate().eval(a, b),
                        "negation law fails for {a} {op} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn flip_law() {
        let vals = [Value::int(1), Value::int(2)];
        for op in CmpOp::ALL {
            for a in &vals {
                for b in &vals {
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn null_comparisons() {
        assert!(!CmpOp::Eq.eval(&Value::Null, &Value::int(1)));
        assert!(CmpOp::Neq.eval(&Value::Null, &Value::int(1)));
        assert!(CmpOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(!CmpOp::Lt.eval(&Value::Null, &Value::int(1)));
    }

    #[test]
    fn negate_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }
}
