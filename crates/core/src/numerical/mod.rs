//! Dependencies over numerical data (survey §4): order-based notations.

mod dc;
mod interval;
mod od;
mod ofd;
mod sd;

pub use dc::{Dc, Operand, Predicate};
pub use interval::Interval;
pub use od::{Direction, Od};
pub use ofd::Ofd;
pub use sd::{Csd, CsdRow, Sd};
