//! Closed intervals over the extended reals, used by sequential
//! dependencies for their gap constraint `g` (§4.4.1).

use std::fmt;

/// A closed interval `[lo, hi]` over ℝ ∪ {±∞}.
///
/// Unlike [`deptree_metrics::DistRange`], which ranges over non-negative
/// *distances*, an `Interval` may contain negative values: SD gaps are
/// *signed* differences, e.g. `(−∞, 0]` expresses "decreasing" (§4.4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// `(−∞, +∞)`: no constraint.
    pub fn all() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// `[0, +∞)`: non-decreasing.
    pub fn non_decreasing() -> Self {
        Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// `(−∞, 0]`: non-increasing (the paper's sd2 shape, §4.4.2).
    pub fn non_increasing() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: 0.0,
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Membership.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Is `self ⊆ other`?
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// The nearest point of the interval to `x` — the minimal adjustment a
    /// repair would make (used by SD confidence, §4.4.3).
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let g = Interval::new(100.0, 200.0);
        assert!(g.contains(100.0));
        assert!(g.contains(170.0));
        assert!(g.contains(200.0));
        assert!(!g.contains(99.9));
        assert!(!g.contains(200.1));
    }

    #[test]
    fn unbounded_shapes() {
        assert!(Interval::non_increasing().contains(-5.0));
        assert!(Interval::non_increasing().contains(0.0));
        assert!(!Interval::non_increasing().contains(0.1));
        assert!(Interval::non_decreasing().contains(1e12));
        assert!(Interval::all().contains(f64::NEG_INFINITY));
    }

    #[test]
    fn subset_and_clamp() {
        let inner = Interval::new(1.0, 2.0);
        let outer = Interval::new(0.0, 3.0);
        assert!(inner.subset_of(&outer));
        assert!(!outer.subset_of(&inner));
        assert_eq!(outer.clamp(-1.0), 0.0);
        assert_eq!(outer.clamp(5.0), 3.0);
        assert_eq!(outer.clamp(1.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_rejected() {
        Interval::new(2.0, 1.0);
    }
}
