//! Denial constraints (§4.3).

use crate::categorical::ECfd;
use crate::dep::{DepKind, Dependency, Violation};
use crate::numerical::{Direction, Od};
use crate::op::CmpOp;
use deptree_relation::{AttrId, AttrSet, Relation, Schema, Value};
use std::fmt;

/// An operand of a denial-constraint predicate: an attribute of the first
/// tuple (`tα.A`), of the second tuple (`tβ.A`), or a constant (§4.3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `tα.A`.
    First(AttrId),
    /// `tβ.A`.
    Second(AttrId),
    /// A constant `c`.
    Const(Value),
}

impl Operand {
    fn eval<'a>(&'a self, r: &'a Relation, ta: usize, tb: usize) -> &'a Value {
        match self {
            Operand::First(a) => r.value(ta, *a),
            Operand::Second(a) => r.value(tb, *a),
            Operand::Const(v) => v,
        }
    }

    fn render(&self, schema: &Schema) -> String {
        match self {
            Operand::First(a) => format!("tα.{}", schema.name(*a)),
            Operand::Second(a) => format!("tβ.{}", schema.name(*a)),
            Operand::Const(v) => v.to_string(),
        }
    }

    fn attr(&self) -> Option<AttrId> {
        match self {
            Operand::First(a) | Operand::Second(a) => Some(*a),
            Operand::Const(_) => None,
        }
    }

    fn mentions_second(&self) -> bool {
        matches!(self, Operand::Second(_))
    }
}

/// A single predicate `v₁ φ v₂` of a denial constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(left: Operand, op: CmpOp, right: Operand) -> Self {
        Predicate { left, op, right }
    }

    /// `tα.A op tβ.B` shorthand.
    pub fn across(a: AttrId, op: CmpOp, b: AttrId) -> Self {
        Predicate::new(Operand::First(a), op, Operand::Second(b))
    }

    /// `tα.A op c` shorthand.
    pub fn first_const(a: AttrId, op: CmpOp, c: impl Into<Value>) -> Self {
        Predicate::new(Operand::First(a), op, Operand::Const(c.into()))
    }

    /// Evaluate on the ordered tuple pair `(tα, tβ)`.
    pub fn eval(&self, r: &Relation, ta: usize, tb: usize) -> bool {
        self.op
            .eval(self.left.eval(r, ta, tb), self.right.eval(r, ta, tb))
    }

    /// Attributes mentioned.
    pub fn attrs(&self) -> AttrSet {
        [self.left.attr(), self.right.attr()]
            .into_iter()
            .flatten()
            .collect()
    }
}

/// A denial constraint `∀ tα, tβ ∈ R : ¬(P₁ ∧ … ∧ Pₘ)` (§4.3.1).
///
/// When any predicate mentions `tβ`, the constraint quantifies over all
/// *ordered* pairs of distinct tuples; otherwise it is a single-tuple
/// constraint (`∀ tα : ¬(…)`), which is how DCs express constant rules
/// like "price in Chicago is at least 200".
#[derive(Debug, Clone, PartialEq)]
pub struct Dc {
    predicates: Vec<Predicate>,
    display: String,
}

impl Dc {
    /// Build a DC from its predicates.
    ///
    /// # Panics
    /// Panics if `predicates` is empty (an empty conjunction is trivially
    /// true, making the DC unsatisfiable).
    pub fn new(schema: &Schema, predicates: Vec<Predicate>) -> Self {
        assert!(!predicates.is_empty(), "DC needs at least one predicate");
        let body = predicates
            .iter()
            .map(|p| {
                format!(
                    "{} {} {}",
                    p.left.render(schema),
                    p.op,
                    p.right.render(schema)
                )
            })
            .collect::<Vec<_>>()
            .join(" ∧ ");
        let display = format!("¬({body})");
        Dc {
            predicates,
            display,
        }
    }

    /// The predicates of the (negated) conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Is this a single-tuple DC (no predicate mentions `tβ`)?
    pub fn is_single_tuple(&self) -> bool {
        !self
            .predicates
            .iter()
            .any(|p| p.left.mentions_second() || p.right.mentions_second())
    }

    /// All attributes mentioned.
    pub fn attrs(&self) -> AttrSet {
        self.predicates
            .iter()
            .fold(AttrSet::empty(), |acc, p| acc.union(p.attrs()))
    }

    /// The Fig. 1 embedding from ODs (§4.3.2): each marked RHS attribute
    /// `B` yields one DC `¬(⋀_A tα.A ≼ tβ.A ∧ tα.B ≻ tβ.B)`. The
    /// conjunction of the returned DCs is equivalent to the OD.
    pub fn from_od(schema: &Schema, od: &Od) -> Vec<Dc> {
        let premise: Vec<Predicate> = od
            .lhs()
            .iter()
            .map(|(a, d)| {
                let op = match d {
                    Direction::Asc => CmpOp::Leq,
                    Direction::Desc => CmpOp::Geq,
                };
                Predicate::across(*a, op, *a)
            })
            .collect();
        od.rhs()
            .iter()
            .map(|(b, d)| {
                let bad_op = match d {
                    Direction::Asc => CmpOp::Gt,
                    Direction::Desc => CmpOp::Lt,
                };
                let mut preds = premise.clone();
                preds.push(Predicate::across(*b, bad_op, *b));
                Dc::new(schema, preds)
            })
            .collect()
    }

    /// The Fig. 1 embedding from eCFDs (§4.3.3): the pattern's operator
    /// cells become constant predicates on `tα` (pairwise equality on the
    /// LHS carries them to `tβ`), variable RHS attributes become
    /// `tα.B ≠ tβ.B` disequalities (one DC each), and operator RHS cells
    /// become single-tuple DCs with the negated operator.
    pub fn from_ecfd(schema: &Schema, ecfd: &ECfd) -> Vec<Dc> {
        use crate::categorical::PatternOp;
        let mut premise: Vec<Predicate> = Vec::new();
        for a in ecfd.lhs().iter() {
            premise.push(Predicate::across(a, CmpOp::Eq, a));
            if let PatternOp::Cmp(op, c) = ecfd.cell(a) {
                premise.push(Predicate::first_const(a, *op, c.clone()));
            }
        }
        let mut out = Vec::new();
        for b in ecfd.rhs().iter() {
            // Pairwise equality on the RHS applies regardless of the cell.
            let mut preds = premise.clone();
            preds.push(Predicate::across(b, CmpOp::Neq, b));
            out.push(Dc::new(schema, preds));
            if let PatternOp::Cmp(op, c) = ecfd.cell(b) {
                // Additionally, a matching tα must satisfy the RHS operator
                // cell: deny the LHS constant cells plus the negated op.
                let mut preds: Vec<Predicate> = ecfd
                    .lhs()
                    .iter()
                    .filter_map(|a| match ecfd.cell(a) {
                        PatternOp::Cmp(op, c) => Some(Predicate::first_const(a, *op, c.clone())),
                        PatternOp::Any => None,
                    })
                    .collect();
                preds.push(Predicate::first_const(b, op.negate(), c.clone()));
                out.push(Dc::new(schema, preds));
            }
        }
        out
    }

    /// Does the conjunction fire (i.e. is the DC violated) on the ordered
    /// pair `(tα, tβ)`?
    pub fn fires(&self, r: &Relation, ta: usize, tb: usize) -> bool {
        self.predicates.iter().all(|p| p.eval(r, ta, tb))
    }
}

impl Dependency for Dc {
    fn kind(&self) -> DepKind {
        DepKind::Dc
    }

    fn holds(&self, r: &Relation) -> bool {
        if self.is_single_tuple() {
            (0..r.n_rows()).all(|t| !self.fires(r, t, t))
        } else {
            for i in 0..r.n_rows() {
                for j in 0..r.n_rows() {
                    if i != j && self.fires(r, i, j) {
                        return false;
                    }
                }
            }
            true
        }
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let attrs = self.attrs();
        let mut out = Vec::new();
        if self.is_single_tuple() {
            for t in 0..r.n_rows() {
                if self.fires(r, t, t) {
                    out.push(Violation::row(t, attrs));
                }
            }
        } else {
            for i in 0..r.n_rows() {
                for j in 0..r.n_rows() {
                    if i != j && self.fires(r, i, j) {
                        out.push(Violation::pair(i, j, attrs));
                    }
                }
            }
            out.sort_by(|a, b| a.rows.cmp(&b.rows));
            out.dedup();
        }
        out
    }
}

impl fmt::Display for Dc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::PatternOp;
    use deptree_relation::examples::{hotels_r5, hotels_r7};

    fn dc1(r: &Relation) -> Dc {
        // §4.3.1: dc1: ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes > tβ.taxes).
        let s = r.schema();
        Dc::new(
            s,
            vec![
                Predicate::across(s.id("subtotal"), CmpOp::Lt, s.id("subtotal")),
                Predicate::across(s.id("taxes"), CmpOp::Gt, s.id("taxes")),
            ],
        )
    }

    #[test]
    fn dc1_holds_on_r7() {
        let r = hotels_r7();
        let dc = dc1(&r);
        assert!(dc.holds(&r));
        assert!(!dc.is_single_tuple());
    }

    #[test]
    fn dc1_fires_on_unfair_taxes() {
        let mut r = hotels_r7();
        let taxes = r.schema().id("taxes");
        r.set_value(0, taxes, 999.into()); // lowest subtotal, highest taxes
        let dc = dc1(&r);
        assert!(!dc.holds(&r));
        let v = dc.violations(&r);
        assert_eq!(v.len(), 3); // row 0 against each larger subtotal
        assert!(v.iter().all(|v| v.rows.contains(&0)));
    }

    #[test]
    fn od_embedding_dc2() {
        // §4.3.2: dc2 represents od1: nights^≤ → avg/night^≥.
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("avg/night"), Direction::Desc)],
        );
        let dcs = Dc::from_od(s, &od);
        assert_eq!(dcs.len(), 1);
        assert!(dcs[0].holds(&r));
        assert_eq!(od.holds(&r), dcs.iter().all(|d| d.holds(&r)));
        // Break the OD and both formalisms agree.
        let mut r2 = r.clone();
        r2.set_value(2, s.id("avg/night"), 200.into());
        assert!(!od.holds(&r2));
        assert!(!dcs.iter().all(|d| d.holds(&r2)));
    }

    #[test]
    fn ecfd_embedding_dc3() {
        // §4.3.3: dc3 represents ecfd1: rate ≤ 200, name = _ → address = _.
        let r = hotels_r5();
        let s = r.schema();
        let ecfd = ECfd::new(
            s,
            AttrSet::from_ids([s.id("rate"), s.id("name")]),
            AttrSet::single(s.id("address")),
            vec![(s.id("rate"), PatternOp::Cmp(CmpOp::Leq, Value::int(200)))],
        );
        let dcs = Dc::from_ecfd(s, &ecfd);
        assert_eq!(dcs.len(), 1);
        assert_eq!(ecfd.holds(&r), dcs.iter().all(|d| d.holds(&r)));
        assert!(dcs[0].holds(&r));
        // Inject the error used in the eCFD test.
        let mut r2 = r.clone();
        r2.set_value(3, s.id("address"), "100 Other St".into());
        assert_eq!(ecfd.holds(&r2), dcs.iter().all(|d| d.holds(&r2)));
        assert!(!dcs[0].holds(&r2));
    }

    #[test]
    fn single_tuple_dc_constant_rule() {
        // "The price should not be lower than 200 in Chicago" (§1.6):
        // ¬(tα.region = "Chicago" ∧ tα.rate < 200).
        let r = hotels_r5();
        let s = r.schema();
        let dc = Dc::new(
            s,
            vec![
                Predicate::first_const(s.id("region"), CmpOp::Eq, "El Paso"),
                Predicate::first_const(s.id("rate"), CmpOp::Lt, 200),
            ],
        );
        assert!(dc.is_single_tuple());
        assert!(!dc.holds(&r)); // t3: El Paso at 189
        let v = dc.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2]);
    }

    #[test]
    fn ecfd_embedding_with_constant_rhs() {
        // rate ≤ 200 → region = "El Paso" becomes a single-tuple DC.
        let r = hotels_r5();
        let s = r.schema();
        let ecfd = ECfd::new(
            s,
            AttrSet::single(s.id("rate")),
            AttrSet::single(s.id("region")),
            vec![
                (s.id("rate"), PatternOp::Cmp(CmpOp::Leq, Value::int(200))),
                (
                    s.id("region"),
                    PatternOp::Cmp(CmpOp::Eq, Value::str("El Paso")),
                ),
            ],
        );
        let dcs = Dc::from_ecfd(s, &ecfd);
        // Two DCs: the pairwise-equality rule and the single-tuple
        // constant rule.
        assert_eq!(dcs.len(), 2);
        assert!(!dcs[0].is_single_tuple());
        assert!(dcs[1].is_single_tuple());
        // t4 has "El Paso, TX": both the single-tuple rule and the eCFD
        // flag the instance, and the conjunction matches exactly.
        assert!(!dcs[1].holds(&r));
        assert_eq!(ecfd.holds(&r), dcs.iter().all(|d| d.holds(&r)));
        assert!(!ecfd.holds(&r));
    }

    #[test]
    fn display_shape() {
        let r = hotels_r7();
        assert_eq!(
            dc1(&r).to_string(),
            "DC: ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes > tβ.taxes)"
        );
    }
}
