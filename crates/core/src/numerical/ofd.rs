//! Ordered functional dependencies (§4.1).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrSet, Relation, Schema};
use std::cmp::Ordering;
use std::fmt;

/// An ordered functional dependency `X →ᴾ Y` (Ng): for all tuple pairs,
/// `t1[X] ≤ t2[X]` pointwise implies `t1[Y] ≤ t2[Y]` pointwise (§4.1.1).
/// A lexicographical variant is also provided (the paper's footnote 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ofd {
    lhs: AttrSet,
    rhs: AttrSet,
    lexicographic: bool,
    display: String,
}

impl Ofd {
    /// Build a pointwise OFD.
    pub fn pointwise(schema: &Schema, lhs: AttrSet, rhs: AttrSet) -> Self {
        Self::build(schema, lhs, rhs, false)
    }

    /// Build a lexicographical OFD.
    pub fn lexicographic(schema: &Schema, lhs: AttrSet, rhs: AttrSet) -> Self {
        Self::build(schema, lhs, rhs, true)
    }

    fn build(schema: &Schema, lhs: AttrSet, rhs: AttrSet, lexicographic: bool) -> Self {
        let names = |s: AttrSet| {
            s.iter()
                .map(|a| schema.name(a).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let arrow = if lexicographic { "->L" } else { "->P" };
        let display = format!("{} {arrow} {}", names(lhs), names(rhs));
        Ofd {
            lhs,
            rhs,
            lexicographic,
            display,
        }
    }

    /// The Fig. 1 embedding from FDs: equality is the degenerate point of
    /// pointwise order — an FD `X → Y` holds iff both the OFD and its
    /// reverse hold... more simply, we embed FDs by keeping the FD
    /// semantics on the ordered view: if `t1[X] = t2[X]` then both
    /// `t1[X] ≤ t2[X]` and `t2[X] ≤ t1[X]`, forcing `t1[Y] = t2[Y]`.
    /// Hence every instance satisfying this OFD satisfies the FD; the
    /// embedding is the OFD with the same sides.
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        Self::pointwise(schema, fd.lhs(), fd.rhs())
    }

    /// Determinant attributes.
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent attributes.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// Is this the lexicographical variant?
    pub fn is_lexicographic(&self) -> bool {
        self.lexicographic
    }

    /// Pointwise comparison on a set: `Some(Less/Equal)` when `t1 ≤ t2` on
    /// every attribute, `Some(Greater)` when `t1 ≥ t2` on every attribute
    /// (strictly on at least one side counts too), `None` when
    /// incomparable.
    fn pointwise_cmp(r: &Relation, t1: usize, t2: usize, attrs: AttrSet) -> Option<Ordering> {
        let mut le = true;
        let mut ge = true;
        for a in attrs.iter() {
            match r.value(t1, a).numeric_cmp(r.value(t2, a)) {
                Ordering::Less => ge = false,
                Ordering::Greater => le = false,
                Ordering::Equal => {}
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    fn lex_cmp(r: &Relation, t1: usize, t2: usize, attrs: AttrSet) -> Ordering {
        for a in attrs.iter() {
            let ord = r.value(t1, a).numeric_cmp(r.value(t2, a));
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Does the *ordered pair* `(t1, t2)` with `t1 ≤ t2` on `X` respect the
    /// OFD?
    pub fn pair_ok(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        if self.lexicographic {
            match Self::lex_cmp(r, t1, t2, self.lhs) {
                Ordering::Less | Ordering::Equal => {
                    Self::lex_cmp(r, t1, t2, self.rhs) != Ordering::Greater
                }
                Ordering::Greater => true,
            }
        } else {
            match Self::pointwise_cmp(r, t1, t2, self.lhs) {
                Some(Ordering::Less) | Some(Ordering::Equal) => matches!(
                    Self::pointwise_cmp(r, t1, t2, self.rhs),
                    Some(Ordering::Less) | Some(Ordering::Equal)
                ),
                _ => true,
            }
        }
    }
}

impl Dependency for Ofd {
    fn kind(&self) -> DepKind {
        DepKind::Ofd
    }

    fn holds(&self, r: &Relation) -> bool {
        for (i, j) in r.row_pairs() {
            if !self.pair_ok(r, i, j) || !self.pair_ok(r, j, i) {
                return false;
            }
        }
        true
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if !self.pair_ok(r, i, j) || !self.pair_ok(r, j, i) {
                out.push(Violation::pair(i, j, self.rhs));
            }
        }
        out
    }
}

impl fmt::Display for Ofd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OFD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn ofd1_on_r7() {
        // §4.1.1: ofd1: subtotal →ᴾ taxes — higher subtotal, higher taxes.
        let r = hotels_r7();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("subtotal")),
            AttrSet::single(s.id("taxes")),
        );
        assert!(ofd.holds(&r));
    }

    #[test]
    fn violation_when_order_reversed() {
        let mut r = hotels_r7();
        let taxes = r.schema().id("taxes");
        r.set_value(3, taxes, 10.into()); // 700 subtotal but lowest taxes
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("subtotal")),
            AttrSet::single(s.id("taxes")),
        );
        assert!(!ofd.holds(&r));
        let v = ofd.violations(&r);
        assert_eq!(v.len(), 3); // row 3 against each of rows 0..2
    }

    #[test]
    fn incomparable_pairs_are_vacuous() {
        // Pointwise order on two attributes: (1, 5) vs (2, 3) are
        // incomparable — no constraint applies.
        let r = RelationBuilder::new()
            .attr("a", ValueType::Numeric)
            .attr("b", ValueType::Numeric)
            .attr("y", ValueType::Numeric)
            .row(vec![1.into(), 5.into(), 10.into()])
            .row(vec![2.into(), 3.into(), 5.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::from_ids([s.id("a"), s.id("b")]),
            AttrSet::single(s.id("y")),
        );
        assert!(ofd.holds(&r));
        // Lexicographically they ARE comparable: (1,5) < (2,3), and y
        // decreases → violation.
        let lex = Ofd::lexicographic(
            s,
            AttrSet::from_ids([s.id("a"), s.id("b")]),
            AttrSet::single(s.id("y")),
        );
        assert!(!lex.holds(&r));
    }

    #[test]
    fn fd_embedding_sound() {
        // If the OFD holds, the embedded FD holds: equal X forces equal Y.
        let r = hotels_r7();
        let s = r.schema();
        let fd = Fd::parse(s, "subtotal -> taxes").unwrap();
        let ofd = Ofd::from_fd(s, &fd);
        if ofd.holds(&r) {
            assert!(fd.holds(&r));
        }
        // And a counterexample shows OFDs are strictly stronger here:
        // equal X, equal Y but unordered elsewhere is fine for both.
        assert!(ofd.holds(&r) && fd.holds(&r));
    }

    #[test]
    fn temporal_application_shape() {
        // §4.1.2: experience increases with time.
        let r = RelationBuilder::new()
            .attr("year", ValueType::Numeric)
            .attr("experience", ValueType::Numeric)
            .row(vec![2019.into(), 3.into()])
            .row(vec![2020.into(), 4.into()])
            .row(vec![2021.into(), 5.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("year")),
            AttrSet::single(s.id("experience")),
        );
        assert!(ofd.holds(&r));
    }
}
