//! Sequential dependencies and their conditional extension (§4.4).

use crate::dep::{DepKind, Dependency, Violation};
use crate::numerical::{Direction, Interval, Od};
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// A sequential dependency `X →g Y` (Golab et al.): when tuples are sorted
/// on `X`, the signed difference of `Y`-values between *consecutive*
/// tuples falls in the interval `g` (§4.4.1).
///
/// Consecutive pairs with equal `X`-values have no defined "increase" and
/// are skipped, matching the paper's sequence-number intuition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sd {
    on: AttrId,
    target: AttrId,
    gap: Interval,
    display: String,
}

impl Sd {
    /// Build an SD ordered on `on` with gap constraint `gap` on `target`.
    pub fn new(schema: &Schema, on: AttrId, target: AttrId, gap: Interval) -> Self {
        let display = format!("{} ->{} {}", schema.name(on), gap, schema.name(target));
        Sd {
            on,
            target,
            gap,
            display,
        }
    }

    /// The Fig. 1 embedding: an OD over single ascending attributes is an
    /// SD with gap `[0, ∞)` (ascending RHS) or `(−∞, 0]` (descending RHS)
    /// (§4.4.2). `None` when the OD has compound sides (those need the
    /// full OD machinery).
    pub fn from_od(schema: &Schema, od: &Od) -> Option<Self> {
        let [(x, Direction::Asc)] = od.lhs() else {
            return None;
        };
        let [(y, dir)] = od.rhs() else {
            return None;
        };
        let gap = match dir {
            Direction::Asc => Interval::non_decreasing(),
            Direction::Desc => Interval::non_increasing(),
        };
        Some(Sd::new(schema, *x, *y, gap))
    }

    /// The ordering attribute `X`.
    pub fn on(&self) -> AttrId {
        self.on
    }

    /// The measured attribute `Y`.
    pub fn target(&self) -> AttrId {
        self.target
    }

    /// The gap interval `g`.
    pub fn gap(&self) -> Interval {
        self.gap
    }

    /// The consecutive `(row_i, row_j, gap)` triples after sorting on `X`,
    /// skipping equal-`X` pairs and non-numeric targets.
    pub fn consecutive_gaps(&self, r: &Relation) -> Vec<(usize, usize, f64)> {
        let order = r.sorted_rows(AttrSet::single(self.on));
        let mut out = Vec::new();
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            if r.value(a, self.on) == r.value(b, self.on) {
                continue;
            }
            let (Some(ya), Some(yb)) = (
                r.value(a, self.target).as_f64(),
                r.value(b, self.target).as_f64(),
            ) else {
                continue;
            };
            out.push((a, b, yb - ya));
        }
        out
    }

    /// The confidence of the SD (§4.4.3), computed as the fraction of
    /// consecutive gaps already inside `g` — the complement of the
    /// normalized edit count Golab et al. minimize. 1.0 when there are no
    /// applicable gaps.
    pub fn confidence(&self, r: &Relation) -> f64 {
        let gaps = self.consecutive_gaps(r);
        if gaps.is_empty() {
            return 1.0;
        }
        let ok = gaps
            .iter()
            .filter(|(_, _, g)| self.gap.contains(*g))
            .count();
        ok as f64 / gaps.len() as f64
    }
}

impl Dependency for Sd {
    fn kind(&self) -> DepKind {
        DepKind::Sd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.consecutive_gaps(r)
            .iter()
            .all(|(_, _, g)| self.gap.contains(*g))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        self.consecutive_gaps(r)
            .into_iter()
            .filter(|(_, _, g)| !self.gap.contains(*g))
            .map(|(a, b, _)| Violation::pair(a, b, AttrSet::single(self.target)))
            .collect()
    }
}

impl fmt::Display for Sd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SD: {}", self.display)
    }
}

/// One row of a CSD tableau: the gap constraint `gap` applies to
/// consecutive tuples whose `X`-values both fall in `scope` (§4.4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct CsdRow {
    /// The `X`-interval this row conditions on.
    pub scope: Interval,
    /// The gap constraint within the scope.
    pub gap: Interval,
}

/// A conditional sequential dependency: an SD pattern plus a tableau of
/// `X`-intervals, each with its own gap constraint — SDs that hold
/// "in a period" (§4.4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Csd {
    on: AttrId,
    target: AttrId,
    tableau: Vec<CsdRow>,
    display: String,
}

impl Csd {
    /// Build a CSD.
    ///
    /// # Panics
    /// Panics on an empty tableau.
    pub fn new(schema: &Schema, on: AttrId, target: AttrId, tableau: Vec<CsdRow>) -> Self {
        assert!(!tableau.is_empty(), "CSD needs at least one tableau row");
        let rows = tableau
            .iter()
            .map(|row| format!("{}↦{}", row.scope, row.gap))
            .collect::<Vec<_>>()
            .join(", ");
        let display = format!(
            "{} -> {} with [{}]",
            schema.name(on),
            schema.name(target),
            rows
        );
        Csd {
            on,
            target,
            tableau,
            display,
        }
    }

    /// The Fig. 1 embedding: an SD is a CSD whose single tableau row spans
    /// the whole `X`-domain (§4.4.5).
    pub fn from_sd(schema: &Schema, sd: &Sd) -> Self {
        Csd::new(
            schema,
            sd.on(),
            sd.target(),
            vec![CsdRow {
                scope: Interval::all(),
                gap: sd.gap(),
            }],
        )
    }

    /// The ordering attribute.
    pub fn on(&self) -> AttrId {
        self.on
    }

    /// The measured attribute.
    pub fn target(&self) -> AttrId {
        self.target
    }

    /// The tableau.
    pub fn tableau(&self) -> &[CsdRow] {
        &self.tableau
    }

    fn sd_for(&self, schema: &Schema, gap: Interval) -> Sd {
        Sd::new(schema, self.on, self.target, gap)
    }
}

impl Dependency for Csd {
    fn kind(&self) -> DepKind {
        DepKind::Csd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.violations(r).is_empty()
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for row in &self.tableau {
            let sd = self.sd_for(r.schema(), row.gap);
            for (a, b, g) in sd.consecutive_gaps(r) {
                let xa = r.value(a, self.on).as_f64();
                let xb = r.value(b, self.on).as_f64();
                let in_scope = matches!((xa, xb), (Some(xa), Some(xb))
                    if row.scope.contains(xa) && row.scope.contains(xb));
                if in_scope && !row.gap.contains(g) {
                    out.push(Violation::pair(a, b, AttrSet::single(self.target)));
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for Csd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;
    use deptree_relation::{RelationBuilder, ValueType};

    fn sd1(r: &Relation) -> Sd {
        // §4.4.1: sd1: nights →[100,200] subtotal.
        let s = r.schema();
        Sd::new(
            s,
            s.id("nights"),
            s.id("subtotal"),
            Interval::new(100.0, 200.0),
        )
    }

    #[test]
    fn sd1_holds_on_r7() {
        // Gaps: 370−190=180, 540−370=170, 700−540=160 — all in [100, 200].
        let r = hotels_r7();
        let sd = sd1(&r);
        let gaps: Vec<f64> = sd.consecutive_gaps(&r).iter().map(|(_, _, g)| *g).collect();
        assert_eq!(gaps, vec![180.0, 170.0, 160.0]);
        assert!(sd.holds(&r));
        assert_eq!(sd.confidence(&r), 1.0);
    }

    #[test]
    fn sd2_decreasing_avg() {
        // §4.4.2: sd2: nights →(−∞,0] avg/night.
        let r = hotels_r7();
        let s = r.schema();
        let sd = Sd::new(
            s,
            s.id("nights"),
            s.id("avg/night"),
            Interval::non_increasing(),
        );
        assert!(sd.holds(&r));
    }

    #[test]
    fn od_embedding() {
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("avg/night"), Direction::Desc)],
        );
        let sd = Sd::from_od(s, &od).unwrap();
        assert_eq!(od.holds(&r), sd.holds(&r));
        // Note: on *sorted-unique* X the consecutive check is equivalent to
        // the pairwise OD check by transitivity of ≤.
        let mut r2 = r.clone();
        r2.set_value(2, s.id("avg/night"), 200.into());
        assert_eq!(od.holds(&r2), sd.holds(&r2));
        assert!(!sd.holds(&r2));
        // Compound ODs don't embed into single SDs.
        let od2 = Od::new(
            s,
            vec![
                (s.id("nights"), Direction::Asc),
                (s.id("subtotal"), Direction::Asc),
            ],
            vec![(s.id("taxes"), Direction::Asc)],
        );
        assert!(Sd::from_od(s, &od2).is_none());
    }

    #[test]
    fn polling_frequency_example() {
        // §4.4.4: SD: pollnum →[9,11] time — a collector probing every
        // ~10 seconds, with one missed poll.
        let r = RelationBuilder::new()
            .attr("pollnum", ValueType::Numeric)
            .attr("time", ValueType::Numeric)
            .row(vec![1.into(), 100.into()])
            .row(vec![2.into(), 110.into()])
            .row(vec![3.into(), 119.into()])
            .row(vec![4.into(), 140.into()]) // 21-second gap: missing data
            .row(vec![5.into(), 150.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let sd = Sd::new(s, s.id("pollnum"), s.id("time"), Interval::new(9.0, 11.0));
        assert!(!sd.holds(&r));
        let v = sd.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2, 3]);
        assert!((sd.confidence(&r) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn equal_x_pairs_skipped() {
        let r = RelationBuilder::new()
            .attr("x", ValueType::Numeric)
            .attr("y", ValueType::Numeric)
            .row(vec![1.into(), 10.into()])
            .row(vec![1.into(), 999.into()]) // same x: no gap defined
            .row(vec![2.into(), 1000.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let sd = Sd::new(s, s.id("x"), s.id("y"), Interval::new(0.0, 5.0));
        assert_eq!(sd.consecutive_gaps(&r).len(), 1); // only the 1→2 step
    }

    #[test]
    fn csd_period_conditions() {
        // Gaps behave differently in two regimes of x (weekday vs weekend
        // in the paper's motivation): x ∈ [0, 10] gaps in [1, 2]; x ∈
        // [10, 20] gaps in [5, 6].
        let r = RelationBuilder::new()
            .attr("x", ValueType::Numeric)
            .attr("y", ValueType::Numeric)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 11.into()])
            .row(vec![3.into(), 13.into()])
            .row(vec![11.into(), 20.into()])
            .row(vec![12.into(), 25.into()])
            .row(vec![13.into(), 31.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let csd = Csd::new(
            s,
            s.id("x"),
            s.id("y"),
            vec![
                CsdRow {
                    scope: Interval::new(0.0, 10.0),
                    gap: Interval::new(1.0, 2.0),
                },
                CsdRow {
                    scope: Interval::new(10.0, 20.0),
                    gap: Interval::new(5.0, 6.0),
                },
            ],
        );
        // The cross-regime step (x: 3 → 11) is in no scope: unconstrained.
        assert!(csd.holds(&r));
        // A global SD with either gap would fail.
        let tight = Sd::new(s, s.id("x"), s.id("y"), Interval::new(1.0, 2.0));
        assert!(!tight.holds(&r));
    }

    #[test]
    fn sd_embedding_into_csd() {
        let r = hotels_r7();
        let sd = sd1(&r);
        let csd = Csd::from_sd(r.schema(), &sd);
        assert_eq!(sd.holds(&r), csd.holds(&r));
        let mut r2 = r.clone();
        r2.set_value(3, r.schema().id("subtotal"), 1500.into());
        assert_eq!(sd1(&r2).holds(&r2), csd.holds(&r2));
        assert!(!csd.holds(&r2));
        assert_eq!(sd1(&r2).violations(&r2), csd.violations(&r2));
    }
}
