//! Order dependencies (§4.2).

use crate::dep::{DepKind, Dependency, Violation};
use crate::numerical::Ofd;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::cmp::Ordering;
use std::fmt;

/// The ordering direction of a *marked attribute* `A^≤` / `A^≥` (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `A^≤`: ascending.
    Asc,
    /// `A^≥`: descending.
    Desc,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }

    fn mark(self) -> &'static str {
        match self {
            Direction::Asc => "≤",
            Direction::Desc => "≥",
        }
    }
}

/// An order dependency over marked attributes: `X → Y` where each
/// attribute carries a direction mark. For any tuple pair, `t1 ≼ t2` on
/// all marked `X` attributes implies `t1 ≼ t2` on all marked `Y`
/// attributes (§4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Od {
    lhs: Vec<(AttrId, Direction)>,
    rhs: Vec<(AttrId, Direction)>,
    display: String,
}

impl Od {
    /// Build an OD from marked attribute lists.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(
        schema: &Schema,
        lhs: Vec<(AttrId, Direction)>,
        rhs: Vec<(AttrId, Direction)>,
    ) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "OD sides must be non-empty"
        );
        let side = |atoms: &[(AttrId, Direction)]| {
            atoms
                .iter()
                .map(|(a, d)| format!("{}^{}", schema.name(*a), d.mark()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", side(&lhs), side(&rhs));
        Od { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an OFD is an OD with every mark `≤` (§4.2.2).
    pub fn from_ofd(schema: &Schema, ofd: &Ofd) -> Self {
        let marks = |set: AttrSet| set.iter().map(|a| (a, Direction::Asc)).collect::<Vec<_>>();
        Od::new(schema, marks(ofd.lhs()), marks(ofd.rhs()))
    }

    /// Marked determinant attributes.
    pub fn lhs(&self) -> &[(AttrId, Direction)] {
        &self.lhs
    }

    /// Marked dependent attributes.
    pub fn rhs(&self) -> &[(AttrId, Direction)] {
        &self.rhs
    }

    /// Does `t1 ≼ t2` hold on every marked attribute of `atoms`?
    fn precedes(r: &Relation, t1: usize, t2: usize, atoms: &[(AttrId, Direction)]) -> bool {
        atoms.iter().all(|(a, d)| {
            let ord = r.value(t1, *a).numeric_cmp(r.value(t2, *a));
            match d {
                Direction::Asc => ord != Ordering::Greater,
                Direction::Desc => ord != Ordering::Less,
            }
        })
    }

    /// Check the ordered pair `(t1, t2)`: premise ⟹ conclusion.
    pub fn pair_ok(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        !Self::precedes(r, t1, t2, &self.lhs) || Self::precedes(r, t1, t2, &self.rhs)
    }
}

impl Dependency for Od {
    fn kind(&self) -> DepKind {
        DepKind::Od
    }

    fn holds(&self, r: &Relation) -> bool {
        r.row_pairs()
            .all(|(i, j)| self.pair_ok(r, i, j) && self.pair_ok(r, j, i))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let rhs_attrs: AttrSet = self.rhs.iter().map(|(a, _)| *a).collect();
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if !self.pair_ok(r, i, j) || !self.pair_ok(r, j, i) {
                out.push(Violation::pair(i, j, rhs_attrs));
            }
        }
        out
    }
}

impl fmt::Display for Od {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;

    fn od1(r: &Relation) -> Od {
        // §4.2.1: od1: nights^≤ → avg/night^≥ — more nights, lower rate.
        let s = r.schema();
        Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("avg/night"), Direction::Desc)],
        )
    }

    #[test]
    fn od1_holds_on_r7() {
        let r = hotels_r7();
        let od = od1(&r);
        assert!(od.holds(&r));
        assert_eq!(od.to_string(), "OD: nights^≤ -> avg/night^≥");
    }

    #[test]
    fn paper_pair_t1_t2() {
        // §4.2.1: t1[nights] = 1 ≤ 2 = t2[nights] leads to
        // t1[avg/night] = 190 ≥ 185 = t2[avg/night].
        let r = hotels_r7();
        let od = od1(&r);
        assert!(od.pair_ok(&r, 0, 1));
        assert!(od.pair_ok(&r, 1, 0));
    }

    #[test]
    fn discount_anomaly_detected() {
        // A guest staying longer but paying a higher nightly rate.
        let mut r = hotels_r7();
        let avg = r.schema().id("avg/night");
        r.set_value(2, avg, 200.into()); // 3 nights at 200 > 185 (2 nights)
        let od = od1(&r);
        assert!(!od.holds(&r));
        let v = od.violations(&r);
        assert!(v.iter().any(|v| v.rows == vec![1, 2]));
    }

    #[test]
    fn ofd_embedding() {
        let r = hotels_r7();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("subtotal")),
            AttrSet::single(s.id("taxes")),
        );
        let od = Od::from_ofd(s, &ofd);
        // od2 of §4.2.2: subtotal^≤ → taxes^≤.
        assert_eq!(od.to_string(), "OD: subtotal^≤ -> taxes^≤");
        assert_eq!(ofd.holds(&r), od.holds(&r));
        let mut r2 = r.clone();
        r2.set_value(3, s.id("taxes"), 10.into());
        assert_eq!(ofd.holds(&r2), od.holds(&r2));
        assert!(!od.holds(&r2));
        assert_eq!(ofd.violations(&r2), od.violations(&r2));
    }

    #[test]
    fn multi_attribute_premise() {
        // nights^≤, subtotal^≤ → taxes^≤ holds on r7.
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![
                (s.id("nights"), Direction::Asc),
                (s.id("subtotal"), Direction::Asc),
            ],
            vec![(s.id("taxes"), Direction::Asc)],
        );
        assert!(od.holds(&r));
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Asc.reverse(), Direction::Desc);
        assert_eq!(Direction::Desc.reverse(), Direction::Asc);
    }
}
