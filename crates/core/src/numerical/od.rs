//! Order dependencies (§4.2).

use crate::dep::{DepKind, Dependency, Violation};
use crate::numerical::Ofd;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::cmp::Ordering;
use std::fmt;

/// The ordering direction of a *marked attribute* `A^≤` / `A^≥` (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `A^≤`: ascending.
    Asc,
    /// `A^≥`: descending.
    Desc,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }

    fn mark(self) -> &'static str {
        match self {
            Direction::Asc => "≤",
            Direction::Desc => "≥",
        }
    }
}

/// An order dependency over marked attributes: `X → Y` where each
/// attribute carries a direction mark. For any tuple pair, `t1 ≼ t2` on
/// all marked `X` attributes implies `t1 ≼ t2` on all marked `Y`
/// attributes (§4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Od {
    lhs: Vec<(AttrId, Direction)>,
    rhs: Vec<(AttrId, Direction)>,
    display: String,
}

impl Od {
    /// Build an OD from marked attribute lists.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(
        schema: &Schema,
        lhs: Vec<(AttrId, Direction)>,
        rhs: Vec<(AttrId, Direction)>,
    ) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "OD sides must be non-empty"
        );
        let side = |atoms: &[(AttrId, Direction)]| {
            atoms
                .iter()
                .map(|(a, d)| format!("{}^{}", schema.name(*a), d.mark()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", side(&lhs), side(&rhs));
        Od { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an OFD is an OD with every mark `≤` (§4.2.2).
    pub fn from_ofd(schema: &Schema, ofd: &Ofd) -> Self {
        let marks = |set: AttrSet| set.iter().map(|a| (a, Direction::Asc)).collect::<Vec<_>>();
        Od::new(schema, marks(ofd.lhs()), marks(ofd.rhs()))
    }

    /// Marked determinant attributes.
    pub fn lhs(&self) -> &[(AttrId, Direction)] {
        &self.lhs
    }

    /// Marked dependent attributes.
    pub fn rhs(&self) -> &[(AttrId, Direction)] {
        &self.rhs
    }

    /// Does `t1 ≼ t2` hold on every marked attribute of `atoms`?
    fn precedes(r: &Relation, t1: usize, t2: usize, atoms: &[(AttrId, Direction)]) -> bool {
        atoms.iter().all(|(a, d)| {
            let ord = r.value(t1, *a).numeric_cmp(r.value(t2, *a));
            match d {
                Direction::Asc => ord != Ordering::Greater,
                Direction::Desc => ord != Ordering::Less,
            }
        })
    }

    /// Check the ordered pair `(t1, t2)`: premise ⟹ conclusion.
    pub fn pair_ok(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        !Self::precedes(r, t1, t2, &self.lhs) || Self::precedes(r, t1, t2, &self.rhs)
    }

    /// `O(n log n)` check for the single-atom case `A^da → B^db`.
    ///
    /// Sort rows by `A` in the marked direction.  Within a run of
    /// `A`-equal rows both pair orientations fire the premise, forcing
    /// numeric `B`-equality; across runs `A` strictly precedes, so `B`
    /// must be monotone in the marked direction — and since `numeric_cmp`
    /// is a total order, checking consecutive run representatives suffices
    /// by transitivity.  Returns `None` when either side is compound.
    fn holds_sorted(&self, r: &Relation) -> Option<bool> {
        let &[(a, da)] = &self.lhs[..] else {
            return None;
        };
        let &[(b, db)] = &self.rhs[..] else {
            return None;
        };
        if deptree_relation::compat::row_major() {
            return self.holds_sorted_row_major(r, (a, da), (b, db));
        }
        // Columnar walk: each column's sorted-run index maps dictionary
        // codes to `numeric_cmp` ranks (numerically equal entries share a
        // rank), so the whole check is integer sorting and comparison.
        // The within-run and cross-run logic mirrors the row-major
        // reference below — rank (in)equality is exactly `numeric_cmp`
        // (in)equality, and rank order is `numeric_cmp` order.
        let ca = r.col(a);
        let cb = r.col(b);
        let (ia, ib) = (ca.index(), cb.index());
        let n = r.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        match da {
            Direction::Asc => order.sort_unstable_by_key(|&i| ia.num_rank(ca.code(i))),
            Direction::Desc => {
                order.sort_unstable_by_key(|&i| std::cmp::Reverse(ia.num_rank(ca.code(i))))
            }
        }
        let mut start = 0;
        let mut prev_rep: Option<u32> = None;
        while start < n {
            let head = order[start];
            let run_a = ia.num_rank(ca.code(head));
            let run_b = ib.num_rank(cb.code(head));
            let mut end = start + 1;
            while end < n && ia.num_rank(ca.code(order[end])) == run_a {
                if ib.num_rank(cb.code(order[end])) != run_b {
                    return Some(false);
                }
                end += 1;
            }
            if let Some(p) = prev_rep {
                let ord = p.cmp(&run_b);
                let ok = match db {
                    Direction::Asc => ord != Ordering::Greater,
                    Direction::Desc => ord != Ordering::Less,
                };
                if !ok {
                    return Some(false);
                }
            }
            prev_rep = Some(run_b);
            start = end;
        }
        Some(true)
    }

    /// Frozen row-major reference for [`Od::holds_sorted`], kept callable
    /// for the differential harness and the scaling baseline.
    fn holds_sorted_row_major(
        &self,
        r: &Relation,
        (a, da): (AttrId, Direction),
        (b, db): (AttrId, Direction),
    ) -> Option<bool> {
        let ca = r.column(a);
        let cb = r.column(b);
        let n = r.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&i, &j| {
            let ord = ca[i].numeric_cmp(&ca[j]);
            match da {
                Direction::Asc => ord,
                Direction::Desc => ord.reverse(),
            }
        });
        let mut start = 0;
        let mut prev_rep: Option<usize> = None;
        while start < n {
            let head = order[start];
            let mut end = start + 1;
            while end < n && ca[head].numeric_cmp(&ca[order[end]]) == Ordering::Equal {
                if cb[head].numeric_cmp(&cb[order[end]]) != Ordering::Equal {
                    return Some(false);
                }
                end += 1;
            }
            if let Some(p) = prev_rep {
                let ord = cb[p].numeric_cmp(&cb[head]);
                let ok = match db {
                    Direction::Asc => ord != Ordering::Greater,
                    Direction::Desc => ord != Ordering::Less,
                };
                if !ok {
                    return Some(false);
                }
            }
            prev_rep = Some(head);
            start = end;
        }
        Some(true)
    }

    /// Reference all-pairs check; kept as the differential-test baseline
    /// for the sorted fast path of [`Dependency::holds`].
    pub fn holds_naive(&self, r: &Relation) -> bool {
        r.row_pairs()
            .all(|(i, j)| self.pair_ok(r, i, j) && self.pair_ok(r, j, i))
    }
}

impl Dependency for Od {
    fn kind(&self) -> DepKind {
        DepKind::Od
    }

    fn holds(&self, r: &Relation) -> bool {
        match self.holds_sorted(r) {
            Some(ans) => ans,
            None => self.holds_naive(r),
        }
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        // On clean single-atom data the sorted check settles it in
        // O(n log n); the pair scan only runs when violations exist.
        if self.holds_sorted(r) == Some(true) {
            return Vec::new();
        }
        let rhs_attrs: AttrSet = self.rhs.iter().map(|(a, _)| *a).collect();
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if !self.pair_ok(r, i, j) || !self.pair_ok(r, j, i) {
                out.push(Violation::pair(i, j, rhs_attrs));
            }
        }
        out
    }
}

impl fmt::Display for Od {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;

    fn od1(r: &Relation) -> Od {
        // §4.2.1: od1: nights^≤ → avg/night^≥ — more nights, lower rate.
        let s = r.schema();
        Od::new(
            s,
            vec![(s.id("nights"), Direction::Asc)],
            vec![(s.id("avg/night"), Direction::Desc)],
        )
    }

    #[test]
    fn od1_holds_on_r7() {
        let r = hotels_r7();
        let od = od1(&r);
        assert!(od.holds(&r));
        assert_eq!(od.to_string(), "OD: nights^≤ -> avg/night^≥");
    }

    #[test]
    fn paper_pair_t1_t2() {
        // §4.2.1: t1[nights] = 1 ≤ 2 = t2[nights] leads to
        // t1[avg/night] = 190 ≥ 185 = t2[avg/night].
        let r = hotels_r7();
        let od = od1(&r);
        assert!(od.pair_ok(&r, 0, 1));
        assert!(od.pair_ok(&r, 1, 0));
    }

    #[test]
    fn discount_anomaly_detected() {
        // A guest staying longer but paying a higher nightly rate.
        let mut r = hotels_r7();
        let avg = r.schema().id("avg/night");
        r.set_value(2, avg, 200.into()); // 3 nights at 200 > 185 (2 nights)
        let od = od1(&r);
        assert!(!od.holds(&r));
        let v = od.violations(&r);
        assert!(v.iter().any(|v| v.rows == vec![1, 2]));
    }

    #[test]
    fn ofd_embedding() {
        let r = hotels_r7();
        let s = r.schema();
        let ofd = Ofd::pointwise(
            s,
            AttrSet::single(s.id("subtotal")),
            AttrSet::single(s.id("taxes")),
        );
        let od = Od::from_ofd(s, &ofd);
        // od2 of §4.2.2: subtotal^≤ → taxes^≤.
        assert_eq!(od.to_string(), "OD: subtotal^≤ -> taxes^≤");
        assert_eq!(ofd.holds(&r), od.holds(&r));
        let mut r2 = r.clone();
        r2.set_value(3, s.id("taxes"), 10.into());
        assert_eq!(ofd.holds(&r2), od.holds(&r2));
        assert!(!od.holds(&r2));
        assert_eq!(ofd.violations(&r2), od.violations(&r2));
    }

    #[test]
    fn multi_attribute_premise() {
        // nights^≤, subtotal^≤ → taxes^≤ holds on r7.
        let r = hotels_r7();
        let s = r.schema();
        let od = Od::new(
            s,
            vec![
                (s.id("nights"), Direction::Asc),
                (s.id("subtotal"), Direction::Asc),
            ],
            vec![(s.id("taxes"), Direction::Asc)],
        );
        assert!(od.holds(&r));
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Asc.reverse(), Direction::Desc);
        assert_eq!(Direction::Desc.reverse(), Direction::Asc);
    }

    #[test]
    fn sorted_check_matches_naive_on_all_single_atom_ods() {
        // Every (A^da → B^db) combination over r7 and perturbations of it:
        // the sorted fast path must agree with the all-pairs check.
        let base = hotels_r7();
        let s = base.schema().clone();
        let mut variants = vec![base.clone()];
        for row in 0..base.n_rows() {
            let mut v = base.clone();
            let attr = s.ids().nth(row % s.len()).expect("attr");
            let donor = (row + 1) % base.n_rows();
            v.set_value(row, attr, base.value(donor, attr).clone());
            variants.push(v);
        }
        for r in &variants {
            for a in s.ids() {
                for b in s.ids() {
                    for da in [Direction::Asc, Direction::Desc] {
                        for db in [Direction::Asc, Direction::Desc] {
                            let od = Od::new(&s, vec![(a, da)], vec![(b, db)]);
                            assert_eq!(od.holds(r), od.holds_naive(r), "{od}");
                        }
                    }
                }
            }
        }
    }
}
