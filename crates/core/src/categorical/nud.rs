//! Numerical dependencies (§2.4) — "numerical" in Grant & Minker's sense
//! of a *numeric bound* on associated values, not the numerical data type.

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrSet, Relation, Schema};
use std::fmt;

/// A numerical dependency `X →ₖ Y`: each `X`-value is associated with at
/// most `k` distinct `Y`-values (§2.4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nud {
    lhs: AttrSet,
    rhs: AttrSet,
    k: usize,
    display: String,
}

impl Nud {
    /// Build a NUD with weight `k ≥ 1`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(schema: &Schema, lhs: AttrSet, rhs: AttrSet, k: usize) -> Self {
        assert!(k >= 1, "NUD weight must be at least 1");
        let fd = Fd::new(schema, lhs, rhs);
        let display = fd.to_string()[4..].to_owned();
        Nud {
            lhs,
            rhs,
            k,
            display,
        }
    }

    /// The Fig. 1 embedding: an FD is a NUD with `k = 1` (§2.4.2).
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        Nud::new(schema, fd.lhs(), fd.rhs(), 1)
    }

    /// Determinant attributes.
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent attributes.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// The weight `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The maximum number of distinct `Y`-values associated with any single
    /// `X`-value in `r` — the smallest `k` for which this NUD holds.
    pub fn max_fanout(&self, r: &Relation) -> usize {
        r.group_by(self.lhs)
            .values()
            .map(|rows| {
                let sub = r.select_rows(rows);
                let rhs_local: AttrSet = self
                    .rhs
                    .iter()
                    .map(|a| sub.schema().id(r.schema().name(a)))
                    .collect();
                sub.distinct_count(rhs_local)
            })
            .max()
            .unwrap_or(0)
    }
}

impl Dependency for Nud {
    fn kind(&self) -> DepKind {
        DepKind::Nud
    }

    fn holds(&self, r: &Relation) -> bool {
        self.max_fanout(r) <= self.k
    }

    /// One witness per `X`-group exceeding the fan-out budget: the group's
    /// first rows carrying `k + 1` distinct `Y`-values.
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for rows in r.group_by(self.lhs).values() {
            let sub = r.select_rows(rows);
            let rhs_local: AttrSet = self
                .rhs
                .iter()
                .map(|a| sub.schema().id(r.schema().name(a)))
                .collect();
            let groups = sub.group_by(rhs_local);
            if groups.len() > self.k {
                let mut reps: Vec<usize> = groups
                    .values()
                    .filter_map(|g| g.iter().min().map(|m| rows[*m]))
                    .collect();
                reps.sort_unstable();
                reps.truncate(self.k + 1);
                out.push(Violation {
                    rows: reps,
                    attrs: self.rhs,
                });
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out
    }
}

impl fmt::Display for Nud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NUD(k={}): {}", self.k, self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;

    #[test]
    fn nud1_on_r5() {
        // §2.4.1: nud1: address →₂ region holds — "El Paso" has two
        // representation variants in t3, t4.
        let r = hotels_r5();
        let s = r.schema();
        let nud = Nud::new(
            s,
            AttrSet::single(s.id("address")),
            AttrSet::single(s.id("region")),
            2,
        );
        assert!(nud.holds(&r));
        assert_eq!(nud.max_fanout(&r), 2);
        // With k = 1 it degenerates to the FD, which fails.
        let nud1 = Nud::new(
            s,
            AttrSet::single(s.id("address")),
            AttrSet::single(s.id("region")),
            1,
        );
        assert!(!nud1.holds(&r));
        let v = nud1.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2, 3]);
    }

    #[test]
    fn k1_equals_fd() {
        let r = hotels_r5();
        for text in ["address -> region", "name -> address", "address -> rate"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let nud = Nud::from_fd(r.schema(), &fd);
            assert_eq!(fd.holds(&r), nud.holds(&r), "{text}");
        }
    }

    #[test]
    fn fanout_monotone_in_k() {
        let r = hotels_r5();
        let s = r.schema();
        let mk = |k| {
            Nud::new(
                s,
                AttrSet::single(s.id("name")),
                AttrSet::single(s.id("rate")),
                k,
            )
        };
        // "Hyatt" maps to rates {230, 250, 189}: fan-out 3.
        assert_eq!(mk(1).max_fanout(&r), 3);
        assert!(!mk(2).holds(&r));
        assert!(mk(3).holds(&r));
        assert!(mk(4).holds(&r));
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_k_rejected() {
        let r = hotels_r5();
        let s = r.schema();
        Nud::new(
            s,
            AttrSet::single(s.id("name")),
            AttrSet::single(s.id("rate")),
            0,
        );
    }
}
