//! Conditional functional dependencies (§2.5).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrId, AttrSet, Relation, Schema, Value};
use std::collections::HashMap;
use std::fmt;

/// One cell of a CFD pattern tuple: a constant from the attribute's domain
/// or the unnamed variable `_` (§2.5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternCell {
    /// `_`: draws any value from the domain.
    Any,
    /// A constant `a ∈ dom(A)`.
    Const(Value),
}

impl PatternCell {
    /// Does a value match this cell?
    #[inline]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternCell::Any => true,
            PatternCell::Const(c) => v == c,
        }
    }

    /// Is this cell a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, PatternCell::Const(_))
    }
}

impl fmt::Display for PatternCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternCell::Any => write!(f, "_"),
            PatternCell::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A pattern tuple `t_p` over a set of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pattern {
    cells: Vec<(AttrId, PatternCell)>,
}

impl Pattern {
    /// The all-variables pattern over the given attributes — the pattern
    /// that turns a CFD back into a plain FD (§2.5.2).
    pub fn all_any(attrs: AttrSet) -> Self {
        Pattern {
            cells: attrs.iter().map(|a| (a, PatternCell::Any)).collect(),
        }
    }

    /// Empty pattern; add cells with [`Pattern::with`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or overwrite) a cell.
    #[must_use]
    pub fn with(mut self, attr: AttrId, cell: PatternCell) -> Self {
        if let Some(slot) = self.cells.iter_mut().find(|(a, _)| *a == attr) {
            slot.1 = cell;
        } else {
            self.cells.push((attr, cell));
        }
        self
    }

    /// Shorthand for a constant cell.
    #[must_use]
    pub fn with_const(self, attr: AttrId, v: impl Into<Value>) -> Self {
        self.with(attr, PatternCell::Const(v.into()))
    }

    /// The cell for `attr` (absent cells behave as `_`).
    pub fn cell(&self, attr: AttrId) -> &PatternCell {
        self.cells
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, c)| c)
            .unwrap_or(&PatternCell::Any)
    }

    /// Does the row match this pattern on all of `attrs`?
    pub fn matches_on(&self, r: &Relation, row: usize, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.cell(a).matches(r.value(row, a)))
    }

    /// Are all cells on `attrs` constants?
    pub fn all_const_on(&self, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.cell(a).is_const())
    }

    /// Iterate over explicitly set cells.
    pub fn cells(&self) -> impl Iterator<Item = (AttrId, &PatternCell)> {
        self.cells.iter().map(|(a, c)| (*a, c))
    }
}

/// A conditional functional dependency `(X → Y, t_p)`: the embedded FD
/// holds on the subset of tuples matching the pattern (§2.5.1).
///
/// Satisfaction follows Fan et al.: for all tuples `t1, t2` (including
/// `t1 = t2`), if `t1[X] = t2[X]` and both match `t_p[X]`, then
/// `t1[Y] = t2[Y]` and both match `t_p[Y]`. The `t1 = t2` case gives
/// constant CFDs their single-tuple semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfd {
    lhs: AttrSet,
    rhs: AttrSet,
    pattern: Pattern,
    display: String,
}

impl Cfd {
    /// Build a CFD.
    pub fn new(schema: &Schema, lhs: AttrSet, rhs: AttrSet, pattern: Pattern) -> Self {
        let fmt_side = |set: AttrSet| {
            set.iter()
                .map(|a| format!("{}={}", schema.name(a), pattern.cell(a)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", fmt_side(lhs), fmt_side(rhs));
        Cfd {
            lhs,
            rhs,
            pattern,
            display,
        }
    }

    /// The Fig. 1 embedding: an FD is a CFD whose pattern has no constants
    /// (§2.5.2).
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        Cfd::new(
            schema,
            fd.lhs(),
            fd.rhs(),
            Pattern::all_any(fd.lhs().union(fd.rhs())),
        )
    }

    /// Determinant attributes.
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent attributes.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// The pattern tuple.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Is this a *constant* CFD (all pattern cells constants)?
    pub fn is_constant(&self) -> bool {
        self.pattern.all_const_on(self.lhs.union(self.rhs))
    }

    /// Rows matching `t_p[X]` — the scope the condition selects.
    pub fn matching_rows(&self, r: &Relation) -> Vec<usize> {
        (0..r.n_rows())
            .filter(|&row| self.pattern.matches_on(r, row, self.lhs))
            .collect()
    }

    /// Support: fraction of tuples the condition covers. CFD discovery
    /// ranks tableaux by this (§2.5.3).
    pub fn support(&self, r: &Relation) -> f64 {
        if r.n_rows() == 0 {
            return 0.0;
        }
        self.matching_rows(r).len() as f64 / r.n_rows() as f64
    }
}

impl Dependency for Cfd {
    fn kind(&self) -> DepKind {
        DepKind::Cfd
    }

    fn holds(&self, r: &Relation) -> bool {
        let matching = self.matching_rows(r);
        // Single-tuple (constant-RHS) checks.
        for &row in &matching {
            if !self.pattern.matches_on(r, row, self.rhs) {
                return false;
            }
        }
        // Pair checks within equal-X groups.
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        for &row in &matching {
            let key = r.project_row(row, self.lhs);
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(rep) => {
                    if !r.rows_agree(*rep.get(), row, self.rhs) {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(row);
                }
            }
        }
        true
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let matching = self.matching_rows(r);
        let mut out = Vec::new();
        // Constant-RHS single-tuple violations.
        for &row in &matching {
            if !self.pattern.matches_on(r, row, self.rhs) {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|&a| !self.pattern.cell(a).matches(r.value(row, a)))
                    .collect();
                out.push(Violation::row(row, bad));
            }
        }
        // Pairwise violations within equal-X groups.
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for &row in &matching {
            groups
                .entry(r.project_row(row, self.lhs))
                .or_default()
                .push(row);
        }
        for rows in groups.values() {
            let mut reps: HashMap<Vec<Value>, usize> = HashMap::new();
            for &row in rows {
                let y = r.project_row(row, self.rhs);
                reps.entry(y).or_insert(row);
            }
            if reps.len() > 1 {
                let mut rs: Vec<usize> = reps.into_values().collect();
                rs.sort_unstable();
                for i in 0..rs.len() {
                    for j in (i + 1)..rs.len() {
                        out.push(Violation::pair(rs[i], rs[j], self.rhs));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CFD: {}", self.display)
    }
}

/// A CFD *tableau*: one embedded FD with several pattern rows — the form
/// CFDs take in practice (Fan et al. write `(X → Y, T_p)` with a pattern
/// tableau `T_p`). Satisfaction is the conjunction of the per-row CFDs;
/// the tableau's value is its *coverage*: the fraction of tuples at least
/// one row conditions on (the quantity the NP-complete optimal-tableau
/// problem maximizes, §2.5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CfdTableau {
    lhs: AttrSet,
    rhs: AttrSet,
    rows: Vec<Cfd>,
}

impl CfdTableau {
    /// Assemble a tableau from pattern rows over a shared embedded FD.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows disagree on the embedded FD;
    /// use [`CfdTableau::try_new`] for a fallible variant.
    pub fn new(rows: Vec<Cfd>) -> Self {
        match Self::try_new(rows) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CfdTableau::new`]: errors instead of panicking when the
    /// row set is empty or the rows disagree on the embedded FD.
    pub fn try_new(rows: Vec<Cfd>) -> crate::error::Result<Self> {
        let Some(first) = rows.first() else {
            return Err(crate::error::DeptreeError::InvalidConfig(
                "tableau needs at least one row".into(),
            ));
        };
        let (lhs, rhs) = (first.lhs(), first.rhs());
        if !rows.iter().all(|c| c.lhs() == lhs && c.rhs() == rhs) {
            return Err(crate::error::DeptreeError::InvalidConfig(
                "tableau rows must share the embedded FD".into(),
            ));
        }
        Ok(CfdTableau { lhs, rhs, rows })
    }

    /// The embedded FD's determinant.
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// The embedded FD's dependent attributes.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// The pattern rows.
    pub fn rows(&self) -> &[Cfd] {
        &self.rows
    }

    /// Fraction of tuples covered by at least one row's condition.
    pub fn coverage(&self, r: &Relation) -> f64 {
        if r.n_rows() == 0 {
            return 0.0;
        }
        let mut covered = vec![false; r.n_rows()];
        for cfd in &self.rows {
            for row in cfd.matching_rows(r) {
                covered[row] = true;
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / r.n_rows() as f64
    }
}

impl Dependency for CfdTableau {
    fn kind(&self) -> DepKind {
        DepKind::Cfd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.rows.iter().all(|c| c.holds(r))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out: Vec<Violation> = self.rows.iter().flat_map(|c| c.violations(r)).collect();
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for CfdTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CFD tableau ({} rows): ", self.rows.len())?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}", &row.to_string()[5..])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r5};

    fn cfd1(r: &Relation) -> Cfd {
        // §2.5.1: cfd1: region = "Jackson", name = _ → address = _.
        let s = r.schema();
        let lhs = AttrSet::from_ids([s.id("region"), s.id("name")]);
        let rhs = AttrSet::single(s.id("address"));
        let pattern = Pattern::all_any(lhs.union(rhs)).with_const(s.id("region"), "Jackson");
        Cfd::new(s, lhs, rhs, pattern)
    }

    #[test]
    fn cfd1_holds_on_r5() {
        let r = hotels_r5();
        let cfd = cfd1(&r);
        assert!(cfd.holds(&r));
        assert!(cfd.violations(&r).is_empty());
        // The condition covers exactly t1, t2.
        assert_eq!(cfd.matching_rows(&r), vec![0, 1]);
        assert!((cfd.support(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unconditioned_fd_via_cfd_on_r5() {
        // Without the Jackson condition, name → address fails on r5.
        let r = hotels_r5();
        let s = r.schema();
        let fd = Fd::parse(s, "name -> address").unwrap();
        let cfd = Cfd::from_fd(s, &fd);
        assert!(!cfd.holds(&r));
        assert_eq!(fd.holds(&r), cfd.holds(&r));
    }

    #[test]
    fn embedding_agrees_with_fd_everywhere() {
        for r in [hotels_r1(), hotels_r5()] {
            let s = r.schema();
            for text in ["name -> address", "address -> region", "name -> region"] {
                let Some(fd) = Fd::parse(s, text) else {
                    continue;
                };
                let cfd = Cfd::from_fd(s, &fd);
                assert_eq!(fd.holds(&r), cfd.holds(&r), "{text}");
                assert_eq!(fd.violations(&r).len(), cfd.violations(&r).len(), "{text}");
            }
        }
    }

    #[test]
    fn constant_rhs_single_tuple_semantics() {
        // region = "Jackson" → name = "Hyatt": every Jackson tuple must be
        // a Hyatt. Holds on r5.
        let r = hotels_r5();
        let s = r.schema();
        let lhs = AttrSet::single(s.id("region"));
        let rhs = AttrSet::single(s.id("name"));
        let ok = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::new()
                .with_const(s.id("region"), "Jackson")
                .with_const(s.id("name"), "Hyatt"),
        );
        assert!(ok.holds(&r));
        assert!(ok.is_constant());
        let bad = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::new()
                .with_const(s.id("region"), "Jackson")
                .with_const(s.id("name"), "Ritz"),
        );
        assert!(!bad.holds(&r));
        let v = bad.violations(&r);
        assert_eq!(v.len(), 2); // t1 and t2 both fail the constant
        assert_eq!(v[0].rows, vec![0]);
    }

    #[test]
    fn pattern_overwrite_and_default_any() {
        let p = Pattern::new()
            .with_const(AttrId(0), "a")
            .with_const(AttrId(0), "b");
        assert_eq!(p.cell(AttrId(0)), &PatternCell::Const(Value::str("b")));
        assert_eq!(p.cell(AttrId(5)), &PatternCell::Any);
    }

    #[test]
    fn display_shows_condition() {
        let r = hotels_r5();
        let cfd = cfd1(&r);
        assert_eq!(cfd.to_string(), "CFD: name=_, region=Jackson -> address=_");
    }

    #[test]
    fn tableau_conjunction_and_coverage() {
        // Two rows over address → region on r5: the clean Jackson address
        // and the dirty El Paso one.
        let r = hotels_r5();
        let s = r.schema();
        let lhs = AttrSet::single(s.id("address"));
        let rhs = AttrSet::single(s.id("region"));
        let mk = |addr: &str| {
            Cfd::new(
                s,
                lhs,
                rhs,
                Pattern::all_any(lhs.union(rhs)).with_const(s.id("address"), addr),
            )
        };
        let clean = CfdTableau::new(vec![mk("175 North Jackson Street")]);
        assert!(clean.holds(&r));
        assert!((clean.coverage(&r) - 0.5).abs() < 1e-12);
        let both = CfdTableau::new(vec![
            mk("175 North Jackson Street"),
            mk("6030 Gateway Boulevard E"),
        ]);
        assert!((both.coverage(&r) - 1.0).abs() < 1e-12);
        assert!(!both.holds(&r)); // the El Paso row is violated
        assert_eq!(both.violations(&r).len(), 1);
        assert!(both.to_string().starts_with("CFD tableau (2 rows)"));
    }

    #[test]
    #[should_panic(expected = "share the embedded FD")]
    fn tableau_rejects_mixed_fds() {
        let r = hotels_r5();
        let s = r.schema();
        let a = Cfd::from_fd(s, &Fd::parse(s, "address -> region").unwrap());
        let b = Cfd::from_fd(s, &Fd::parse(s, "name -> region").unwrap());
        CfdTableau::new(vec![a, b]);
    }
}
