//! Extended conditional functional dependencies (§2.5.5).

use crate::categorical::{Cfd, PatternCell};
use crate::dep::{DepKind, Dependency, Violation};
use crate::op::CmpOp;
use deptree_relation::{AttrId, AttrSet, Relation, Schema, Value};
use std::collections::HashMap;
use std::fmt;

/// One cell of an eCFD pattern: the unnamed variable `_`, or `op a` where
/// `op ∈ {=, ≠, <, ≤, >, ≥}` and `a` is a domain constant (§2.5.5).
#[derive(Debug, Clone, PartialEq)]
pub enum PatternOp {
    /// `_`: any domain value.
    Any,
    /// `op a`.
    Cmp(
        /// The comparison operator.
        CmpOp,
        /// The constant operand.
        Value,
    ),
}

impl PatternOp {
    /// Does a value match this cell?
    #[inline]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternOp::Any => true,
            PatternOp::Cmp(op, c) => op.eval(v, c),
        }
    }
}

impl fmt::Display for PatternOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternOp::Any => write!(f, "_"),
            PatternOp::Cmp(op, v) => write!(f, "{op}{v}"),
        }
    }
}

impl From<PatternCell> for PatternOp {
    fn from(c: PatternCell) -> Self {
        match c {
            PatternCell::Any => PatternOp::Any,
            PatternCell::Const(v) => PatternOp::Cmp(CmpOp::Eq, v),
        }
    }
}

/// An extended CFD: a CFD whose pattern cells may carry the full operator
/// set, substantially increasing expressive power at unchanged implication
/// complexity (Bravo et al., §2.5.5).
#[derive(Debug, Clone, PartialEq)]
pub struct ECfd {
    lhs: AttrSet,
    rhs: AttrSet,
    cells: Vec<(AttrId, PatternOp)>,
    display: String,
}

impl ECfd {
    /// Build an eCFD from `(attribute, cell)` pairs; attributes without a
    /// cell behave as `_`.
    pub fn new(
        schema: &Schema,
        lhs: AttrSet,
        rhs: AttrSet,
        cells: Vec<(AttrId, PatternOp)>,
    ) -> Self {
        let cell_of = |a: AttrId| -> String {
            cells
                .iter()
                .find(|(x, _)| *x == a)
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| "_".into())
        };
        let fmt_side = |set: AttrSet| {
            set.iter()
                .map(|a| {
                    format!("{}{}", schema.name(a), {
                        let c = cell_of(a);
                        if c == "_" {
                            "=_".to_owned()
                        } else {
                            format!(" {c}")
                        }
                    })
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", fmt_side(lhs), fmt_side(rhs));
        ECfd {
            lhs,
            rhs,
            cells,
            display,
        }
    }

    /// The Fig. 1 embedding: every CFD is an eCFD whose constants become
    /// `= a` cells (§2.5.5).
    pub fn from_cfd(schema: &Schema, cfd: &Cfd) -> Self {
        let cells = cfd
            .pattern()
            .cells()
            .map(|(a, c)| (a, PatternOp::from(c.clone())))
            .collect();
        ECfd::new(schema, cfd.lhs(), cfd.rhs(), cells)
    }

    /// Determinant attributes.
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent attributes.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// The cell for an attribute (`_` if unset).
    pub fn cell(&self, attr: AttrId) -> &PatternOp {
        self.cells
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, c)| c)
            .unwrap_or(&PatternOp::Any)
    }

    /// Explicitly set cells.
    pub fn cells(&self) -> impl Iterator<Item = (AttrId, &PatternOp)> {
        self.cells.iter().map(|(a, c)| (*a, c))
    }

    fn matches_on(&self, r: &Relation, row: usize, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.cell(a).matches(r.value(row, a)))
    }

    /// Rows matching the LHS pattern.
    pub fn matching_rows(&self, r: &Relation) -> Vec<usize> {
        (0..r.n_rows())
            .filter(|&row| self.matches_on(r, row, self.lhs))
            .collect()
    }
}

impl Dependency for ECfd {
    fn kind(&self) -> DepKind {
        DepKind::ECfd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.count_violations(r) == 0
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let matching = self.matching_rows(r);
        let mut out = Vec::new();
        // Single-tuple RHS-cell violations.
        for &row in &matching {
            if !self.matches_on(r, row, self.rhs) {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|&a| !self.cell(a).matches(r.value(row, a)))
                    .collect();
                out.push(Violation::row(row, bad));
            }
        }
        // Pairwise equality on RHS within equal-X groups.
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for &row in &matching {
            groups
                .entry(r.project_row(row, self.lhs))
                .or_default()
                .push(row);
        }
        for rows in groups.values() {
            let mut reps: HashMap<Vec<Value>, usize> = HashMap::new();
            for &row in rows {
                reps.entry(r.project_row(row, self.rhs)).or_insert(row);
            }
            if reps.len() > 1 {
                let mut rs: Vec<usize> = reps.into_values().collect();
                rs.sort_unstable();
                for i in 0..rs.len() {
                    for j in (i + 1)..rs.len() {
                        out.push(Violation::pair(rs[i], rs[j], self.rhs));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for ECfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eCFD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::{Fd, Pattern};
    use deptree_relation::examples::hotels_r5;

    fn ecfd1(r: &Relation) -> ECfd {
        // §2.5.5: ecfd1: rate ≤ 200, name = _ → address = _.
        let s = r.schema();
        let lhs = AttrSet::from_ids([s.id("rate"), s.id("name")]);
        let rhs = AttrSet::single(s.id("address"));
        ECfd::new(
            s,
            lhs,
            rhs,
            vec![(s.id("rate"), PatternOp::Cmp(CmpOp::Leq, Value::int(200)))],
        )
    }

    #[test]
    fn ecfd1_holds_on_r5() {
        // t3, t4 have rate 189 ≤ 200, equal names, equal addresses. Holds.
        let r = hotels_r5();
        let e = ecfd1(&r);
        assert_eq!(e.matching_rows(&r), vec![2, 3]);
        assert!(e.holds(&r));
    }

    #[test]
    fn ecfd1_detects_injected_error() {
        let mut r = hotels_r5();
        let addr = r.schema().id("address");
        r.set_value(3, addr, "100 Other St".into());
        let e = ecfd1(&r);
        assert!(!e.holds(&r));
        let v = e.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2, 3]);
    }

    #[test]
    fn cfd_embedding_preserves_semantics() {
        let r = hotels_r5();
        let s = r.schema();
        // cfd1 from §2.5.1.
        let lhs = AttrSet::from_ids([s.id("region"), s.id("name")]);
        let rhs = AttrSet::single(s.id("address"));
        let cfd = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::all_any(lhs.union(rhs)).with_const(s.id("region"), "Jackson"),
        );
        let e = ECfd::from_cfd(s, &cfd);
        assert_eq!(cfd.holds(&r), e.holds(&r));
        assert_eq!(cfd.violations(&r), e.violations(&r));
        // And a failing CFD (no condition): name → address.
        let fd = Fd::parse(s, "name -> address").unwrap();
        let cfd2 = Cfd::from_fd(s, &fd);
        let e2 = ECfd::from_cfd(s, &cfd2);
        assert!(!e2.holds(&r));
        assert_eq!(cfd2.holds(&r), e2.holds(&r));
    }

    #[test]
    fn inequality_condition() {
        // rate ≠ 189: covers t1, t2 only; name → region then holds there.
        let r = hotels_r5();
        let s = r.schema();
        let e = ECfd::new(
            s,
            AttrSet::from_ids([s.id("rate"), s.id("name")]),
            AttrSet::single(s.id("region")),
            vec![(s.id("rate"), PatternOp::Cmp(CmpOp::Neq, Value::int(189)))],
        );
        assert_eq!(e.matching_rows(&r), vec![0, 1]);
        assert!(e.holds(&r));
    }

    #[test]
    fn rhs_op_cell_single_tuple() {
        // rate ≤ 200 → region = "El Paso": t3 satisfies, t4 has
        // "El Paso, TX" → violation.
        let r = hotels_r5();
        let s = r.schema();
        let e = ECfd::new(
            s,
            AttrSet::single(s.id("rate")),
            AttrSet::single(s.id("region")),
            vec![
                (s.id("rate"), PatternOp::Cmp(CmpOp::Leq, Value::int(200))),
                (
                    s.id("region"),
                    PatternOp::Cmp(CmpOp::Eq, Value::str("El Paso")),
                ),
            ],
        );
        assert!(!e.holds(&r));
        let v = e.violations(&r);
        // Row 3 fails the constant; rows {2,3} also disagree pairwise.
        assert!(v.iter().any(|v| v.rows == vec![3]));
        assert!(v.iter().any(|v| v.rows == vec![2, 3]));
    }
}
