//! Approximate functional dependencies (§2.3).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::Relation;
use std::fmt;

/// An approximate functional dependency `X →ε Y`: the `g3` error — the
/// minimum fraction of rows to remove so `X → Y` holds exactly — is at most
/// `ε` (Kivinen–Mannila, §2.3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Afd {
    embedded: Fd,
    epsilon: f64,
}

impl Afd {
    /// Build an AFD with maximum error `ε`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε < 1`.
    pub fn new(embedded: Fd, epsilon: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&epsilon),
            "error threshold must be in [0, 1)"
        );
        Afd { embedded, epsilon }
    }

    /// The Fig. 1 embedding: an FD is an AFD with error 0 (§2.3.2).
    pub fn from_fd(fd: Fd) -> Self {
        Afd::new(fd, 0.0)
    }

    /// The embedded FD.
    pub fn embedded(&self) -> &Fd {
        &self.embedded
    }

    /// The maximum error `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The `g3` error measure of the embedded FD (§2.3.1).
    pub fn g3(&self, r: &Relation) -> f64 {
        self.embedded.g3(r)
    }
}

impl Dependency for Afd {
    fn kind(&self) -> DepKind {
        DepKind::Afd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.g3(r) <= self.epsilon
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        self.embedded.violations(r)
    }
}

impl fmt::Display for Afd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AFD(g3≤{}): {}",
            self.epsilon,
            &self.embedded.to_string()[4..]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r5};

    #[test]
    fn paper_g3_values_on_r5() {
        // §2.3.1: g3(address → region, r5) = 1/4 (remove t3 or t4);
        //         g3(name → address, r5) = 1/2 (remove two tuples).
        let r = hotels_r5();
        let a1 = Afd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.25);
        assert!((a1.g3(&r) - 0.25).abs() < 1e-12);
        assert!(a1.holds(&r));
        let a2 = Afd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.25);
        assert!((a2.g3(&r) - 0.5).abs() < 1e-12);
        assert!(!a2.holds(&r));
    }

    #[test]
    fn zero_error_iff_fd_holds() {
        for r in [hotels_r1(), hotels_r5()] {
            for (x, y) in [("address", "region"), ("name", "address")] {
                let Some(fd) = Fd::parse(r.schema(), &format!("{x} -> {y}")) else {
                    continue;
                };
                let afd = Afd::from_fd(fd.clone());
                assert_eq!(fd.holds(&r), afd.holds(&r), "{x} -> {y}");
            }
        }
    }

    #[test]
    fn loose_epsilon_tolerates_everything() {
        let r = hotels_r5();
        let afd = Afd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.9);
        assert!(afd.holds(&r));
        // Violation witnesses of the embedded FD are still reported.
        assert!(!afd.violations(&r).is_empty());
    }

    #[test]
    #[should_panic(expected = "error threshold")]
    fn epsilon_one_rejected() {
        let r = hotels_r5();
        Afd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 1.0);
    }
}
