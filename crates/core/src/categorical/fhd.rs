//! Full hierarchical dependencies (§2.6.5).

use crate::categorical::Mvd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrSet, Relation, Schema, Value};
use std::collections::HashSet;
use std::fmt;

/// A full hierarchical dependency `X : {Y₁, …, Yₖ}`: the relation
/// decomposes losslessly into `π_XY₁ ⋈ … ⋈ π_XYₖ ⋈ π_X(R−XY₁…Yₖ)`
/// (Delobel; §2.6.5). With `k = 1` this is exactly the MVD `X ↠ Y₁`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fhd {
    x: AttrSet,
    ys: Vec<AttrSet>,
    display: String,
}

impl Fhd {
    /// Build an FHD. The `Yᵢ` are made pairwise disjoint and disjoint from
    /// `X` (overlaps are removed left to right).
    ///
    /// # Panics
    /// Panics if no `Yᵢ` remains non-empty after normalization.
    pub fn new(schema: &Schema, x: AttrSet, ys: Vec<AttrSet>) -> Self {
        let mut used = x;
        let mut norm = Vec::with_capacity(ys.len());
        for y in ys {
            let y = y.difference(used);
            if !y.is_empty() {
                used = used.union(y);
                norm.push(y);
            }
        }
        assert!(!norm.is_empty(), "FHD needs at least one non-empty Y block");
        let names = |s: AttrSet| {
            s.iter()
                .map(|a| schema.name(a).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let blocks = norm
            .iter()
            .map(|&y| format!("{{{}}}", names(y)))
            .collect::<Vec<_>>()
            .join(", ");
        let display = format!("{} : {}", names(x), blocks);
        Fhd {
            x,
            ys: norm,
            display,
        }
    }

    /// The Fig. 1 embedding: an MVD `X ↠ Y` is the FHD `X : {Y}` (§2.6.5).
    pub fn from_mvd(schema: &Schema, mvd: &Mvd) -> Self {
        Fhd::new(schema, mvd.x(), vec![mvd.y()])
    }

    /// The hierarchy root `X`.
    pub fn x(&self) -> AttrSet {
        self.x
    }

    /// The blocks `Y₁, …, Yₖ`.
    pub fn ys(&self) -> &[AttrSet] {
        &self.ys
    }

    /// The residual block `R − X − Y₁ − … − Yₖ` for a relation.
    pub fn rest(&self, r: &Relation) -> AttrSet {
        self.ys
            .iter()
            .fold(r.all_attrs().difference(self.x), |acc, &y| {
                acc.difference(y)
            })
    }

    /// Spurious tuples introduced by the k-way decomposition join:
    /// `Σ_groups (Π_i |Yᵢ_g| · |rest_g| − |tuples_g|)`. Zero iff the FHD
    /// holds.
    pub fn spurious_tuples(&self, r: &Relation) -> usize {
        let rest = self.rest(r);
        let mut total = 0usize;
        for rows in r.group_by(self.x).values() {
            let mut join = 1usize;
            for &y in &self.ys {
                let distinct: HashSet<Vec<Value>> =
                    rows.iter().map(|&row| r.project_row(row, y)).collect();
                join = join.saturating_mul(distinct.len());
            }
            if !rest.is_empty() {
                let distinct: HashSet<Vec<Value>> =
                    rows.iter().map(|&row| r.project_row(row, rest)).collect();
                join = join.saturating_mul(distinct.len());
            }
            let actual: HashSet<Vec<Value>> = rows
                .iter()
                .map(|&row| r.project_row(row, r.all_attrs()))
                .collect();
            total += join - actual.len();
        }
        total
    }
}

impl Dependency for Fhd {
    fn kind(&self) -> DepKind {
        DepKind::Fhd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.spurious_tuples(r) == 0
    }

    /// Witnesses reported through the constituent MVDs: an FHD implies
    /// `X ↠ Yᵢ` for each block, so each violated block contributes its MVD
    /// witnesses.
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        // Reconstruct per-block MVDs without schema access to names; build
        // them directly over the attribute sets.
        let mut out = Vec::new();
        for &y in &self.ys {
            let mvd = Mvd::new(
                // Schema is only used for the display string.
                r.schema(),
                self.x,
                y,
            );
            out.extend(mvd.violations(r));
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for Fhd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FHD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::{RelationBuilder, ValueType};

    /// emp : {project}, {skill} — employees with independent projects and
    /// skills (classic 4NF example, extended hierarchically).
    fn cross_product_rel(complete: bool) -> Relation {
        let mut b = RelationBuilder::new()
            .attr("emp", ValueType::Categorical)
            .attr("project", ValueType::Categorical)
            .attr("skill", ValueType::Categorical)
            .row(vec!["e1".into(), "p1".into(), "s1".into()])
            .row(vec!["e1".into(), "p1".into(), "s2".into()])
            .row(vec!["e1".into(), "p2".into(), "s1".into()]);
        if complete {
            b = b.row(vec!["e1".into(), "p2".into(), "s2".into()]);
        }
        b.build().unwrap()
    }

    #[test]
    fn fhd_holds_on_complete_hierarchy() {
        let r = cross_product_rel(true);
        let s = r.schema();
        let fhd = Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![
                AttrSet::single(s.id("project")),
                AttrSet::single(s.id("skill")),
            ],
        );
        assert!(fhd.holds(&r));
        assert_eq!(fhd.spurious_tuples(&r), 0);
    }

    #[test]
    fn fhd_fails_on_incomplete_hierarchy() {
        let r = cross_product_rel(false);
        let s = r.schema();
        let fhd = Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![
                AttrSet::single(s.id("project")),
                AttrSet::single(s.id("skill")),
            ],
        );
        assert!(!fhd.holds(&r));
        assert_eq!(fhd.spurious_tuples(&r), 1); // missing (e1, p2, s2)
        assert!(!fhd.violations(&r).is_empty());
    }

    #[test]
    fn k1_fhd_equals_mvd() {
        for complete in [true, false] {
            let r = cross_product_rel(complete);
            let s = r.schema();
            let mvd = Mvd::new(
                s,
                AttrSet::single(s.id("emp")),
                AttrSet::single(s.id("project")),
            );
            let fhd = Fhd::from_mvd(s, &mvd);
            assert_eq!(mvd.holds(&r), fhd.holds(&r), "complete={complete}");
            assert_eq!(mvd.spurious_tuples(&r), fhd.spurious_tuples(&r));
        }
    }

    #[test]
    fn rest_block_computed() {
        let r = cross_product_rel(true);
        let s = r.schema();
        let fhd = Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![AttrSet::single(s.id("project"))],
        );
        assert_eq!(fhd.rest(&r), AttrSet::single(s.id("skill")));
    }

    #[test]
    fn overlapping_blocks_normalized() {
        let r = cross_product_rel(true);
        let s = r.schema();
        let fhd = Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![
                AttrSet::from_ids([s.id("emp"), s.id("project")]),
                AttrSet::from_ids([s.id("project"), s.id("skill")]),
            ],
        );
        assert_eq!(
            fhd.ys(),
            &[
                AttrSet::single(s.id("project")),
                AttrSet::single(s.id("skill"))
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one non-empty Y block")]
    fn degenerate_fhd_rejected() {
        let r = cross_product_rel(true);
        let s = r.schema();
        Fhd::new(
            s,
            AttrSet::single(s.id("emp")),
            vec![AttrSet::single(s.id("emp"))],
        );
    }
}
