//! Approximate multivalued dependencies (§2.6.6).

use crate::categorical::Mvd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::Relation;
use std::fmt;

/// An approximate MVD (`ε`-MVD, Kenig et al.): the fraction of *spurious*
/// tuples introduced by joining the two decomposed projections is at most
/// `ε` (§2.6.6). With `ε = 0` this is exactly the embedded MVD.
#[derive(Debug, Clone, PartialEq)]
pub struct Amvd {
    embedded: Mvd,
    epsilon: f64,
}

impl Amvd {
    /// Build an ε-MVD.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε < 1`.
    pub fn new(embedded: Mvd, epsilon: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&epsilon),
            "accuracy threshold must be in [0, 1)"
        );
        Amvd { embedded, epsilon }
    }

    /// The Fig. 1 embedding: an MVD is an AMVD with `ε = 0` (§2.6.6).
    pub fn from_mvd(mvd: Mvd) -> Self {
        Amvd::new(mvd, 0.0)
    }

    /// The embedded MVD.
    pub fn embedded(&self) -> &Mvd {
        &self.embedded
    }

    /// The accuracy threshold `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The accuracy measure: spurious join tuples as a fraction of the
    /// decomposition-join size. Zero iff the exact MVD holds.
    pub fn accuracy_error(&self, r: &Relation) -> f64 {
        let join = self.embedded.join_size(r);
        if join == 0 {
            return 0.0;
        }
        self.embedded.spurious_tuples(r) as f64 / join as f64
    }
}

impl Dependency for Amvd {
    fn kind(&self) -> DepKind {
        DepKind::Amvd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.accuracy_error(r) <= self.epsilon
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        self.embedded.violations(r)
    }
}

impl fmt::Display for Amvd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AMVD(ε≤{}): {}",
            self.epsilon,
            &self.embedded.to_string()[5..]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::{AttrSet, RelationBuilder, ValueType};

    fn course_rel(extra_rows: usize) -> Relation {
        // Base: complete 2×2 cross product for course "db"; `extra_rows`
        // adds unmatched (teacher, book) combos for course "os" that break
        // independence.
        let mut b = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "ann".into(), "date".into()])
            .row(vec!["db".into(), "bob".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "date".into()]);
        for i in 0..extra_rows {
            b = b.row(vec![
                "os".into(),
                format!("t{i}").into(),
                format!("b{i}").into(),
            ]);
        }
        b.build().unwrap()
    }

    fn mvd(r: &Relation) -> Mvd {
        let s = r.schema();
        Mvd::new(
            s,
            AttrSet::single(s.id("course")),
            AttrSet::single(s.id("teacher")),
        )
    }

    #[test]
    fn zero_epsilon_equals_exact_mvd() {
        let clean = course_rel(0);
        let dirty = course_rel(3);
        for r in [&clean, &dirty] {
            let m = mvd(r);
            let a = Amvd::from_mvd(m.clone());
            assert_eq!(m.holds(r), a.holds(r));
        }
    }

    #[test]
    fn accuracy_error_grows_with_dirt() {
        // 3 diagonal (tᵢ, bᵢ) rows in one group: join 9, actual 3, 6 spurious.
        let r = course_rel(3);
        let a = Amvd::new(mvd(&r), 0.1);
        let err = a.accuracy_error(&r);
        // groups: db join 4, spurious 0; os join 9, spurious 6 → 6/13.
        assert!((err - 6.0 / 13.0).abs() < 1e-12);
        assert!(!a.holds(&r));
        assert!(Amvd::new(mvd(&r), 0.5).holds(&r));
    }

    #[test]
    fn clean_relation_perfect_accuracy() {
        let r = course_rel(0);
        let a = Amvd::new(mvd(&r), 0.0);
        assert_eq!(a.accuracy_error(&r), 0.0);
        assert!(a.holds(&r));
        assert!(a.violations(&r).is_empty());
    }

    #[test]
    #[should_panic(expected = "accuracy threshold")]
    fn epsilon_one_rejected() {
        let r = course_rel(0);
        Amvd::new(mvd(&r), 1.0);
    }
}
