//! Probabilistic functional dependencies (§2.2).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::Relation;
use std::fmt;

/// A probabilistic functional dependency `X →ₚ Y` from pay-as-you-go data
/// integration (Wang et al.): for each distinct `X`-value, the fraction of
/// tuples carrying the modal `Y`-value, averaged over `X`-values, must be
/// at least `p` (§2.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Pfd {
    embedded: Fd,
    threshold: f64,
}

impl Pfd {
    /// Build a PFD with a minimum probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1`.
    pub fn new(embedded: Fd, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "probability threshold must be in (0, 1]"
        );
        Pfd {
            embedded,
            threshold,
        }
    }

    /// The Fig. 1 embedding: an FD is a PFD with probability 1 (§2.2.2).
    pub fn from_fd(fd: Fd) -> Self {
        Pfd::new(fd, 1.0)
    }

    /// The embedded FD.
    pub fn embedded(&self) -> &Fd {
        &self.embedded
    }

    /// The minimum probability `p`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Per-value probability `P(X → Y, V_X)`: the fraction of tuples with
    /// `X = V_X` carrying the most frequent `Y`-value (§2.2.1). Returns the
    /// probability for the group containing `row`.
    pub fn probability_for_group(&self, r: &Relation, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let sub = r.select_rows(rows);
        let rhs_local: deptree_relation::AttrSet = self
            .embedded
            .rhs()
            .iter()
            .map(|a| sub.schema().id(r.schema().name(a)))
            .collect();
        let max = sub
            .group_by(rhs_local)
            .values()
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        max as f64 / rows.len() as f64
    }

    /// The probability `P(X → Y, r)`: average of per-value probabilities
    /// over all distinct `X`-values (§2.2.1). Defined as 1 on the empty
    /// relation.
    pub fn probability(&self, r: &Relation) -> f64 {
        if r.n_rows() == 0 {
            return 1.0;
        }
        let groups = r.group_by(self.embedded.lhs());
        let total: f64 = groups
            .values()
            .map(|rows| self.probability_for_group(r, rows))
            .sum();
        total / groups.len() as f64
    }
}

impl Dependency for Pfd {
    fn kind(&self) -> DepKind {
        DepKind::Pfd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.probability(r) >= self.threshold
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        self.embedded.violations(r)
    }
}

impl fmt::Display for Pfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PFD(p≥{}): {}",
            self.threshold,
            &self.embedded.to_string()[4..]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;

    #[test]
    fn paper_probabilities_on_r5() {
        // §2.2.1: P(address → region, V1) = 1, P(·, V2) = 1/2, average 3/4;
        //         P(name → address, r5) = 1/2.
        let r = hotels_r5();
        let p1 = Pfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.7);
        assert!((p1.probability(&r) - 0.75).abs() < 1e-12);
        assert!(p1.holds(&r));
        let p2 = Pfd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.7);
        assert!((p2.probability(&r) - 0.5).abs() < 1e-12);
        assert!(!p2.holds(&r));
    }

    #[test]
    fn per_group_probabilities() {
        let r = hotels_r5();
        let pfd = Pfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.7);
        // Group for "175 North Jackson Street" = rows {0, 1}, both Jackson.
        assert_eq!(pfd.probability_for_group(&r, &[0, 1]), 1.0);
        // Group for "6030 Gateway Boulevard E" = rows {2, 3}, split.
        assert_eq!(pfd.probability_for_group(&r, &[2, 3]), 0.5);
    }

    #[test]
    fn probability_one_iff_fd_holds() {
        let r = hotels_r5();
        for text in ["address -> region", "name -> address", "rate -> name"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let pfd = Pfd::from_fd(fd.clone());
            assert_eq!(
                fd.holds(&r),
                (pfd.probability(&r) - 1.0).abs() < 1e-12,
                "embedding mismatch for {text}"
            );
            assert_eq!(fd.holds(&r), pfd.holds(&r));
        }
    }

    #[test]
    #[should_panic(expected = "probability threshold")]
    fn out_of_range_threshold_rejected() {
        let r = hotels_r5();
        Pfd::new(Fd::parse(r.schema(), "name -> rate").unwrap(), 1.5);
    }
}
