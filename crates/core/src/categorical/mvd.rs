//! Multivalued dependencies (§2.6): tuple-generating dependencies.

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrSet, Relation, Schema, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A distinct `(Y-values, Z-values)` combination paired with a
/// representative row.
type YzRep = ((Vec<Value>, Vec<Value>), usize);

/// A multivalued dependency `X ↠ Y` with `Z = R − X − Y`: within each
/// `X`-group, the set of `Y`-values is independent of the `Z`-values, i.e.
/// `r = π_XY(r) ⋈ π_XZ(r)` (§2.6.1).
///
/// Unlike the equality-generating notations, a violation witness is a tuple
/// *pair* whose recombination `(t1[XY], t2[Z])` is missing from the
/// relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mvd {
    x: AttrSet,
    y: AttrSet,
    display: String,
}

impl Mvd {
    /// Build an MVD `X ↠ Y`. `Y` is implicitly made disjoint from `X`
    /// (`t[Y∩X]` is determined by `t[X]` anyway).
    pub fn new(schema: &Schema, x: AttrSet, y: AttrSet) -> Self {
        let y = y.difference(x);
        let names = |s: AttrSet| {
            s.iter()
                .map(|a| schema.name(a).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} ->> {}", names(x), names(y));
        Mvd { x, y, display }
    }

    /// The Fig. 1 embedding: an FD `X → Y` is the MVD `X ↠ Y` whose
    /// per-group `Y`-value set has size 1 (§2.6.2). (Every FD is an MVD.)
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        Mvd::new(schema, fd.lhs(), fd.rhs())
    }

    /// The determinant `X`.
    pub fn x(&self) -> AttrSet {
        self.x
    }

    /// The dependent set `Y`.
    pub fn y(&self) -> AttrSet {
        self.y
    }

    /// The complement `Z = R − X − Y` for a given relation.
    pub fn z(&self, r: &Relation) -> AttrSet {
        r.all_attrs().difference(self.x).difference(self.y)
    }

    /// Number of *spurious* tuples the decomposition `π_XY ⋈ π_XZ` would
    /// introduce: `Σ_groups (|Y_g|·|Z_g| − |YZ_g|)` over distinct values.
    /// Zero iff the MVD holds. This is the quantity AMVD accuracy
    /// thresholds (§2.6.6).
    pub fn spurious_tuples(&self, r: &Relation) -> usize {
        let z = self.z(r);
        let mut total = 0usize;
        for rows in r.group_by(self.x).values() {
            let mut ys: HashSet<Vec<Value>> = HashSet::new();
            let mut zs: HashSet<Vec<Value>> = HashSet::new();
            let mut yzs: HashSet<(Vec<Value>, Vec<Value>)> = HashSet::new();
            for &row in rows {
                let yv = r.project_row(row, self.y);
                let zv = r.project_row(row, z);
                ys.insert(yv.clone());
                zs.insert(zv.clone());
                yzs.insert((yv, zv));
            }
            total += ys.len() * zs.len() - yzs.len();
        }
        total
    }

    /// Size of the join `π_XY ⋈ π_XZ` (distinct tuples), the denominator of
    /// the AMVD accuracy measure.
    pub fn join_size(&self, r: &Relation) -> usize {
        let z = self.z(r);
        let mut total = 0usize;
        for rows in r.group_by(self.x).values() {
            let mut ys: HashSet<Vec<Value>> = HashSet::new();
            let mut zs: HashSet<Vec<Value>> = HashSet::new();
            for &row in rows {
                ys.insert(r.project_row(row, self.y));
                zs.insert(r.project_row(row, z));
            }
            total += ys.len() * zs.len();
        }
        total
    }
}

impl Dependency for Mvd {
    fn kind(&self) -> DepKind {
        DepKind::Mvd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.spurious_tuples(r) == 0
    }

    /// Witness pairs `(t1, t2)` in the same `X`-group for which no tuple
    /// carries `(t1[Y], t2[Z])` — the tuples whose required "generated"
    /// counterpart is absent.
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let z = self.z(r);
        let mut out = Vec::new();
        for rows in r.group_by(self.x).values() {
            if rows.len() < 2 {
                continue;
            }
            let mut yzs: HashSet<(Vec<Value>, Vec<Value>)> = HashSet::new();
            for &row in rows {
                yzs.insert((r.project_row(row, self.y), r.project_row(row, z)));
            }
            // Representative per (Y, Z) combination to keep witness count
            // proportional to distinct combinations, not tuples.
            let mut reps: HashMap<(Vec<Value>, Vec<Value>), usize> = HashMap::new();
            for &row in rows {
                reps.entry((r.project_row(row, self.y), r.project_row(row, z)))
                    .or_insert(row);
            }
            let mut reps: Vec<YzRep> = reps.into_iter().collect();
            reps.sort_by_key(|(_, row)| *row);
            for (i, ((y1, z1), r1)) in reps.iter().enumerate() {
                for ((y2, z2), r2) in reps.iter().skip(i + 1) {
                    // Both recombinations must exist: (y1, z2) and (y2, z1).
                    if !yzs.contains(&(y1.clone(), z2.clone()))
                        || !yzs.contains(&(y2.clone(), z1.clone()))
                    {
                        out.push(Violation::pair(*r1, *r2, self.y.union(z)));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out.dedup();
        out
    }
}

impl fmt::Display for Mvd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MVD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn mvd1_on_r5() {
        // §2.6.1: mvd1: address, rate ↠ region holds in r5.
        let r = hotels_r5();
        let s = r.schema();
        let mvd = Mvd::new(
            s,
            AttrSet::from_ids([s.id("address"), s.id("rate")]),
            AttrSet::single(s.id("region")),
        );
        assert!(mvd.holds(&r));
        assert!(mvd.violations(&r).is_empty());
    }

    #[test]
    fn classic_textbook_violation() {
        // course ↠ teacher with Z = book: a missing recombination.
        let r = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "date".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let mvd = Mvd::new(
            s,
            AttrSet::single(s.id("course")),
            AttrSet::single(s.id("teacher")),
        );
        assert!(!mvd.holds(&r));
        assert_eq!(mvd.spurious_tuples(&r), 2); // (ann,date) and (bob,codd)
        let v = mvd.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![0, 1]);
        // Completing the cross product repairs it.
        let r2 = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "date".into()])
            .row(vec!["db".into(), "ann".into(), "date".into()])
            .row(vec!["db".into(), "bob".into(), "codd".into()])
            .build()
            .unwrap();
        assert!(mvd.holds(&r2));
    }

    #[test]
    fn fd_embedding_is_sound() {
        // Every FD is an MVD: whenever the FD holds, the MVD holds.
        let r = hotels_r5();
        let s = r.schema();
        for text in ["address -> region", "name -> address", "rate -> region"] {
            let fd = Fd::parse(s, text).unwrap();
            let mvd = Mvd::from_fd(s, &fd);
            if fd.holds(&r) {
                assert!(mvd.holds(&r), "FD holds but MVD fails for {text}");
            }
        }
    }

    #[test]
    fn mvd_strictly_weaker_than_fd() {
        // The cross-product completion satisfies course ↠ teacher but not
        // course → teacher: MVDs are strictly more permissive.
        let r = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "codd".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let fd = Fd::parse(s, "course -> teacher").unwrap();
        let mvd = Mvd::from_fd(s, &fd);
        assert!(!fd.holds(&r));
        assert!(mvd.holds(&r)); // book is constant; independence trivially holds
    }

    #[test]
    fn join_size_and_spurious_consistent() {
        let r = hotels_r5();
        let s = r.schema();
        let mvd = Mvd::new(
            s,
            AttrSet::single(s.id("name")),
            AttrSet::single(s.id("region")),
        );
        let distinct_tuples = r.distinct_count(r.all_attrs());
        assert_eq!(mvd.join_size(&r) - mvd.spurious_tuples(&r), distinct_tuples);
    }

    #[test]
    fn y_overlapping_x_normalized() {
        let r = hotels_r5();
        let s = r.schema();
        let x = AttrSet::from_ids([s.id("name"), s.id("address")]);
        let y = AttrSet::from_ids([s.id("name"), s.id("region")]);
        let mvd = Mvd::new(s, x, y);
        assert_eq!(mvd.y(), AttrSet::single(s.id("region")));
    }
}
