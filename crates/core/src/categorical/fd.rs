//! Functional dependencies — the root of the family tree (§1.1).

use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::{AttrSet, Relation, Schema, StrippedPartition};
use std::fmt;

/// A functional dependency `X → Y`: tuples equal on `X` must be equal
/// on `Y`.
///
/// ```
/// use deptree_core::{Dependency, Fd};
/// use deptree_relation::examples::hotels_r1;
///
/// let r = hotels_r1();
/// let fd = Fd::parse(r.schema(), "address -> region").unwrap();
/// assert!(!fd.holds(&r)); // t3, t4 violate it (the paper's example)
/// assert_eq!(fd.violations(&r).len(), 2); // …and t5, t6 spuriously
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    lhs: AttrSet,
    rhs: AttrSet,
    /// Human-readable form, precomputed for Display.
    display: String,
}

impl Fd {
    /// Build an FD from attribute sets.
    pub fn new(schema: &Schema, lhs: AttrSet, rhs: AttrSet) -> Self {
        let fmt_side = |s: AttrSet| {
            s.iter()
                .map(|a| schema.name(a).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", fmt_side(lhs), fmt_side(rhs));
        Fd { lhs, rhs, display }
    }

    /// Parse `"a, b -> c"` against a schema. Returns `None` when an
    /// attribute name is unknown or the arrow is missing.
    pub fn parse(schema: &Schema, text: &str) -> Option<Self> {
        let (lhs_text, rhs_text) = text.split_once("->")?;
        let parse_side = |side: &str| -> Option<AttrSet> {
            let mut set = AttrSet::empty();
            for name in side.split(',') {
                let name = name.trim();
                if name.is_empty() {
                    continue;
                }
                set = set.insert(schema.attr_id(name)?);
            }
            Some(set)
        };
        let lhs = parse_side(lhs_text)?;
        let rhs = parse_side(rhs_text)?;
        Some(Fd::new(schema, lhs, rhs))
    }

    /// Determinant attributes `X`.
    #[inline]
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent attributes `Y`.
    #[inline]
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// Is the FD trivial (`Y ⊆ X`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// The rule in the `"a, b -> c"` form accepted by [`Fd::parse`], so
    /// an FD can round-trip through a wire protocol as plain text.
    pub fn rule(&self) -> &str {
        &self.display
    }

    /// The `g3` error (Kivinen–Mannila): fraction of rows to remove so the
    /// FD holds exactly. This is the measure AFDs threshold (§2.3.1).
    pub fn g3(&self, r: &Relation) -> f64 {
        let px = StrippedPartition::from_attrs(r, self.lhs);
        let py = StrippedPartition::from_attrs(r, self.rhs);
        px.g3_error(&py)
    }

    /// Check a single tuple pair: does it *violate* the FD?
    #[inline]
    pub fn pair_violates(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        r.rows_agree(t1, t2, self.lhs) && !r.rows_agree(t1, t2, self.rhs)
    }
}

impl Dependency for Fd {
    fn kind(&self) -> DepKind {
        DepKind::Fd
    }

    fn holds(&self, r: &Relation) -> bool {
        if self.is_trivial() {
            return true;
        }
        let px = StrippedPartition::from_attrs(r, self.lhs);
        let pxy = StrippedPartition::from_attrs(r, self.lhs.union(self.rhs));
        px.refines(&pxy)
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for rows in r.group_by(self.lhs).values() {
            if rows.len() < 2 {
                continue;
            }
            // Split the X-group by Y-values: rows in different Y-subgroups
            // violate pairwise; report one witness per subgroup pair using
            // the smallest row of each subgroup.
            let sub = r.select_rows(rows);
            // `select_rows` keeps attribute names, so every lookup hits;
            // filter_map is defensive rather than a reachable skip.
            let sub_schema_rhs: AttrSet = self
                .rhs
                .iter()
                .filter_map(|a| sub.schema().attr_id(r.schema().name(a)))
                .collect();
            let mut reps: Vec<usize> = sub
                .group_by(sub_schema_rhs)
                .values()
                .filter_map(|g| g.iter().min().map(|m| rows[*m]))
                .collect();
            reps.sort_unstable();
            for i in 0..reps.len() {
                for j in (i + 1)..reps.len() {
                    out.push(Violation::pair(reps[i], reps[j], self.rhs));
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r5};

    #[test]
    fn fd1_on_r1_matches_paper_narrative() {
        // §1.1: fd1: address → region. t1,t2 satisfy; t3,t4 violate (real
        // error). §1.2: t5,t6 also trip the strict-equality check even
        // though "Chicago" / "Chicago, IL" denote the same region — the
        // false positive that motivates metric extensions.
        let r = hotels_r1();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        assert!(!fd.holds(&r));
        let v = fd.violations(&r);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rows, vec![2, 3]); // t3, t4 — true violation
        assert_eq!(v[1].rows, vec![4, 5]); // t5, t6 — spurious violation
    }

    #[test]
    fn rule_round_trips_through_parse() {
        let r = hotels_r1();
        let fd = Fd::parse(r.schema(), "name ,  address->  region").unwrap();
        assert_eq!(fd.rule(), "name, address -> region");
        assert_eq!(Fd::parse(r.schema(), fd.rule()).unwrap(), fd);
    }

    #[test]
    fn fd1_false_positive_rows_4_5() {
        // §1.2: t5, t6 have the same address and regions "Chicago" vs
        // "Chicago, IL" — a spurious violation under strict equality.
        let r = hotels_r1();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        assert!(fd.pair_violates(&r, 4, 5));
        // and t7, t8 (the true error) are MISSED: addresses differ.
        assert!(!fd.pair_violates(&r, 6, 7));
    }

    #[test]
    fn g3_on_r5() {
        // §2.3.1: g3(address → region, r5) = 1/4; g3(name → address) = 1/2.
        let r = hotels_r5();
        let fd1 = Fd::parse(r.schema(), "address -> region").unwrap();
        assert!((fd1.g3(&r) - 0.25).abs() < 1e-12);
        let fd2 = Fd::parse(r.schema(), "name -> address").unwrap();
        assert!((fd2.g3(&r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trivial_fd_always_holds() {
        let r = hotels_r5();
        let s = r.schema();
        let a = AttrSet::from_ids([s.id("name"), s.id("rate")]);
        let fd = Fd::new(s, a, AttrSet::single(s.id("rate")));
        assert!(fd.is_trivial());
        assert!(fd.holds(&r));
        assert!(fd.violations(&r).is_empty());
    }

    #[test]
    fn parse_errors() {
        let r = hotels_r5();
        assert!(Fd::parse(r.schema(), "bogus -> region").is_none());
        assert!(Fd::parse(r.schema(), "no arrow here").is_none());
        let multi = Fd::parse(r.schema(), "name, address -> region, rate").unwrap();
        assert_eq!(multi.lhs().len(), 2);
        assert_eq!(multi.rhs().len(), 2);
    }

    #[test]
    fn display() {
        let r = hotels_r5();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        assert_eq!(fd.to_string(), "FD: address -> region");
    }

    #[test]
    fn empty_lhs_means_constant_column() {
        // ∅ → Y holds iff Y is constant across the relation.
        let r = hotels_r5();
        let s = r.schema();
        let fd = Fd::new(s, AttrSet::empty(), AttrSet::single(s.id("name")));
        assert!(fd.holds(&r)); // name is constantly "Hyatt"
        let fd2 = Fd::new(s, AttrSet::empty(), AttrSet::single(s.id("region")));
        assert!(!fd2.holds(&r));
    }
}
