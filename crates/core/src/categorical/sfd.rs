//! Soft functional dependencies (§2.1).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_relation::Relation;
use std::fmt;

/// A soft functional dependency `X →ₛ Y`: the FD `X → Y` holds "not with
/// certainty but with high probability", measured on domains:
///
/// `S(X → Y, r) = |dom(X)|_r / |dom(X, Y)|_r`
///
/// holds iff `S ≥ s` (§2.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Sfd {
    embedded: Fd,
    threshold: f64,
}

impl Sfd {
    /// Build an SFD over an embedded FD with a minimum strength `s`.
    ///
    /// # Panics
    /// Panics unless `0 < s ≤ 1`.
    pub fn new(embedded: Fd, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "strength threshold must be in (0, 1]"
        );
        Sfd {
            embedded,
            threshold,
        }
    }

    /// The Fig. 1 embedding: an FD is an SFD with strength 1 (§2.1.2).
    pub fn from_fd(fd: Fd) -> Self {
        Sfd::new(fd, 1.0)
    }

    /// The embedded FD.
    pub fn embedded(&self) -> &Fd {
        &self.embedded
    }

    /// The minimum strength `s`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The strength measure `S(X → Y, r)` (§2.1.1). Defined as 1 on the
    /// empty relation.
    pub fn strength(&self, r: &Relation) -> f64 {
        if r.n_rows() == 0 {
            return 1.0;
        }
        let dom_x = r.distinct_count(self.embedded.lhs());
        let dom_xy = r.distinct_count(self.embedded.lhs().union(self.embedded.rhs()));
        dom_x as f64 / dom_xy as f64
    }
}

impl Dependency for Sfd {
    fn kind(&self) -> DepKind {
        DepKind::Sfd
    }

    fn holds(&self, r: &Relation) -> bool {
        self.strength(r) >= self.threshold
    }

    /// Witnesses of the *embedded* FD — useful when an SFD is used as a
    /// (soft) data-quality rule.
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        self.embedded.violations(r)
    }
}

impl fmt::Display for Sfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SFD(s≥{}): {}",
            self.threshold,
            &self.embedded.to_string()[4..]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r5};

    #[test]
    fn paper_strength_values_on_r5() {
        // §2.1.1: S(address → region, r5) = 2/3; S(name → address) = 1/2.
        let r = hotels_r5();
        let s1 = Sfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.6);
        assert!((s1.strength(&r) - 2.0 / 3.0).abs() < 1e-12);
        assert!(s1.holds(&r));
        let s2 = Sfd::new(Fd::parse(r.schema(), "name -> address").unwrap(), 0.6);
        assert!((s2.strength(&r) - 0.5).abs() < 1e-12);
        assert!(!s2.holds(&r));
    }

    #[test]
    fn fd_embedding_strength_one() {
        // §2.1.2: sfd1: address →₁ region on r1 where the FD... does not
        // hold in r1 because of t3/t4 and t5/t6; the paper states
        // S(address → region, r1) = 1 for the *corrected* narrative.
        // We verify the embedding property instead: on any instance, the
        // FD holds iff its strength is exactly 1.
        for r in [hotels_r1(), hotels_r5()] {
            for lhs in ["address", "name", "region"] {
                let fd = Fd::parse(r.schema(), &format!("{lhs} -> rate"))
                    .or_else(|| Fd::parse(r.schema(), &format!("{lhs} -> price")));
                let Some(fd) = fd else { continue };
                let sfd = Sfd::from_fd(fd.clone());
                assert_eq!(
                    fd.holds(&r),
                    (sfd.strength(&r) - 1.0).abs() < 1e-12,
                    "embedding mismatch for {fd} on instance"
                );
                assert_eq!(fd.holds(&r), sfd.holds(&r));
            }
        }
    }

    #[test]
    fn strength_bounds() {
        let r = hotels_r5();
        let sfd = Sfd::new(Fd::parse(r.schema(), "name -> region").unwrap(), 0.1);
        let s = sfd.strength(&r);
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    #[should_panic(expected = "strength threshold")]
    fn zero_threshold_rejected() {
        let r = hotels_r5();
        Sfd::new(Fd::parse(r.schema(), "name -> region").unwrap(), 0.0);
    }

    #[test]
    fn display_mentions_threshold() {
        let r = hotels_r5();
        let sfd = Sfd::new(Fd::parse(r.schema(), "address -> region").unwrap(), 0.8);
        assert_eq!(sfd.to_string(), "SFD(s≥0.8): address -> region");
    }
}
