//! Dependencies over categorical data (survey §2): equality-based
//! notations and their statistical and conditional extensions.

mod afd;
mod amvd;
mod cfd;
mod ecfd;
mod fd;
mod fhd;
mod mvd;
mod nud;
mod pfd;
mod sfd;

pub use afd::Afd;
pub use amvd::Amvd;
pub use cfd::{Cfd, CfdTableau, Pattern, PatternCell};
pub use ecfd::{ECfd, PatternOp};
pub use fd::Fd;
pub use fhd::Fhd;
pub use mvd::Mvd;
pub use nud::Nud;
pub use pfd::Pfd;
pub use sfd::Sfd;
