//! Probabilistic approximate constraints (§3.5).

use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::Ned;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// A probabilistic approximate constraint `X_Δ →^δ Y_ε` (Korn et al.):
/// among tuple pairs within tolerance `Δ` on every `X`-attribute, the
/// fraction within tolerance `ε` on every `Y`-attribute must be at least
/// the confidence `δ` (§3.5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Pac {
    lhs: Vec<(AttrId, Metric, f64)>,
    rhs: Vec<(AttrId, Metric, f64)>,
    delta: f64,
    display: String,
}

impl Pac {
    /// Build a PAC. `lhs`/`rhs` carry `(attribute, metric, tolerance)`.
    ///
    /// # Panics
    /// Panics unless `0 < δ ≤ 1`, `rhs` is non-empty and all tolerances
    /// are non-negative.
    pub fn new(
        schema: &Schema,
        lhs: Vec<(AttrId, Metric, f64)>,
        rhs: Vec<(AttrId, Metric, f64)>,
        delta: f64,
    ) -> Self {
        assert!(!rhs.is_empty(), "PAC needs at least one right-hand atom");
        assert!(delta > 0.0 && delta <= 1.0, "confidence must be in (0, 1]");
        assert!(
            lhs.iter().chain(&rhs).all(|(_, _, t)| *t >= 0.0),
            "tolerances must be non-negative"
        );
        let side = |atoms: &[(AttrId, Metric, f64)]| {
            atoms
                .iter()
                .map(|(a, _, t)| format!("{}_{}", schema.name(*a), t))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let display = format!("{} ->^{} {}", side(&lhs), delta, side(&rhs));
        Pac {
            lhs,
            rhs,
            delta,
            display,
        }
    }

    /// The Fig. 1 embedding: an NED is a PAC with confidence `δ = 1`
    /// (§3.5.2).
    pub fn from_ned(schema: &Schema, ned: &Ned) -> Self {
        let conv = |atoms: &[crate::heterogeneous::NedAtom]| {
            atoms
                .iter()
                .map(|a| (a.attr, a.metric.clone(), a.threshold))
                .collect::<Vec<_>>()
        };
        Pac::new(schema, conv(ned.lhs()), conv(ned.rhs()), 1.0)
    }

    /// The confidence requirement `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Left atoms.
    pub fn lhs(&self) -> &[(AttrId, Metric, f64)] {
        &self.lhs
    }

    /// Right atoms.
    pub fn rhs(&self) -> &[(AttrId, Metric, f64)] {
        &self.rhs
    }

    fn within(atoms: &[(AttrId, Metric, f64)], r: &Relation, t1: usize, t2: usize) -> bool {
        atoms
            .iter()
            .all(|(a, m, tol)| m.dist(r.value(t1, *a), r.value(t2, *a)) <= *tol)
    }

    /// `(matching pairs, satisfying pairs)` — the numerator and denominator
    /// of the empirical probability.
    pub fn pair_counts(&self, r: &Relation) -> (usize, usize) {
        let mut matched = 0usize;
        let mut ok = 0usize;
        for (i, j) in r.row_pairs() {
            if Self::within(&self.lhs, r, i, j) {
                matched += 1;
                if Self::within(&self.rhs, r, i, j) {
                    ok += 1;
                }
            }
        }
        (matched, ok)
    }

    /// The empirical probability
    /// `Pr(|t_i[B] − t_j[B]| ≤ ε ∀B | |t_i[A] − t_j[A]| ≤ Δ ∀A)`.
    /// Defined as 1 when no pair matches the premise.
    pub fn probability(&self, r: &Relation) -> f64 {
        let (matched, ok) = self.pair_counts(r);
        if matched == 0 {
            1.0
        } else {
            ok as f64 / matched as f64
        }
    }
}

impl Dependency for Pac {
    fn kind(&self) -> DepKind {
        DepKind::Pac
    }

    fn holds(&self, r: &Relation) -> bool {
        self.probability(r) >= self.delta
    }

    /// Witnesses: LHS-matching pairs outside the RHS tolerance (reported
    /// even when the PAC holds overall — they are what a PAC-Man-style
    /// monitor would surface, §3.5.3).
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if Self::within(&self.lhs, r, i, j) && !Self::within(&self.rhs, r, i, j) {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|(a, m, tol)| m.dist(r.value(i, *a), r.value(j, *a)) > *tol)
                    .map(|(a, _, _)| *a)
                    .collect();
                out.push(Violation::pair(i, j, bad));
            }
        }
        out
    }
}

impl fmt::Display for Pac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAC: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::NedAtom;
    use deptree_relation::examples::hotels_r6;

    fn pac1(r: &Relation) -> Pac {
        // §3.5.1: pac1: price₁₀₀ →^0.9 tax₁₀.
        let s = r.schema();
        Pac::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 100.0)],
            vec![(s.id("tax"), Metric::AbsDiff, 10.0)],
            0.9,
        )
    }

    #[test]
    fn paper_counts_8_of_11() {
        // §3.5.1: 11 pairs with price distance ≤ 100; 3 of them have tax
        // distance > 10 → Pr = 8/11 ≈ 0.727 < 0.9, so r6 violates pac1.
        let r = hotels_r6();
        let p = pac1(&r);
        let (matched, ok) = p.pair_counts(&r);
        assert_eq!(matched, 11);
        assert_eq!(ok, 8);
        assert!((p.probability(&r) - 8.0 / 11.0).abs() < 1e-12);
        assert!(!p.holds(&r));
        assert_eq!(p.violations(&r).len(), 3);
    }

    #[test]
    fn lower_confidence_accepts() {
        let r = hotels_r6();
        let s = r.schema();
        let p = Pac::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 100.0)],
            vec![(s.id("tax"), Metric::AbsDiff, 10.0)],
            0.7,
        );
        assert!(p.holds(&r)); // 0.727 ≥ 0.7
    }

    #[test]
    fn ned_embedding_delta_one() {
        let r = hotels_r6();
        let s = r.schema();
        let ned = Ned::new(
            s,
            vec![
                NedAtom::new(s.id("name"), Metric::Levenshtein, 1.0),
                NedAtom::new(s.id("address"), Metric::Levenshtein, 5.0),
            ],
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
        );
        let pac = Pac::from_ned(s, &ned);
        assert_eq!(pac.delta(), 1.0);
        assert_eq!(ned.holds(&r), pac.holds(&r));
        assert_eq!(pac.to_string(), "PAC: name_1 address_5 ->^1 street_5");
        let mut r2 = r.clone();
        r2.set_value(5, s.id("street"), "very different".into());
        assert_eq!(ned.holds(&r2), pac.holds(&r2));
        assert!(!pac.holds(&r2));
    }

    #[test]
    fn vacuous_premise_holds() {
        let r = hotels_r6();
        let s = r.schema();
        let p = Pac::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 0.5)],
            vec![(s.id("tax"), Metric::AbsDiff, 0.0)],
            1.0,
        );
        // Only exact price ties match (t2/t6 price 300): tax 20 = 20 ✓.
        assert!(p.holds(&r));
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn bad_delta_rejected() {
        let r = hotels_r6();
        let s = r.schema();
        Pac::new(
            s,
            vec![(s.id("price"), Metric::AbsDiff, 1.0)],
            vec![(s.id("tax"), Metric::AbsDiff, 1.0)],
            0.0,
        );
    }
}
