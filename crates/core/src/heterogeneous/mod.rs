//! Dependencies over heterogeneous data (survey §3): similarity-based
//! notations tolerant to representation variety.

mod cd;
mod cdd;
mod cmd;
mod dd;
mod ffd;
mod md;
mod mfd;
mod ned;
mod pac;

pub use cd::{Cd, SimFn};
pub use cdd::{Cdd, Condition};
pub use cmd::Cmd;
pub use dd::{Dd, DiffAtom};
pub use ffd::Ffd;
pub use md::Md;
pub use mfd::Mfd;
pub use ned::{Ned, NedAtom};
pub use pac::Pac;
