//! Comparable dependencies over dataspaces (§3.4).

use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::Ned;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Schema, Value};
use std::fmt;

/// A similarity function `θ(Aᵢ, Aⱼ)` over a pair of (possibly synonym)
/// attributes from heterogeneous sources (§3.4.1). A tuple pair is similar
/// w.r.t. θ if **at least one** of the three comparisons succeeds:
///
/// * both values on `Aᵢ`, within distance `d_ii`;
/// * one value on `Aᵢ` against the other's `Aⱼ`, within `d_ij`;
/// * both values on `Aⱼ`, within `d_jj`.
///
/// `Null` values (the synonym column the tuple's source doesn't use) make
/// the corresponding comparison fail, which is exactly the dataspace
/// behaviour: comparison falls through to the matched attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SimFn {
    /// First attribute `Aᵢ`.
    pub a: AttrId,
    /// Second attribute `Aⱼ` (may equal `a` for single-attribute θ).
    pub b: AttrId,
    /// Distance metric shared by the three comparisons.
    pub metric: Metric,
    /// Threshold for the `Aᵢ ≈ Aᵢ` comparison.
    pub d_aa: f64,
    /// Threshold for the cross `Aᵢ ≈ Aⱼ` comparison.
    pub d_ab: f64,
    /// Threshold for the `Aⱼ ≈ Aⱼ` comparison.
    pub d_bb: f64,
}

impl SimFn {
    /// Build a similarity function over a synonym attribute pair.
    pub fn new(a: AttrId, b: AttrId, metric: Metric, d_aa: f64, d_ab: f64, d_bb: f64) -> Self {
        SimFn {
            a,
            b,
            metric,
            d_aa,
            d_ab,
            d_bb,
        }
    }

    /// Single-attribute θ(A): only the `A ≈ A` comparison, as used when a
    /// CD degenerates to an NED (§3.4.2).
    pub fn single(attr: AttrId, metric: Metric, d: f64) -> Self {
        SimFn::new(attr, attr, metric, d, d, d)
    }

    fn close(&self, x: &Value, y: &Value, d: f64) -> bool {
        !x.is_null() && !y.is_null() && self.metric.dist(x, y) <= d
    }

    /// Is a tuple pair similar w.r.t. this function
    /// (`(t1, t2) ≈ θ(Aᵢ, Aⱼ)`)?
    pub fn similar(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        let (a1, b1) = (r.value(t1, self.a), r.value(t1, self.b));
        let (a2, b2) = (r.value(t2, self.a), r.value(t2, self.b));
        self.close(a1, a2, self.d_aa)
            || self.close(b1, b2, self.d_bb)
            || self.close(a1, b2, self.d_ab)
            || self.close(b1, a2, self.d_ab)
    }

    /// The attributes the function touches.
    pub fn attrs(&self) -> AttrSet {
        AttrSet::single(self.a).insert(self.b)
    }
}

/// A comparable dependency `⋀ θ(Aᵢ, Aⱼ) → θ(Bᵢ, Bⱼ)`: pairs similar on
/// every left similarity function must be similar on the right one
/// (§3.4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Cd {
    lhs: Vec<SimFn>,
    rhs: SimFn,
    display: String,
}

impl Cd {
    /// Build a CD.
    pub fn new(schema: &Schema, lhs: Vec<SimFn>, rhs: SimFn) -> Self {
        let render = |f: &SimFn| {
            if f.a == f.b {
                format!("θ({})", schema.name(f.a))
            } else {
                format!("θ({},{})", schema.name(f.a), schema.name(f.b))
            }
        };
        let display = format!(
            "{} -> {}",
            lhs.iter().map(render).collect::<Vec<_>>().join(" ∧ "),
            render(&rhs)
        );
        Cd { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an NED is a CD whose similarity functions are
    /// all single-attribute (§3.4.2). `None` if the NED has no RHS atom
    /// (cannot happen for NEDs built through [`Ned::new`]).
    pub fn from_ned(schema: &Schema, ned: &Ned) -> Option<Self> {
        let rhs0 = ned.rhs().first()?;
        // A CD has a single RHS θ; NEDs with several RHS atoms map to a
        // conjunction of CDs — take them one at a time.
        let lhs = ned
            .lhs()
            .iter()
            .map(|a| SimFn::single(a.attr, a.metric.clone(), a.threshold))
            .collect();
        Some(Cd::new(
            schema,
            lhs,
            SimFn::single(rhs0.attr, rhs0.metric.clone(), rhs0.threshold),
        ))
    }

    /// Left similarity functions.
    pub fn lhs(&self) -> &[SimFn] {
        &self.lhs
    }

    /// Right similarity function.
    pub fn rhs(&self) -> &SimFn {
        &self.rhs
    }

    /// Is a pair similar on the whole left side?
    pub fn lhs_similar(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.lhs.iter().all(|f| f.similar(r, t1, t2))
    }

    /// `g3`-style error: minimum fraction of *pairs* to ignore for the CD
    /// to hold, i.e. the fraction of LHS-similar pairs violating the RHS
    /// (the error-validation measure of §3.4.3).
    pub fn g3_pairs(&self, r: &Relation) -> f64 {
        let mut matched = 0usize;
        let mut bad = 0usize;
        for (i, j) in r.row_pairs() {
            if self.lhs_similar(r, i, j) {
                matched += 1;
                if !self.rhs.similar(r, i, j) {
                    bad += 1;
                }
            }
        }
        if matched == 0 {
            0.0
        } else {
            bad as f64 / matched as f64
        }
    }
}

impl Dependency for Cd {
    fn kind(&self) -> DepKind {
        DepKind::Cd
    }

    fn holds(&self, r: &Relation) -> bool {
        r.row_pairs()
            .all(|(i, j)| !self.lhs_similar(r, i, j) || self.rhs.similar(r, i, j))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if self.lhs_similar(r, i, j) && !self.rhs.similar(r, i, j) {
                out.push(Violation::pair(i, j, self.rhs.attrs()));
            }
        }
        out
    }
}

impl fmt::Display for Cd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::NedAtom;
    use deptree_relation::examples::{dataspace_cd, hotels_r6};

    fn cd1(r: &Relation) -> Cd {
        // §3.4.1: θ(region, city): [region ≈≤5 region, region ≈≤5 city,
        // city ≈≤5 city]; θ(addr, post): [addr ≈≤7 addr, addr ≈≤9 post,
        // post ≈≤5 post]; cd1: θ(region, city) → θ(addr, post).
        //
        // The paper reports distance 5 between "#7 T Avenue" and
        // "No 7 T Ave" under its tokenization; plain character-level
        // Levenshtein gives 6, so the post–post threshold is 6 here to
        // preserve the example's satisfaction pattern.
        let s = r.schema();
        Cd::new(
            s,
            vec![SimFn::new(
                s.id("region"),
                s.id("city"),
                Metric::Levenshtein,
                5.0,
                5.0,
                5.0,
            )],
            SimFn::new(
                s.id("addr"),
                s.id("post"),
                Metric::Levenshtein,
                7.0,
                9.0,
                6.0,
            ),
        )
    }

    #[test]
    fn paper_dataspace_pairs() {
        let r = dataspace_cd();
        let cd = cd1(&r);
        // t1, t2: region "Petersburg" vs city "St Petersburg" distance 3 ≤ 5.
        assert!(cd.lhs_similar(&r, 0, 1));
        // And their addr/post "#7 T Avenue" vs "#7 T Avenue" distance 0.
        assert!(cd.rhs().similar(&r, 0, 1));
        // t2, t3: post values distance ≤ 5 per the paper.
        assert!(cd.rhs().similar(&r, 1, 2));
        assert!(cd.holds(&r));
    }

    #[test]
    fn violation_when_similar_regions_but_far_addresses() {
        let mut r = dataspace_cd();
        let s = r.schema().clone();
        r.set_value(1, s.id("post"), "999 Completely Different Blvd".into());
        let cd = cd1(&r);
        assert!(!cd.holds(&r));
        let v = cd.violations(&r);
        assert!(v.iter().any(|v| v.rows == vec![0, 1]));
    }

    #[test]
    fn null_synonym_columns_fall_through() {
        // t1 has no city value; similarity must come from region–city
        // cross comparison, not crash on nulls.
        let r = dataspace_cd();
        let s = r.schema();
        let f = SimFn::new(
            s.id("region"),
            s.id("city"),
            Metric::Levenshtein,
            5.0,
            5.0,
            5.0,
        );
        assert!(f.similar(&r, 0, 1)); // cross comparison
        assert!(f.similar(&r, 0, 2)); // region–region: "Petersburg" vs "St Petersburg" = 3
    }

    #[test]
    fn ned_embedding() {
        let r = hotels_r6();
        let s = r.schema();
        let ned = Ned::new(
            s,
            vec![
                NedAtom::new(s.id("name"), Metric::Levenshtein, 1.0),
                NedAtom::new(s.id("address"), Metric::Levenshtein, 5.0),
            ],
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
        );
        let cd = Cd::from_ned(s, &ned).unwrap();
        assert_eq!(ned.holds(&r), cd.holds(&r));
        assert_eq!(cd.to_string(), "CD: θ(name) ∧ θ(address) -> θ(street)");
        let mut r2 = r.clone();
        r2.set_value(5, s.id("street"), "another street entirely".into());
        assert_eq!(ned.holds(&r2), cd.holds(&r2));
        assert!(!cd.holds(&r2));
    }

    #[test]
    fn g3_pairs_measure() {
        let r = dataspace_cd();
        let cd = cd1(&r);
        assert_eq!(cd.g3_pairs(&r), 0.0);
        let mut r2 = r.clone();
        let s = r2.schema().clone();
        r2.set_value(1, s.id("post"), "999 Completely Different Blvd".into());
        let cd2 = cd1(&r2);
        assert!(cd2.g3_pairs(&r2) > 0.0);
    }
}
