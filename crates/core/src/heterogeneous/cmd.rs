//! Conditional matching dependencies (§3.7.5).

use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::{Condition, Md};
use deptree_relation::{Relation, Schema};
use std::fmt;

/// A conditional matching dependency (Wang et al.): an MD that binds its
/// matching rule to the part of the relation selected by a categorical
/// condition — analogous to CFDs extending FDs (§3.7.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Cmd {
    condition: Condition,
    md: Md,
    display: String,
}

impl Cmd {
    /// Build a CMD.
    pub fn new(schema: &Schema, condition: Condition, md: Md) -> Self {
        let display = format!("[{}] {}", condition.render(schema), &md.to_string()[4..]);
        Cmd {
            condition,
            md,
            display,
        }
    }

    /// The Fig. 1 embedding: an MD is a CMD with the trivial condition.
    pub fn from_md(schema: &Schema, md: Md) -> Self {
        Cmd::new(schema, Condition::always(), md)
    }

    /// The condition.
    pub fn condition(&self) -> &Condition {
        &self.condition
    }

    /// The embedded MD.
    pub fn md(&self) -> &Md {
        &self.md
    }

    /// Rows the condition selects.
    pub fn matching_rows(&self, r: &Relation) -> Vec<usize> {
        (0..r.n_rows())
            .filter(|&row| self.condition.matches(r, row))
            .collect()
    }

    /// The `g3` error of §3.7.5: the minimum number of tuples to remove so
    /// the CMD holds. Computed greedily on the conflict graph: repeatedly
    /// drop the tuple involved in the most violations. (Exact computation
    /// is NP-complete — vertex cover — per Wang et al.; the greedy
    /// 2-approximation is the standard surrogate.)
    pub fn g3_upper_bound(&self, r: &Relation) -> usize {
        let mut edges: Vec<(usize, usize)> = self
            .violations(r)
            .into_iter()
            .map(|v| (v.rows[0], v.rows[1]))
            .collect();
        let mut removed = 0usize;
        while !edges.is_empty() {
            // Degree count.
            let mut deg = std::collections::HashMap::new();
            for &(a, b) in &edges {
                *deg.entry(a).or_insert(0usize) += 1;
                *deg.entry(b).or_insert(0usize) += 1;
            }
            let Some((&victim, _)) = deg.iter().max_by_key(|(_, d)| **d) else {
                break; // unreachable: `edges` is non-empty here
            };
            edges.retain(|&(a, b)| a != victim && b != victim);
            removed += 1;
        }
        removed
    }
}

impl Dependency for Cmd {
    fn kind(&self) -> DepKind {
        DepKind::Cmd
    }

    fn holds(&self, r: &Relation) -> bool {
        let rows = self.matching_rows(r);
        for (i, &t1) in rows.iter().enumerate() {
            for &t2 in rows.iter().skip(i + 1) {
                if self.md.lhs_similar(r, t1, t2) && !r.rows_agree(t1, t2, self.md.rhs()) {
                    return false;
                }
            }
        }
        true
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let rows = self.matching_rows(r);
        let mut out = Vec::new();
        for (i, &t1) in rows.iter().enumerate() {
            for &t2 in rows.iter().skip(i + 1) {
                if self.md.lhs_similar(r, t1, t2) && !r.rows_agree(t1, t2, self.md.rhs()) {
                    let bad = self
                        .md
                        .rhs()
                        .iter()
                        .filter(|&a| r.value(t1, a) != r.value(t2, a))
                        .collect();
                    out.push(Violation::pair(t1, t2, bad));
                }
            }
        }
        out
    }
}

impl fmt::Display for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CMD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_metrics::Metric;
    use deptree_relation::examples::hotels_r6;
    use deptree_relation::AttrSet;

    fn base_md(r: &Relation) -> Md {
        let s = r.schema();
        Md::new(
            s,
            vec![(s.id("name"), Metric::Levenshtein, 1.0)],
            AttrSet::single(s.id("zip")),
        )
    }

    #[test]
    fn md_embedding_trivial_condition() {
        let r = hotels_r6();
        let s = r.schema();
        let md = base_md(&r);
        let cmd = Cmd::from_md(s, md.clone());
        assert_eq!(md.holds(&r), cmd.holds(&r));
        assert_eq!(md.violations(&r).len(), cmd.violations(&r).len());
    }

    #[test]
    fn condition_narrows_scope() {
        // MD name≈ → zip⇌ fails globally on r6 (NC appears in New York and
        // San Jose with different zips) but holds within source s2.
        let r = hotels_r6();
        let s = r.schema();
        let md = base_md(&r);
        assert!(!md.holds(&r));
        let cmd = Cmd::new(s, Condition::always().and(s.id("source"), "s2"), md);
        assert_eq!(cmd.matching_rows(&r), vec![1, 3, 4]);
        assert!(cmd.holds(&r));
    }

    #[test]
    fn g3_bound_zero_iff_holds() {
        let r = hotels_r6();
        let s = r.schema();
        let good = Cmd::new(
            s,
            Condition::always().and(s.id("source"), "s2"),
            base_md(&r),
        );
        assert_eq!(good.g3_upper_bound(&r), 0);
        let bad = Cmd::from_md(s, base_md(&r));
        assert!(bad.g3_upper_bound(&r) >= 1);
    }

    #[test]
    fn display_includes_condition() {
        let r = hotels_r6();
        let s = r.schema();
        let cmd = Cmd::new(
            s,
            Condition::always().and(s.id("source"), "s2"),
            base_md(&r),
        );
        assert!(cmd.to_string().starts_with("CMD: [source=s2]"));
    }
}
