//! Neighborhood dependencies (§3.2).

use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::Mfd;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// One atom of a neighborhood predicate: "distance on `attr` under
/// `metric` is at most `threshold`" (`A^α` in §3.2.1, using the distance
/// convention).
#[derive(Debug, Clone, PartialEq)]
pub struct NedAtom {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The closeness function θ_A (as a distance).
    pub metric: Metric,
    /// The threshold α ≥ 0.
    pub threshold: f64,
}

impl NedAtom {
    /// Build an atom.
    ///
    /// # Panics
    /// Panics on a negative threshold.
    pub fn new(attr: AttrId, metric: Metric, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "closeness threshold must be non-negative");
        NedAtom {
            attr,
            metric,
            threshold,
        }
    }

    /// Does a tuple pair agree on this atom?
    #[inline]
    pub fn agrees(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.metric
            .dist(r.value(t1, self.attr), r.value(t2, self.attr))
            <= self.threshold
    }
}

/// A neighborhood dependency `A₁^α₁ … Aₙ^αₙ → B₁^β₁ … Bₘ^βₘ`: pairs close
/// on every left atom must be close on every right atom (§3.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Ned {
    lhs: Vec<NedAtom>,
    rhs: Vec<NedAtom>,
    display: String,
}

impl Ned {
    /// Build an NED.
    ///
    /// # Panics
    /// Panics if `rhs` is empty (an empty LHS is the "all pairs" predicate
    /// and is allowed).
    pub fn new(schema: &Schema, lhs: Vec<NedAtom>, rhs: Vec<NedAtom>) -> Self {
        assert!(!rhs.is_empty(), "NED needs at least one right-hand atom");
        let side = |atoms: &[NedAtom]| {
            atoms
                .iter()
                .map(|a| format!("{}^{}", schema.name(a.attr), a.threshold))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let display = format!("{} -> {}", side(&lhs), side(&rhs));
        Ned { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an MFD is an NED whose left thresholds are 0
    /// under the equality metric (§3.2.2).
    pub fn from_mfd(schema: &Schema, mfd: &Mfd) -> Self {
        let lhs = mfd
            .lhs()
            .iter()
            .map(|a| NedAtom::new(a, Metric::Equality, 0.0))
            .collect();
        let rhs = mfd
            .rhs()
            .iter()
            .map(|(a, m, d)| NedAtom::new(*a, m.clone(), *d))
            .collect();
        Ned::new(schema, lhs, rhs)
    }

    /// Left-hand atoms.
    pub fn lhs(&self) -> &[NedAtom] {
        &self.lhs
    }

    /// Right-hand atoms.
    pub fn rhs(&self) -> &[NedAtom] {
        &self.rhs
    }

    /// Does a pair agree on the whole left-hand predicate?
    pub fn lhs_agrees(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.lhs.iter().all(|a| a.agrees(r, t1, t2))
    }

    /// Does a pair satisfy the whole right-hand predicate?
    pub fn rhs_agrees(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.rhs.iter().all(|a| a.agrees(r, t1, t2))
    }

    fn atoms_as_tuples(atoms: &[NedAtom]) -> Vec<crate::pairs::MetricAtom> {
        atoms
            .iter()
            .map(|a| (a.attr, a.metric.clone(), a.threshold))
            .collect()
    }

    /// Support and confidence over all pairs: how many pairs match the LHS,
    /// and what fraction of those also satisfy the RHS. NED discovery
    /// searches for predicates with sufficient support and confidence
    /// (§3.2.3).
    ///
    /// Counts analytically (grouping / band sweep) when both the LHS and the
    /// LHS∧RHS conjunctions are countable; otherwise verifies candidates
    /// from the most selective LHS index.  Equals
    /// [`Ned::support_confidence_naive`] either way.
    pub fn support_confidence(&self, r: &Relation) -> (usize, f64) {
        let lhs_atoms = Self::atoms_as_tuples(&self.lhs);
        let mut both_atoms = lhs_atoms.clone();
        both_atoms.extend(Self::atoms_as_tuples(&self.rhs));
        let counted = match (
            crate::pairs::count_matching(r, &lhs_atoms),
            crate::pairs::count_matching(r, &both_atoms),
        ) {
            (Some(m), Some(s)) => Some((m as usize, s as usize)),
            _ => None,
        };
        let (matched, satisfied) = counted.unwrap_or_else(|| {
            let idx = crate::pairs::best_index(r, &lhs_atoms);
            let mut m = 0usize;
            let mut s = 0usize;
            idx.for_each_candidate(|i, j| {
                if self.lhs_agrees(r, i, j) {
                    m += 1;
                    if self.rhs_agrees(r, i, j) {
                        s += 1;
                    }
                }
                true
            });
            (m, s)
        });
        let conf = if matched == 0 {
            1.0
        } else {
            satisfied as f64 / matched as f64
        };
        (matched, conf)
    }

    /// Reference full-scan implementation of [`Ned::support_confidence`];
    /// kept as the differential-test and benchmark baseline.
    pub fn support_confidence_naive(&self, r: &Relation) -> (usize, f64) {
        let mut matched = 0usize;
        let mut satisfied = 0usize;
        for (i, j) in r.row_pairs() {
            if self.lhs_agrees(r, i, j) {
                matched += 1;
                if self.rhs_agrees(r, i, j) {
                    satisfied += 1;
                }
            }
        }
        let conf = if matched == 0 {
            1.0
        } else {
            satisfied as f64 / matched as f64
        };
        (matched, conf)
    }
}

impl Dependency for Ned {
    fn kind(&self) -> DepKind {
        DepKind::Ned
    }

    fn holds(&self, r: &Relation) -> bool {
        let idx = crate::pairs::best_index(r, &Self::atoms_as_tuples(&self.lhs));
        idx.for_each_candidate(|i, j| !self.lhs_agrees(r, i, j) || self.rhs_agrees(r, i, j))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let idx = crate::pairs::best_index(r, &Self::atoms_as_tuples(&self.lhs));
        let mut found: Vec<(usize, usize)> = Vec::new();
        idx.for_each_candidate(|i, j| {
            if self.lhs_agrees(r, i, j) && !self.rhs_agrees(r, i, j) {
                found.push((i, j));
            }
            true
        });
        found.sort_unstable();
        found
            .into_iter()
            .map(|(i, j)| {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|a| !a.agrees(r, i, j))
                    .map(|a| a.attr)
                    .collect();
                Violation::pair(i, j, bad)
            })
            .collect()
    }
}

impl fmt::Display for Ned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NED: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r6;

    fn ned1(r: &Relation) -> Ned {
        // §3.2.1: ned1: name¹ address⁵ → street⁵ (edit distances).
        let s = r.schema();
        Ned::new(
            s,
            vec![
                NedAtom::new(s.id("name"), Metric::Levenshtein, 1.0),
                NedAtom::new(s.id("address"), Metric::Levenshtein, 5.0),
            ],
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
        )
    }

    #[test]
    fn paper_pair_t2_t6_agrees() {
        // §3.2.1: t2 and t6 agree on name¹address⁵ (distances 0 and 1) and
        // satisfy street⁵.
        let r = hotels_r6();
        let n = ned1(&r);
        assert!(n.lhs_agrees(&r, 1, 5));
        assert!(n.rhs_agrees(&r, 1, 5));
    }

    #[test]
    fn ned1_holds_on_r6() {
        let r = hotels_r6();
        let n = ned1(&r);
        assert!(n.holds(&r));
        let (support, conf) = n.support_confidence(&r);
        assert!(support >= 1);
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn injected_street_error_detected() {
        let mut r = hotels_r6();
        let street = r.schema().id("street");
        r.set_value(5, street, "Lombard Street West".into());
        let n = ned1(&r);
        assert!(!n.holds(&r));
        let v = n.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![1, 5]);
        assert!(v[0].attrs.contains(street));
    }

    #[test]
    fn mfd_embedding_preserves_semantics() {
        let r = hotels_r6();
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            vec![(s.id("price"), Metric::AbsDiff, 500.0)],
        );
        let ned = Ned::from_mfd(s, &mfd);
        assert_eq!(mfd.holds(&r), ned.holds(&r));
        // ned2 of §3.2.2 is exactly this embedding.
        assert_eq!(ned.to_string(), "NED: name^0 region^0 -> price^500");
        // And on a perturbed instance both flip together.
        let mut r2 = r.clone();
        r2.set_value(5, s.id("price"), 1200.into());
        let mfd2 = Mfd::new(
            r2.schema(),
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            vec![(s.id("price"), Metric::AbsDiff, 500.0)],
        );
        let ned2 = Ned::from_mfd(r2.schema(), &mfd2);
        assert_eq!(mfd2.holds(&r2), ned2.holds(&r2));
        assert!(!ned2.holds(&r2));
    }

    #[test]
    fn empty_lhs_is_global_constraint() {
        // An NED with empty LHS requires ALL pairs to satisfy the RHS.
        let r = hotels_r6();
        let s = r.schema();
        let n = Ned::new(
            s,
            vec![],
            vec![NedAtom::new(s.id("price"), Metric::AbsDiff, 10_000.0)],
        );
        assert!(n.holds(&r));
        let tight = Ned::new(
            s,
            vec![],
            vec![NedAtom::new(s.id("price"), Metric::AbsDiff, 50.0)],
        );
        assert!(!tight.holds(&r));
    }

    #[test]
    fn indexed_support_matches_naive() {
        let r = hotels_r6();
        let s = r.schema();
        let neds = vec![
            ned1(&r),
            Ned::new(
                s,
                vec![NedAtom::new(s.id("region"), Metric::Equality, 0.0)],
                vec![NedAtom::new(s.id("price"), Metric::AbsDiff, 100.0)],
            ),
            Ned::new(
                s,
                vec![],
                vec![NedAtom::new(s.id("price"), Metric::AbsDiff, 50.0)],
            ),
            Ned::new(
                s,
                vec![NedAtom::new(s.id("name"), Metric::JaroWinkler, 0.4)],
                vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
            ),
        ];
        for n in &neds {
            assert_eq!(
                n.support_confidence(&r),
                n.support_confidence_naive(&r),
                "{n}"
            );
            let naive_holds = r
                .row_pairs()
                .all(|(i, j)| !n.lhs_agrees(&r, i, j) || n.rhs_agrees(&r, i, j));
            assert_eq!(n.holds(&r), naive_holds, "{n}");
        }
    }
}
