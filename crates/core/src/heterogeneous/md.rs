//! Matching dependencies (§3.7).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// A matching dependency `X≈ → Y⇌` (Fan et al.): tuple pairs *similar* on
/// every determinant attribute should have their dependent values
/// *identified* (§3.7.1).
///
/// As a static constraint over one instance, a violation is a pair that is
/// LHS-similar but differs on some `Y` attribute; as a matching rule, those
/// pairs are exactly the merge candidates record matching acts on — the
/// deduplication application exposes them via
/// [`Md::matching_pairs`].
#[derive(Debug, Clone, PartialEq)]
pub struct Md {
    lhs: Vec<(AttrId, Metric, f64)>,
    rhs: AttrSet,
    display: String,
}

impl Md {
    /// Build an MD. `lhs` lists `(attribute, metric, similarity threshold)`
    /// where a pair is similar when distance ≤ threshold; `rhs` is the set
    /// of attributes to identify.
    ///
    /// # Panics
    /// Panics if `lhs` or `rhs` is empty, or a threshold is negative.
    pub fn new(schema: &Schema, lhs: Vec<(AttrId, Metric, f64)>, rhs: AttrSet) -> Self {
        assert!(!lhs.is_empty(), "MD needs at least one similarity atom");
        assert!(!rhs.is_empty(), "MD needs at least one matching attribute");
        assert!(
            lhs.iter().all(|(_, _, t)| *t >= 0.0),
            "similarity thresholds must be non-negative"
        );
        let lhs_names = lhs
            .iter()
            .map(|(a, _, t)| format!("{}≈{}", schema.name(*a), t))
            .collect::<Vec<_>>()
            .join(", ");
        let rhs_names = rhs
            .iter()
            .map(|a| format!("{}⇌", schema.name(a)))
            .collect::<Vec<_>>()
            .join(", ");
        let display = format!("{lhs_names} -> {rhs_names}");
        Md { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an FD is an MD whose similarity is exact
    /// equality (threshold 0 under the discrete metric) (§3.7.2).
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        let lhs = fd
            .lhs()
            .iter()
            .map(|a| (a, Metric::Equality, 0.0))
            .collect();
        Md::new(schema, lhs, fd.rhs())
    }

    /// Similarity atoms.
    pub fn lhs(&self) -> &[(AttrId, Metric, f64)] {
        &self.lhs
    }

    /// Attributes to identify.
    pub fn rhs(&self) -> AttrSet {
        self.rhs
    }

    /// Is the pair similar on every determinant attribute?
    pub fn lhs_similar(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.lhs
            .iter()
            .all(|(a, m, t)| m.dist(r.value(t1, *a), r.value(t2, *a)) <= *t)
    }

    /// All LHS-similar pairs — the candidates a record matcher identifies.
    ///
    /// Enumerates candidates from the most selective similarity index of the
    /// LHS (equality blocking / band join / q-gram filter) and verifies each
    /// against the exact metrics; the result is identical to
    /// [`Md::matching_pairs_naive`].
    pub fn matching_pairs(&self, r: &Relation) -> Vec<(usize, usize)> {
        let idx = crate::pairs::best_index(r, &self.lhs);
        let mut out = Vec::new();
        idx.for_each_candidate(|i, j| {
            if self.lhs_similar(r, i, j) {
                out.push((i, j));
            }
            true
        });
        out.sort_unstable();
        out
    }

    /// Reference full-scan implementation of [`Md::matching_pairs`]; kept as
    /// the differential-test and benchmark baseline.
    pub fn matching_pairs_naive(&self, r: &Relation) -> Vec<(usize, usize)> {
        r.row_pairs()
            .filter(|&(i, j)| self.lhs_similar(r, i, j))
            .collect()
    }

    /// Visit LHS-similar pairs in the candidate index's deterministic order
    /// (unsorted), stopping early when `f` returns `false`; returns `false`
    /// iff stopped.  Streams — nothing is materialized.
    pub fn for_each_matching(&self, r: &Relation, mut f: impl FnMut(usize, usize) -> bool) -> bool {
        let idx = crate::pairs::best_index(r, &self.lhs);
        idx.for_each_candidate(|i, j| {
            if self.lhs_similar(r, i, j) {
                f(i, j)
            } else {
                true
            }
        })
    }

    /// Syntactic deduction (the reasoning mechanism of §3.7.4): does this
    /// MD logically imply `other` — i.e. every instance satisfying `self`
    /// satisfies `other`? Sufficient (and for same-metric atoms necessary)
    /// condition: `other`'s premise is *tighter* — it constrains at least
    /// the attributes `self` constrains, with thresholds ≤ `self`'s — and
    /// `other` identifies a subset of `self`'s attributes.
    pub fn implies(&self, other: &Md) -> bool {
        other.rhs.is_subset(self.rhs)
            && self.lhs.iter().all(|(attr, metric, t)| {
                other
                    .lhs
                    .iter()
                    .any(|(oa, om, ot)| oa == attr && om == metric && ot <= t)
            })
    }

    /// `(support, confidence)` as used by MD discovery (§3.7.3): support is
    /// the fraction of pairs that are LHS-similar, confidence the fraction
    /// of those already identified on `Y`.
    ///
    /// When the LHS is a conjunction of equality atoms plus at most one
    /// numeric band, both counts are computed analytically (grouping + a
    /// two-pointer band sweep) without touching a single pair; otherwise
    /// candidates from the most selective index are verified.  Either way
    /// the result equals [`Md::support_confidence_naive`].
    pub fn support_confidence(&self, r: &Relation) -> (f64, f64) {
        let n = r.n_rows() as u64;
        let n_pairs = n * n.saturating_sub(1) / 2;
        if n_pairs == 0 {
            return (0.0, 1.0);
        }
        let counted = match (
            crate::pairs::count_matching(r, &self.lhs),
            crate::pairs::count_matching_agreeing(r, &self.lhs, self.rhs),
        ) {
            (Some(m), Some(id)) => Some((m, id)),
            _ => None,
        };
        let (matched, identified) = counted.unwrap_or_else(|| {
            let idx = crate::pairs::best_index(r, &self.lhs);
            let mut m = 0u64;
            let mut id = 0u64;
            idx.for_each_candidate(|i, j| {
                if self.lhs_similar(r, i, j) {
                    m += 1;
                    if r.rows_agree(i, j, self.rhs) {
                        id += 1;
                    }
                }
                true
            });
            (m, id)
        });
        let support = matched as f64 / n_pairs as f64;
        let confidence = if matched == 0 {
            1.0
        } else {
            identified as f64 / matched as f64
        };
        (support, confidence)
    }

    /// Reference full-scan implementation of [`Md::support_confidence`];
    /// kept as the differential-test and benchmark baseline.
    pub fn support_confidence_naive(&self, r: &Relation) -> (f64, f64) {
        let n_pairs = r.n_rows() * r.n_rows().saturating_sub(1) / 2;
        if n_pairs == 0 {
            return (0.0, 1.0);
        }
        let mut matched = 0usize;
        let mut identified = 0usize;
        for (i, j) in r.row_pairs() {
            if self.lhs_similar(r, i, j) {
                matched += 1;
                if r.rows_agree(i, j, self.rhs) {
                    identified += 1;
                }
            }
        }
        let support = matched as f64 / n_pairs as f64;
        let confidence = if matched == 0 {
            1.0
        } else {
            identified as f64 / matched as f64
        };
        (support, confidence)
    }
}

impl Dependency for Md {
    fn kind(&self) -> DepKind {
        DepKind::Md
    }

    fn holds(&self, r: &Relation) -> bool {
        let idx = crate::pairs::best_index(r, &self.lhs);
        idx.for_each_candidate(|i, j| !self.lhs_similar(r, i, j) || r.rows_agree(i, j, self.rhs))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let idx = crate::pairs::best_index(r, &self.lhs);
        let mut found: Vec<(usize, usize)> = Vec::new();
        idx.for_each_candidate(|i, j| {
            if self.lhs_similar(r, i, j) && !r.rows_agree(i, j, self.rhs) {
                found.push((i, j));
            }
            true
        });
        found.sort_unstable();
        found
            .into_iter()
            .map(|(i, j)| {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|&a| r.value(i, a) != r.value(j, a))
                    .collect();
                Violation::pair(i, j, bad)
            })
            .collect()
    }
}

impl fmt::Display for Md {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r6};

    fn md1(r: &Relation) -> Md {
        // §3.7.1: md1: street≈, region≈ → zip⇌ with edit distance ≤ 5 on
        // street and ≤ 2 on region.
        let s = r.schema();
        Md::new(
            s,
            vec![
                (s.id("street"), Metric::Levenshtein, 5.0),
                (s.id("region"), Metric::Levenshtein, 2.0),
            ],
            AttrSet::single(s.id("zip")),
        )
    }

    #[test]
    fn md1_identifies_t5_t6() {
        let r = hotels_r6();
        let m = md1(&r);
        assert!(m.lhs_similar(&r, 4, 5)); // t5, t6
        assert!(m.holds(&r)); // their zips are already identified
        let pairs = m.matching_pairs(&r);
        assert!(pairs.contains(&(4, 5)));
    }

    #[test]
    fn md_catches_what_fd_misses_on_r1() {
        // §1.2: t7, t8 have similar addresses but different regions —
        // invisible to fd1, visible to an MD with similarity on address.
        let r = hotels_r1();
        let s = r.schema();
        let md = Md::new(
            s,
            vec![(s.id("address"), Metric::Levenshtein, 4.0)],
            AttrSet::single(s.id("region")),
        );
        let v = md.violations(&r);
        assert!(
            v.iter().any(|v| v.rows == vec![6, 7]),
            "the t7/t8 error should surface: {v:?}"
        );
    }

    #[test]
    fn fd_embedding() {
        for r in [hotels_r1(), hotels_r6()] {
            let s = r.schema();
            for text in ["address -> region", "street -> zip", "name -> price"] {
                let Some(fd) = Fd::parse(s, text) else {
                    continue;
                };
                let md = Md::from_fd(s, &fd);
                assert_eq!(fd.holds(&r), md.holds(&r), "{text}");
                // Witness granularity differs (FDs report one pair per
                // distinct-RHS subgroup, MDs every violating pair), but
                // both are empty exactly when the rule holds.
                assert_eq!(
                    fd.violations(&r).is_empty(),
                    md.violations(&r).is_empty(),
                    "{text}"
                );
            }
        }
    }

    #[test]
    fn support_confidence_ranges() {
        let r = hotels_r6();
        let m = md1(&r);
        let (support, conf) = m.support_confidence(&r);
        assert!((0.0..=1.0).contains(&support));
        assert_eq!(conf, 1.0);
        assert!(support > 0.0);
    }

    #[test]
    fn zip_mismatch_detected() {
        let mut r = hotels_r6();
        let zip = r.schema().id("zip");
        r.set_value(5, zip, "95103".into());
        let m = md1(&r);
        assert!(!m.holds(&r));
        let v = m.violations(&r);
        assert!(v
            .iter()
            .any(|v| v.rows == vec![1, 5] || v.rows == vec![4, 5]));
    }

    #[test]
    fn deduction_is_sound_on_instances() {
        // md_loose: name ≈5 → zip; md_tight: name ≈1, street ≈2 → zip.
        // Loose implies tight (tight's premise matches fewer pairs).
        let r = hotels_r6();
        let s = r.schema();
        let loose = Md::new(
            s,
            vec![(s.id("name"), Metric::Levenshtein, 5.0)],
            AttrSet::single(s.id("zip")),
        );
        let tight = Md::new(
            s,
            vec![
                (s.id("name"), Metric::Levenshtein, 1.0),
                (s.id("street"), Metric::Levenshtein, 2.0),
            ],
            AttrSet::single(s.id("zip")),
        );
        assert!(loose.implies(&tight));
        assert!(!tight.implies(&loose));
        // Soundness check on the instance and perturbations: whenever the
        // implying MD holds, the implied one must too.
        let mut variants = vec![r.clone()];
        for row in 0..r.n_rows() {
            let mut v = r.clone();
            let donor = (row + 1) % r.n_rows();
            v.set_value(row, s.id("zip"), r.value(donor, s.id("zip")).clone());
            variants.push(v);
        }
        for v in &variants {
            if loose.holds(v) {
                assert!(tight.holds(v), "deduction unsound");
            }
        }
    }

    #[test]
    fn deduction_requires_matching_metric_and_rhs() {
        let r = hotels_r6();
        let s = r.schema();
        let a = Md::new(
            s,
            vec![(s.id("name"), Metric::Levenshtein, 5.0)],
            AttrSet::single(s.id("zip")),
        );
        let other_metric = Md::new(
            s,
            vec![(s.id("name"), Metric::JaroWinkler, 0.2)],
            AttrSet::single(s.id("zip")),
        );
        assert!(!a.implies(&other_metric));
        let bigger_rhs = Md::new(
            s,
            vec![(s.id("name"), Metric::Levenshtein, 1.0)],
            AttrSet::from_ids([s.id("zip"), s.id("region")]),
        );
        assert!(!a.implies(&bigger_rhs));
    }

    #[test]
    #[should_panic(expected = "at least one similarity atom")]
    fn empty_lhs_rejected() {
        let r = hotels_r6();
        let s = r.schema();
        Md::new(s, vec![], AttrSet::single(s.id("zip")));
    }

    #[test]
    fn indexed_paths_match_naive() {
        let r6 = hotels_r6();
        let s6 = r6.schema();
        let r1 = hotels_r1();
        let s1 = r1.schema();
        let cases = vec![
            (&r6, md1(&r6)),
            (
                &r6,
                Md::new(
                    s6,
                    vec![(s6.id("region"), Metric::Equality, 0.0)],
                    AttrSet::single(s6.id("zip")),
                ),
            ),
            (
                &r6,
                Md::new(
                    s6,
                    vec![(s6.id("name"), Metric::JaroWinkler, 0.3)],
                    AttrSet::single(s6.id("region")),
                ),
            ),
            (
                &r1,
                Md::new(
                    s1,
                    vec![(s1.id("address"), Metric::Levenshtein, 4.0)],
                    AttrSet::single(s1.id("region")),
                ),
            ),
        ];
        {
            for (r, md) in &cases {
                let r = (*r).clone();
                assert_eq!(md.matching_pairs(&r), md.matching_pairs_naive(&r), "{md}");
                assert_eq!(
                    md.support_confidence(&r),
                    md.support_confidence_naive(&r),
                    "{md}"
                );
                let naive_viols: Vec<Violation> = r
                    .row_pairs()
                    .filter(|&(i, j)| md.lhs_similar(&r, i, j) && !r.rows_agree(i, j, md.rhs()))
                    .map(|(i, j)| {
                        let bad: AttrSet = md
                            .rhs()
                            .iter()
                            .filter(|&a| r.value(i, a) != r.value(j, a))
                            .collect();
                        Violation::pair(i, j, bad)
                    })
                    .collect();
                assert_eq!(md.violations(&r), naive_viols, "{md}");
                assert_eq!(md.holds(&r), naive_viols.is_empty(), "{md}");
            }
        }
    }
}
