//! Metric functional dependencies (§3.1).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// A metric functional dependency `X →^δ Y`: tuples with *equal*
/// `X`-values must be within metric distance `δ` on each dependent
/// attribute (§3.1.1). With `δ = 0` this degenerates to an FD.
#[derive(Debug, Clone, PartialEq)]
pub struct Mfd {
    lhs: AttrSet,
    rhs: Vec<(AttrId, Metric, f64)>,
    display: String,
}

impl Mfd {
    /// Build an MFD. `rhs` lists `(attribute, metric, δ)` constraints.
    ///
    /// # Panics
    /// Panics if any `δ < 0` or `rhs` is empty.
    pub fn new(schema: &Schema, lhs: AttrSet, rhs: Vec<(AttrId, Metric, f64)>) -> Self {
        assert!(
            !rhs.is_empty(),
            "MFD needs at least one dependent attribute"
        );
        assert!(
            rhs.iter().all(|(_, _, d)| *d >= 0.0),
            "distance thresholds must be non-negative"
        );
        let lhs_names = lhs
            .iter()
            .map(|a| schema.name(a).to_owned())
            .collect::<Vec<_>>()
            .join(", ");
        let rhs_names = rhs
            .iter()
            .map(|(a, _, d)| format!("{}(δ≤{})", schema.name(*a), d))
            .collect::<Vec<_>>()
            .join(", ");
        let display = format!("{lhs_names} -> {rhs_names}");
        Mfd { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an FD is an MFD with `δ = 0` on every
    /// dependent attribute (§3.1.2).
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        let rhs = fd
            .rhs()
            .iter()
            .map(|a| (a, Metric::Equality, 0.0))
            .collect();
        Mfd::new(schema, fd.lhs(), rhs)
    }

    /// Determinant attributes (compared by equality).
    pub fn lhs(&self) -> AttrSet {
        self.lhs
    }

    /// Dependent `(attribute, metric, δ)` constraints.
    pub fn rhs(&self) -> &[(AttrId, Metric, f64)] {
        &self.rhs
    }

    /// The attributes on the dependent side.
    pub fn rhs_attrs(&self) -> AttrSet {
        self.rhs.iter().map(|(a, _, _)| *a).collect()
    }

    /// The *diameter* of an equal-`X` group on a dependent attribute: the
    /// maximum pairwise distance. The MFD holds iff every group's diameter
    /// is within its `δ` — the `O(n²)` verification step of Koudas et al.
    /// (§3.1.3).
    pub fn group_diameter(&self, r: &Relation, rows: &[usize], atom: usize) -> f64 {
        let (attr, metric, _) = &self.rhs[atom];
        let mut max = 0.0f64;
        for (i, &r1) in rows.iter().enumerate() {
            for &r2 in rows.iter().skip(i + 1) {
                max = max.max(metric.dist(r.value(r1, *attr), r.value(r2, *attr)));
            }
        }
        max
    }
}

impl Dependency for Mfd {
    fn kind(&self) -> DepKind {
        DepKind::Mfd
    }

    fn holds(&self, r: &Relation) -> bool {
        r.group_by(self.lhs).values().all(|rows| {
            self.rhs
                .iter()
                .enumerate()
                .all(|(i, (_, _, delta))| self.group_diameter(r, rows, i) <= *delta)
        })
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        for rows in r.group_by(self.lhs).values() {
            for (i, &r1) in rows.iter().enumerate() {
                for &r2 in rows.iter().skip(i + 1) {
                    let bad: AttrSet = self
                        .rhs
                        .iter()
                        .filter(|(attr, metric, delta)| {
                            metric.dist(r.value(r1, *attr), r.value(r2, *attr)) > *delta
                        })
                        .map(|(a, _, _)| *a)
                        .collect();
                    if !bad.is_empty() {
                        out.push(Violation::pair(r1, r2, bad));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.rows.cmp(&b.rows));
        out
    }
}

impl fmt::Display for Mfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MFD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r1, hotels_r6};

    #[test]
    fn mfd1_on_r6() {
        // §3.1.1: mfd1: name, region →^500 price holds: t2 and t6 share
        // name NC and region San Jose; |300 − 300| = 0 ≤ 500.
        let r = hotels_r6();
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            vec![(s.id("price"), Metric::AbsDiff, 500.0)],
        );
        assert!(mfd.holds(&r));
        assert!(mfd.violations(&r).is_empty());
    }

    #[test]
    fn tighter_delta_fails_elsewhere() {
        // name, region →^δ tax with δ = 0 fails nowhere on r6 (t2/t6 taxes
        // are both 20); but address variants with equal X: check via an
        // injected price error.
        let mut r = hotels_r6();
        let s = r.schema();
        let price = s.id("price");
        r.set_value(5, price, 1200.into());
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::from_ids([s.id("name"), s.id("region")]),
            vec![(s.id("price"), Metric::AbsDiff, 500.0)],
        );
        assert!(!mfd.holds(&r)); // |300 − 1200| = 900 > 500
        let v = mfd.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![1, 5]);
        assert!(v[0].attrs.contains(price));
    }

    #[test]
    fn delta_zero_equals_fd() {
        for r in [hotels_r1(), hotels_r6()] {
            let s = r.schema();
            for text in ["address -> region", "name -> price", "region -> name"] {
                let Some(fd) = Fd::parse(s, text) else {
                    continue;
                };
                let mfd = Mfd::from_fd(s, &fd);
                assert_eq!(fd.holds(&r), mfd.holds(&r), "{text}");
                assert_eq!(
                    fd.violations(&r).is_empty(),
                    mfd.violations(&r).is_empty(),
                    "{text}"
                );
            }
        }
    }

    #[test]
    fn paper_motivating_case_lat_long_style() {
        // §3.1.4's motivation: small variations in dependent values should
        // not be flagged. On r1, address → region as an MFD with edit
        // distance δ = 4 accepts "Chicago" vs "Chicago, IL" (distance 4)
        // but still flags "Boston" vs "Chicago, MA" (distance 8).
        let r = hotels_r1();
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::single(s.id("address")),
            vec![(s.id("region"), Metric::Levenshtein, 4.0)],
        );
        let v = mfd.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![2, 3]); // only the true error remains
    }

    #[test]
    fn group_diameter_computed() {
        let r = hotels_r6();
        let s = r.schema();
        let mfd = Mfd::new(
            s,
            AttrSet::single(s.id("region")),
            vec![(s.id("price"), Metric::AbsDiff, 1000.0)],
        );
        // San Jose group rows {1, 4, 5}: prices 300, 399, 300 → diameter 99.
        assert_eq!(mfd.group_diameter(&r, &[1, 4, 5], 0), 99.0);
    }

    #[test]
    #[should_panic(expected = "at least one dependent")]
    fn empty_rhs_rejected() {
        let r = hotels_r6();
        Mfd::new(r.schema(), AttrSet::single(AttrId(0)), vec![]);
    }
}
