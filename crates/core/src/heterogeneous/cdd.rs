//! Conditional differential dependencies (§3.3.5).

use crate::categorical::Cfd;
use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::{Dd, DiffAtom};
use deptree_metrics::{DistRange, Metric};
use deptree_relation::{AttrId, Relation, Schema, Value};
use std::fmt;

/// A condition selecting the subset of tuples a conditional dependency
/// applies to: a conjunction of `attribute = constant` equalities on
/// categorical attributes. Both tuples of a pair must match.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Condition {
    atoms: Vec<(AttrId, Value)>,
}

impl Condition {
    /// The empty (always-true) condition.
    pub fn always() -> Self {
        Self::default()
    }

    /// Add an `attr = value` conjunct.
    #[must_use]
    pub fn and(mut self, attr: AttrId, value: impl Into<Value>) -> Self {
        self.atoms.push((attr, value.into()));
        self
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[(AttrId, Value)] {
        &self.atoms
    }

    /// Is the condition trivial?
    pub fn is_always(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Does a row match?
    pub fn matches(&self, r: &Relation, row: usize) -> bool {
        self.atoms.iter().all(|(a, v)| r.value(row, *a) == v)
    }

    /// Render with a schema.
    pub fn render(&self, schema: &Schema) -> String {
        if self.is_always() {
            return "true".into();
        }
        self.atoms
            .iter()
            .map(|(a, v)| format!("{}={}", schema.name(*a), v))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

/// A conditional differential dependency: a DD that holds only among
/// tuples matching a categorical condition (§3.3.5). CDDs extend both DDs
/// (trivial condition) and CFDs (zero-distance differential functions with
/// the pattern's constants as the condition).
#[derive(Debug, Clone, PartialEq)]
pub struct Cdd {
    condition: Condition,
    dd: Dd,
    display: String,
}

impl Cdd {
    /// Build a CDD.
    pub fn new(schema: &Schema, condition: Condition, dd: Dd) -> Self {
        let display = format!("[{}] {}", condition.render(schema), &dd.to_string()[4..]);
        Cdd {
            condition,
            dd,
            display,
        }
    }

    /// The Fig. 1 embedding from DDs: a DD is a CDD with the trivial
    /// condition.
    pub fn from_dd(schema: &Schema, dd: Dd) -> Self {
        Cdd::new(schema, Condition::always(), dd)
    }

    /// The Fig. 1 embedding from CFDs: a CFD whose pattern constants are
    /// all on the LHS becomes a CDD with those constants as the condition,
    /// equality (zero-distance) differential functions on the variable LHS
    /// attributes, and zero-distance RHS. Returns `None` when the CFD has
    /// constants on its RHS (those have single-tuple semantics a pairwise
    /// CDD cannot express).
    pub fn from_cfd(schema: &Schema, cfd: &Cfd) -> Option<Self> {
        if !cfd.rhs().iter().all(|a| !cfd.pattern().cell(a).is_const()) {
            return None;
        }
        let mut condition = Condition::always();
        let mut lhs_atoms = Vec::new();
        for a in cfd.lhs().iter() {
            match cfd.pattern().cell(a) {
                crate::categorical::PatternCell::Const(v) => {
                    condition = condition.and(a, v.clone());
                }
                crate::categorical::PatternCell::Any => {
                    lhs_atoms.push(DiffAtom::new(a, Metric::Equality, DistRange::zero()));
                }
            }
        }
        let rhs_atoms = cfd
            .rhs()
            .iter()
            .map(|a| DiffAtom::new(a, Metric::Equality, DistRange::zero()))
            .collect();
        Some(Cdd::new(
            schema,
            condition,
            Dd::new(schema, lhs_atoms, rhs_atoms),
        ))
    }

    /// The condition.
    pub fn condition(&self) -> &Condition {
        &self.condition
    }

    /// The embedded DD.
    pub fn dd(&self) -> &Dd {
        &self.dd
    }

    /// Rows the condition selects.
    pub fn matching_rows(&self, r: &Relation) -> Vec<usize> {
        (0..r.n_rows())
            .filter(|&row| self.condition.matches(r, row))
            .collect()
    }
}

impl Dependency for Cdd {
    fn kind(&self) -> DepKind {
        DepKind::Cdd
    }

    fn holds(&self, r: &Relation) -> bool {
        let rows = self.matching_rows(r);
        for (i, &t1) in rows.iter().enumerate() {
            for &t2 in rows.iter().skip(i + 1) {
                if self.dd.lhs_compatible(r, t1, t2) && !self.dd.rhs_compatible(r, t1, t2) {
                    return false;
                }
            }
        }
        true
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let rows = self.matching_rows(r);
        let mut out = Vec::new();
        for (i, &t1) in rows.iter().enumerate() {
            for &t2 in rows.iter().skip(i + 1) {
                if self.dd.lhs_compatible(r, t1, t2) && !self.dd.rhs_compatible(r, t1, t2) {
                    let bad = self
                        .dd
                        .rhs()
                        .iter()
                        .filter(|a| !a.compatible(r, t1, t2))
                        .map(|a| a.attr)
                        .collect();
                    out.push(Violation::pair(t1, t2, bad));
                }
            }
        }
        out
    }
}

impl fmt::Display for Cdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CDD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::{Fd, Pattern};
    use deptree_relation::examples::hotels_r6;
    use deptree_relation::AttrSet;

    fn sanjose_cdd(r: &Relation) -> Cdd {
        // §3.3.5's example shape: in one region, tuples with similar names
        // (same hotel) must have similar addresses.
        let s = r.schema();
        Cdd::new(
            s,
            Condition::always().and(s.id("region"), "San Jose"),
            Dd::new(
                s,
                vec![DiffAtom::at_most(s.id("name"), Metric::Levenshtein, 1.0)],
                vec![DiffAtom::at_most(s.id("address"), Metric::Levenshtein, 5.0)],
            ),
        )
    }

    #[test]
    fn conditional_scope() {
        let r = hotels_r6();
        let cdd = sanjose_cdd(&r);
        assert_eq!(cdd.matching_rows(&r), vec![1, 4, 5]);
        assert!(cdd.holds(&r));
    }

    #[test]
    fn violation_only_inside_condition() {
        let mut r = hotels_r6();
        let s = r.schema().clone();
        // Error inside the San Jose scope: t6's address garbled.
        r.set_value(5, s.id("address"), "completely elsewhere".into());
        let cdd = sanjose_cdd(&r);
        assert!(!cdd.holds(&r));
        let v = cdd.violations(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rows, vec![1, 5]);
        // The same error outside the condition's scope is invisible:
        let mut r2 = hotels_r6();
        r2.set_value(0, s.id("address"), "completely elsewhere".into());
        let cdd2 = sanjose_cdd(&r2);
        assert!(cdd2.holds(&r2)); // t1 is New York, outside the scope
    }

    #[test]
    fn dd_embedding_trivial_condition() {
        let r = hotels_r6();
        let s = r.schema();
        let dd = Dd::new(
            s,
            vec![DiffAtom::at_most(s.id("name"), Metric::Levenshtein, 1.0)],
            vec![DiffAtom::at_most(s.id("zip"), Metric::Equality, 0.0)],
        );
        let cdd = Cdd::from_dd(s, dd.clone());
        assert_eq!(dd.holds(&r), cdd.holds(&r));
        assert_eq!(dd.violations(&r), cdd.violations(&r));
    }

    #[test]
    fn cfd_embedding() {
        let r = hotels_r6();
        let s = r.schema();
        // CFD: source = "s1", name = _ → zip = _ (within source s1, name
        // determines zip).
        let lhs = AttrSet::from_ids([s.id("source"), s.id("name")]);
        let rhs = AttrSet::single(s.id("zip"));
        let cfd = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::all_any(lhs.union(rhs)).with_const(s.id("source"), "s1"),
        );
        let cdd = Cdd::from_cfd(s, &cfd).unwrap();
        assert_eq!(cfd.holds(&r), cdd.holds(&r));
        // Perturbed: s1's NC tuples t1 and t6 get different zips.
        let mut r2 = r.clone();
        r2.set_value(5, s.id("zip"), "99999".into());
        assert_eq!(cfd.holds(&r2), cdd.holds(&r2));
        assert!(!cdd.holds(&r2));
    }

    #[test]
    fn cfd_with_constant_rhs_not_embeddable() {
        let r = hotels_r6();
        let s = r.schema();
        let lhs = AttrSet::single(s.id("source"));
        let rhs = AttrSet::single(s.id("zip"));
        let cfd = Cfd::new(
            s,
            lhs,
            rhs,
            Pattern::new()
                .with_const(s.id("source"), "s1")
                .with_const(s.id("zip"), "10041"),
        );
        assert!(Cdd::from_cfd(s, &cfd).is_none());
    }

    #[test]
    fn fd_through_cfd_through_cdd() {
        // Transitivity of the family tree: FD → CFD → CDD.
        let r = hotels_r6();
        let s = r.schema();
        let fd = Fd::parse(s, "street -> zip").unwrap();
        let cfd = Cfd::from_fd(s, &fd);
        let cdd = Cdd::from_cfd(s, &cfd).unwrap();
        assert_eq!(fd.holds(&r), cdd.holds(&r));
    }
}
