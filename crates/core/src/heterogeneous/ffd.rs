//! Fuzzy functional dependencies (§3.6).

use crate::categorical::Fd;
use crate::dep::{DepKind, Dependency, Violation};
use deptree_metrics::Resemblance;
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// A fuzzy functional dependency `X ⤳ Y` (Raju–Majumdar): for every tuple
/// pair, the fuzzy resemblance on `X` must not exceed the resemblance on
/// `Y`:
///
/// `μ_EQ(t1[X], t2[X]) ≤ μ_EQ(t1[Y], t2[Y])`
///
/// where the resemblance of a tuple pair on an attribute set is the
/// *minimum* of per-attribute resemblances (§3.6.1). Intuitively: values
/// on `Y` must be at least as "equal" as those on `X`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ffd {
    lhs: Vec<(AttrId, Resemblance)>,
    rhs: Vec<(AttrId, Resemblance)>,
    display: String,
}

impl Ffd {
    /// Build an FFD with per-attribute resemblance relations.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(
        schema: &Schema,
        lhs: Vec<(AttrId, Resemblance)>,
        rhs: Vec<(AttrId, Resemblance)>,
    ) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "FFD sides must be non-empty"
        );
        let side = |atoms: &[(AttrId, Resemblance)]| {
            atoms
                .iter()
                .map(|(a, _)| schema.name(*a).to_owned())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} ~> {}", side(&lhs), side(&rhs));
        Ffd { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an FD is an FFD under crisp resemblance on
    /// every attribute (§3.6.2).
    pub fn from_fd(schema: &Schema, fd: &Fd) -> Self {
        let crisp = |set: AttrSet| {
            set.iter()
                .map(|a| (a, Resemblance::Crisp))
                .collect::<Vec<_>>()
        };
        Ffd::new(schema, crisp(fd.lhs()), crisp(fd.rhs()))
    }

    /// Left atoms.
    pub fn lhs(&self) -> &[(AttrId, Resemblance)] {
        &self.lhs
    }

    /// Right atoms.
    pub fn rhs(&self) -> &[(AttrId, Resemblance)] {
        &self.rhs
    }

    fn mu(atoms: &[(AttrId, Resemblance)], r: &Relation, t1: usize, t2: usize) -> f64 {
        atoms
            .iter()
            .map(|(a, res)| res.mu(r.value(t1, *a), r.value(t2, *a)))
            .fold(1.0f64, f64::min)
    }

    /// `μ_EQ(t1[X], t2[X])`: min-combined resemblance on the LHS.
    pub fn mu_lhs(&self, r: &Relation, t1: usize, t2: usize) -> f64 {
        Self::mu(&self.lhs, r, t1, t2)
    }

    /// `μ_EQ(t1[Y], t2[Y])`: min-combined resemblance on the RHS.
    pub fn mu_rhs(&self, r: &Relation, t1: usize, t2: usize) -> f64 {
        Self::mu(&self.rhs, r, t1, t2)
    }
}

impl Dependency for Ffd {
    fn kind(&self) -> DepKind {
        DepKind::Ffd
    }

    fn holds(&self, r: &Relation) -> bool {
        r.row_pairs()
            .all(|(i, j)| self.mu_lhs(r, i, j) <= self.mu_rhs(r, i, j))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let rhs_attrs: AttrSet = self.rhs.iter().map(|(a, _)| *a).collect();
        let mut out = Vec::new();
        for (i, j) in r.row_pairs() {
            if self.mu_lhs(r, i, j) > self.mu_rhs(r, i, j) {
                out.push(Violation::pair(i, j, rhs_attrs));
            }
        }
        out
    }
}

impl fmt::Display for Ffd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FFD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r5, hotels_r6};

    fn ffd1(r: &Relation) -> Ffd {
        // §3.6.1: ffd1: name, price ⤳ tax with crisp names,
        // μ = 1/(1+|a−b|) on price (β = 1), μ = 1/(1+10|a−b|) on tax.
        let s = r.schema();
        Ffd::new(
            s,
            vec![
                (s.id("name"), Resemblance::Crisp),
                (s.id("price"), Resemblance::InverseNumeric(1.0)),
            ],
            vec![(s.id("tax"), Resemblance::InverseNumeric(10.0))],
        )
    }

    #[test]
    fn paper_conflict_t1_t2() {
        // §3.6.1: for t1, t2 — min(μ(NC,NC), μ(299,300)) = 1/2 > 1/91 =
        // μ(29,20): the pair conflicts ffd1.
        let r = hotels_r6();
        let f = ffd1(&r);
        assert!((f.mu_lhs(&r, 0, 1) - 0.5).abs() < 1e-12);
        assert!((f.mu_rhs(&r, 0, 1) - 1.0 / 91.0).abs() < 1e-12);
        assert!(!f.holds(&r));
        let v = f.violations(&r);
        assert!(v.iter().any(|v| v.rows == vec![0, 1]));
    }

    #[test]
    fn fd_embedding_crisp() {
        // §3.6.2: ffd2: address ⤳ region with crisp resemblances equals
        // the FD address → region.
        for r in [hotels_r5(), hotels_r6()] {
            let s = r.schema();
            for text in ["address -> region", "name -> address"] {
                let Some(fd) = Fd::parse(s, text) else {
                    continue;
                };
                let ffd = Ffd::from_fd(s, &fd);
                assert_eq!(fd.holds(&r), ffd.holds(&r), "{text}");
            }
        }
    }

    #[test]
    fn identical_tuples_never_violate() {
        // Reflexivity: a pair of equal tuples has μ_lhs = μ_rhs = 1.
        let r = hotels_r6();
        let f = ffd1(&r);
        for i in 0..r.n_rows() {
            assert!((f.mu_lhs(&r, i, i) - 1.0).abs() < 1e-12);
            assert!(f.mu_lhs(&r, i, i) <= f.mu_rhs(&r, i, i));
        }
    }

    #[test]
    fn violation_fixed_by_consistent_tax() {
        // Make taxes proportional to price differences: t2's tax = 29 so
        // μ_tax(29, 29) = 1 ≥ 1/2 for the (t1, t2) pair.
        let mut r = hotels_r6();
        let s = r.schema().clone();
        r.set_value(1, s.id("tax"), 29.into());
        r.set_value(5, s.id("tax"), 29.into()); // keep t6 consistent with t2
        let f = ffd1(&r);
        let v = f.violations(&r);
        assert!(!v.iter().any(|v| v.rows == vec![0, 1]));
    }

    #[test]
    fn display_uses_squiggly_arrow() {
        let r = hotels_r6();
        assert_eq!(ffd1(&r).to_string(), "FFD: name, price ~> tax");
    }
}
