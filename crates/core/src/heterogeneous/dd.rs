//! Differential dependencies (§3.3).

use crate::dep::{DepKind, Dependency, Violation};
use crate::heterogeneous::Ned;
use deptree_metrics::{DistRange, Metric};
use deptree_relation::pairgen::{self, PairSpec};
use deptree_relation::{AttrId, AttrSet, Relation, Schema};
use std::fmt;

/// One differential-function atom φ\[A\]: the metric distance on `attr`
/// must fall in `range` (§3.3.1). Ranges can express both "similar"
/// (`≤ δ`) and "dissimilar" (`≥ δ`) semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffAtom {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The distance metric d_A.
    pub metric: Metric,
    /// The admitted distance range.
    pub range: DistRange,
}

impl DiffAtom {
    /// Build an atom.
    pub fn new(attr: AttrId, metric: Metric, range: DistRange) -> Self {
        DiffAtom {
            attr,
            metric,
            range,
        }
    }

    /// "Similar" shorthand: distance at most `d`.
    pub fn at_most(attr: AttrId, metric: Metric, d: f64) -> Self {
        Self::new(attr, metric, DistRange::at_most(d))
    }

    /// "Dissimilar" shorthand: distance at least `d`.
    pub fn at_least(attr: AttrId, metric: Metric, d: f64) -> Self {
        Self::new(attr, metric, DistRange::at_least(d))
    }

    /// Are two tuples compatible with this atom
    /// (`(t1, t2) ≍ φ[A]` in the survey's notation)?
    #[inline]
    pub fn compatible(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.range.contains(
            self.metric
                .dist(r.value(t1, self.attr), r.value(t2, self.attr)),
        )
    }

    /// Does this atom *subsume* another on the same attribute — i.e. accept
    /// every pair the other accepts? Used by minimality reasoning in DD
    /// discovery (§3.3.3).
    pub fn subsumes(&self, other: &DiffAtom) -> bool {
        self.attr == other.attr && self.metric == other.metric && other.range.implies(&self.range)
    }

    /// Candidate-generation spec: a superset of the atom's compatible pairs.
    ///
    /// Sound because `dist ∈ [min, max] ⟹ dist ≤ max` and
    /// `Metric::pair_spec` is complete for `dist ≤ max`; dissimilarity lower
    /// bounds are left to verification, and an unbounded range degrades to
    /// the full scan.
    pub fn pair_spec(&self) -> (AttrId, PairSpec) {
        let max = self.range.max();
        let spec = if max.is_infinite() {
            PairSpec::All
        } else {
            self.metric.pair_spec(max)
        };
        (self.attr, spec)
    }

    /// The spec when it is *equivalent* to the atom (an exactly countable
    /// similarity range `[0, max]`), else `None`.
    fn exact_spec(&self) -> Option<(AttrId, PairSpec)> {
        if self.range.min() != 0.0 {
            return None;
        }
        let (attr, spec) = self.pair_spec();
        match spec {
            PairSpec::Eq | PairSpec::Band(_) | PairSpec::Empty => Some((attr, spec)),
            PairSpec::Edit(_) | PairSpec::All => None,
        }
    }
}

/// A differential dependency `φ[X] → φ[Y]`: any pair compatible with every
/// left differential function must be compatible with every right one
/// (§3.3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Dd {
    lhs: Vec<DiffAtom>,
    rhs: Vec<DiffAtom>,
    display: String,
}

impl Dd {
    /// Build a DD.
    ///
    /// # Panics
    /// Panics if `rhs` is empty.
    pub fn new(schema: &Schema, lhs: Vec<DiffAtom>, rhs: Vec<DiffAtom>) -> Self {
        assert!(!rhs.is_empty(), "DD needs at least one right-hand atom");
        let side = |atoms: &[DiffAtom]| {
            atoms
                .iter()
                .map(|a| format!("{}({})", schema.name(a.attr), a.range))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let display = format!("{} -> {}", side(&lhs), side(&rhs));
        Dd { lhs, rhs, display }
    }

    /// The Fig. 1 embedding: an NED is a DD whose differential functions
    /// all express the "similar" (`≤`) semantics (§3.3.2).
    pub fn from_ned(schema: &Schema, ned: &Ned) -> Self {
        let conv = |atoms: &[crate::heterogeneous::NedAtom]| {
            atoms
                .iter()
                .map(|a| DiffAtom::at_most(a.attr, a.metric.clone(), a.threshold))
                .collect::<Vec<_>>()
        };
        Dd::new(schema, conv(ned.lhs()), conv(ned.rhs()))
    }

    /// Left-hand atoms φ\[X\].
    pub fn lhs(&self) -> &[DiffAtom] {
        &self.lhs
    }

    /// Right-hand atoms φ\[Y\].
    pub fn rhs(&self) -> &[DiffAtom] {
        &self.rhs
    }

    /// Is a pair compatible with the whole left side?
    pub fn lhs_compatible(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.lhs.iter().all(|a| a.compatible(r, t1, t2))
    }

    /// Is a pair compatible with the whole right side?
    pub fn rhs_compatible(&self, r: &Relation, t1: usize, t2: usize) -> bool {
        self.rhs.iter().all(|a| a.compatible(r, t1, t2))
    }

    /// `(support, confidence)` over all pairs, as used by DD discovery:
    /// pairs matching the LHS, and the fraction of those satisfying the
    /// RHS.
    ///
    /// Similarity-range conjunctions are counted analytically when possible;
    /// otherwise candidates from the most selective LHS index are verified.
    /// Equals [`Dd::support_confidence_naive`] either way.
    pub fn support_confidence(&self, r: &Relation) -> (usize, f64) {
        let counted = (|| {
            let lhs_specs: Vec<_> = self
                .lhs
                .iter()
                .map(DiffAtom::exact_spec)
                .collect::<Option<_>>()?;
            let rhs_specs: Vec<_> = self
                .rhs
                .iter()
                .map(DiffAtom::exact_spec)
                .collect::<Option<_>>()?;
            let mut both = lhs_specs.clone();
            both.extend(rhs_specs);
            Some((
                pairgen::count_pairs(r, &lhs_specs)?,
                pairgen::count_pairs(r, &both)?,
            ))
        })();
        let (matched, ok) = match counted {
            Some((m, s)) => (m as usize, s as usize),
            None => {
                let specs: Vec<_> = self.lhs.iter().map(DiffAtom::pair_spec).collect();
                let idx = pairgen::best_index(r, &specs);
                let mut m = 0usize;
                let mut s = 0usize;
                idx.for_each_candidate(|i, j| {
                    if self.lhs_compatible(r, i, j) {
                        m += 1;
                        if self.rhs_compatible(r, i, j) {
                            s += 1;
                        }
                    }
                    true
                });
                (m, s)
            }
        };
        let conf = if matched == 0 {
            1.0
        } else {
            ok as f64 / matched as f64
        };
        (matched, conf)
    }

    /// Reference full-scan implementation of [`Dd::support_confidence`];
    /// kept as the differential-test and benchmark baseline.
    pub fn support_confidence_naive(&self, r: &Relation) -> (usize, f64) {
        let mut matched = 0usize;
        let mut ok = 0usize;
        for (i, j) in r.row_pairs() {
            if self.lhs_compatible(r, i, j) {
                matched += 1;
                if self.rhs_compatible(r, i, j) {
                    ok += 1;
                }
            }
        }
        let conf = if matched == 0 {
            1.0
        } else {
            ok as f64 / matched as f64
        };
        (matched, conf)
    }
}

impl Dependency for Dd {
    fn kind(&self) -> DepKind {
        DepKind::Dd
    }

    fn holds(&self, r: &Relation) -> bool {
        let specs: Vec<_> = self.lhs.iter().map(DiffAtom::pair_spec).collect();
        let idx = pairgen::best_index(r, &specs);
        idx.for_each_candidate(|i, j| !self.lhs_compatible(r, i, j) || self.rhs_compatible(r, i, j))
    }

    fn violations(&self, r: &Relation) -> Vec<Violation> {
        let specs: Vec<_> = self.lhs.iter().map(DiffAtom::pair_spec).collect();
        let idx = pairgen::best_index(r, &specs);
        let mut found: Vec<(usize, usize)> = Vec::new();
        idx.for_each_candidate(|i, j| {
            if self.lhs_compatible(r, i, j) && !self.rhs_compatible(r, i, j) {
                found.push((i, j));
            }
            true
        });
        found.sort_unstable();
        found
            .into_iter()
            .map(|(i, j)| {
                let bad: AttrSet = self
                    .rhs
                    .iter()
                    .filter(|a| !a.compatible(r, i, j))
                    .map(|a| a.attr)
                    .collect();
                Violation::pair(i, j, bad)
            })
            .collect()
    }
}

impl fmt::Display for Dd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DD: {}", self.display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heterogeneous::NedAtom;
    use deptree_relation::examples::hotels_r6;

    fn dd1(r: &Relation) -> Dd {
        // §3.3.1: dd1: name(≤1), street(≤5) → address(≤5).
        let s = r.schema();
        Dd::new(
            s,
            vec![
                DiffAtom::at_most(s.id("name"), Metric::Levenshtein, 1.0),
                DiffAtom::at_most(s.id("street"), Metric::Levenshtein, 5.0),
            ],
            vec![DiffAtom::at_most(s.id("address"), Metric::Levenshtein, 5.0)],
        )
    }

    fn dd2(r: &Relation) -> Dd {
        // §3.3.1: dd2: street(≥10) → address(≥5) — dissimilar semantics.
        let s = r.schema();
        Dd::new(
            s,
            vec![DiffAtom::at_least(
                s.id("street"),
                Metric::Levenshtein,
                10.0,
            )],
            vec![DiffAtom::at_least(
                s.id("address"),
                Metric::Levenshtein,
                5.0,
            )],
        )
    }

    #[test]
    fn dd1_pair_t2_t6() {
        // t2 and t6: similar names (distance 0 ≤ 1) and streets, so the
        // addresses must be similar (distance 1 ≤ 5). They are.
        let r = hotels_r6();
        let d = dd1(&r);
        assert!(d.lhs_compatible(&r, 1, 5));
        assert!(d.rhs_compatible(&r, 1, 5));
        assert!(d.holds(&r));
    }

    #[test]
    fn dd2_dissimilar_semantics() {
        // t1 vs t2: streets "CPark" vs "12th St." distance ≥ ... compute:
        // they are quite different; addresses must then differ by > 5.
        let r = hotels_r6();
        let d = dd2(&r);
        assert!(d.holds(&r));
        // Force a violation: make two tuples with very different streets
        // share an address.
        let mut r2 = r.clone();
        let s = r2.schema().clone();
        r2.set_value(0, s.id("address"), "#2 Ave, 12th St.".into());
        // Now t1 (street CPark) and t2 (street 12th St.) have identical
        // addresses: distance 0 < 5 while streets differ by ≥ 10? Check:
        let street_dist =
            Metric::Levenshtein.dist(r2.value(0, s.id("street")), r2.value(1, s.id("street")));
        if street_dist >= 10.0 {
            assert!(!d.holds(&r2));
        } else {
            // Streets not different enough for dd2's premise; use name too.
            assert!(d.holds(&r2));
        }
    }

    #[test]
    fn ned_embedding_preserves_semantics() {
        // ned1 → dd3 of §3.3.2.
        let r = hotels_r6();
        let s = r.schema();
        let ned = Ned::new(
            s,
            vec![
                NedAtom::new(s.id("name"), Metric::Levenshtein, 1.0),
                NedAtom::new(s.id("address"), Metric::Levenshtein, 5.0),
            ],
            vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)],
        );
        let dd = Dd::from_ned(s, &ned);
        assert_eq!(ned.holds(&r), dd.holds(&r));
        assert_eq!(dd.to_string(), "DD: name(≤1), address(≤5) -> street(≤5)");
        // Perturb and compare again.
        let mut r2 = r.clone();
        r2.set_value(5, s.id("street"), "totally different road".into());
        assert_eq!(ned.holds(&r2), dd.holds(&r2));
        assert!(!dd.holds(&r2));
        assert_eq!(ned.violations(&r2), dd.violations(&r2));
    }

    #[test]
    fn subsumption_between_atoms() {
        let a_tight = DiffAtom::at_most(AttrId(0), Metric::Levenshtein, 2.0);
        let a_loose = DiffAtom::at_most(AttrId(0), Metric::Levenshtein, 5.0);
        assert!(a_loose.subsumes(&a_tight));
        assert!(!a_tight.subsumes(&a_loose));
        let other_attr = DiffAtom::at_most(AttrId(1), Metric::Levenshtein, 5.0);
        assert!(!a_loose.subsumes(&other_attr));
    }

    #[test]
    fn support_confidence() {
        let r = hotels_r6();
        let d = dd1(&r);
        let (support, conf) = d.support_confidence(&r);
        assert!(support >= 1);
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn exact_range_atom() {
        // A DD with an exact-distance premise: street(=0) → zip(≤0) is the
        // FD street → zip seen differentially; t2/t4 share street "12th
        // St."? t2 row1 street "12th St.", t4 row4? rows 1 and 4 share
        // street "12th St." and zip 95102 — holds.
        let r = hotels_r6();
        let s = r.schema();
        let d = Dd::new(
            s,
            vec![DiffAtom::new(
                s.id("street"),
                Metric::Levenshtein,
                DistRange::zero(),
            )],
            vec![DiffAtom::at_most(s.id("zip"), Metric::Equality, 0.0)],
        );
        assert!(d.holds(&r));
    }
}
