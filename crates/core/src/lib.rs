//! # deptree-core — the data-dependency family tree
//!
//! This crate implements every dependency notation surveyed in *"Data
//! Dependencies Extended for Variety and Veracity: A Family Tree"* (Song,
//! Gao, Huang & Wang), organized exactly as the survey organizes them:
//!
//! * [`categorical`] — equality-based notations and their statistical /
//!   conditional extensions (§2): FDs, SFDs, PFDs, AFDs, NUDs, CFDs,
//!   eCFDs, MVDs, FHDs, AMVDs;
//! * [`heterogeneous`] — similarity-based notations for data with variety
//!   (§3): MFDs, NEDs, DDs, CDDs, CDs, PACs, FFDs, MDs, CMDs;
//! * [`numerical`] — order-based notations (§4): OFDs, ODs, DCs, SDs,
//!   CSDs;
//! * [`familytree`] — the survey's own contribution: the extension graph
//!   of Fig. 1, the timeline of Fig. 2 and the discovery-complexity
//!   landscape of Fig. 3, as queryable data with empirical verification
//!   hooks;
//! * [`uncertain`] — the §5.1 future direction: horizontal (possible-
//!   worlds) and vertical (or-set) readings of FDs over uncertain
//!   relations;
//! * [`engine`] — the resilient execution engine: resource [`Budget`]s,
//!   cooperative cancellation and the anytime [`Outcome`] contract that
//!   every bounded discovery/quality entry point upholds;
//! * [`error`] — the structured [`DeptreeError`] surfaced by fallible
//!   library entry points in place of panics.
//!
//! Every notation implements the [`Dependency`] trait (satisfaction +
//! violation detection) and, where the survey draws an arrow in Fig. 1,
//! provides an `embed`/`from_*` conversion from its special case whose
//! semantics-preservation is tested property-style.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod categorical;
mod dep;
pub mod engine;
pub mod error;
pub mod familytree;
pub mod heterogeneous;
pub mod numerical;
pub mod op;
pub mod pairs;
pub mod uncertain;

pub use dep::{DepKind, Dependency, Violation};
pub use engine::{Budget, BudgetKind, CancelToken, EngineStats, Exec, Outcome};
pub use error::DeptreeError;
pub use op::CmpOp;

pub use categorical::{
    Afd, Amvd, Cfd, CfdTableau, ECfd, Fd, Fhd, Mvd, Nud, Pattern, PatternCell, PatternOp, Pfd, Sfd,
};
pub use heterogeneous::{
    Cd, Cdd, Cmd, Condition, Dd, DiffAtom, Ffd, Md, Mfd, Ned, NedAtom, Pac, SimFn,
};
pub use numerical::{Csd, CsdRow, Dc, Direction, Interval, Od, Ofd, Operand, Predicate, Sd};
