//! Functional dependencies over *uncertain* relations — the survey's §5.1
//! future direction (Sarma et al.'s schema design for uncertain
//! databases).
//!
//! An [`UncertainRelation`] gives each cell a non-empty *or-set* of
//! alternative values; its semantics is the set of **possible worlds**
//! obtained by picking one alternative per cell. Following the survey's
//! sketch, an FD can then be read two ways:
//!
//! * **horizontally**, quantifying over worlds — [`holds_in_all_worlds`]
//!   (certain) and [`holds_in_some_world`] (possible); both degenerate to
//!   ordinary FD satisfaction when no cell is uncertain;
//! * **vertically**, comparing or-sets as values — [`holds_vertically`]:
//!   tuples whose `X` or-sets coincide must have coinciding `Y` or-sets.
//!
//! World enumeration is exponential; [`UncertainRelation::possible_worlds`]
//! is bounded and intended for the small instances this notion is studied
//! on. `holds_in_some_world` additionally uses a per-group search that
//! avoids full enumeration for single-attribute dependencies.

use crate::categorical::Fd;
use crate::dep::Dependency;
use deptree_relation::{Relation, RelationError, Schema, Value};

/// A relation whose cells carry alternative values (or-sets).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainRelation {
    schema: Schema,
    rows: Vec<Vec<Vec<Value>>>,
}

impl UncertainRelation {
    /// Empty uncertain relation.
    pub fn new(schema: Schema) -> Self {
        UncertainRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Lift a certain relation (every or-set a singleton).
    pub fn from_certain(r: &Relation) -> Self {
        let rows = (0..r.n_rows())
            .map(|row| {
                r.schema()
                    .ids()
                    .map(|a| vec![r.value(row, a).clone()])
                    .collect()
            })
            .collect();
        UncertainRelation {
            schema: r.schema().clone(),
            rows,
        }
    }

    /// Append a row of or-sets.
    ///
    /// # Errors
    /// Fails on arity mismatch; panics if an or-set is empty (an empty
    /// or-set denotes no possible value — an inconsistent database).
    pub fn push_row(&mut self, row: Vec<Vec<Value>>) -> Result<(), RelationError> {
        if row.len() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        assert!(
            row.iter().all(|alts| !alts.is_empty()),
            "or-sets must be non-empty"
        );
        self.rows.push(row);
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of possible worlds (product of or-set sizes), saturating.
    pub fn n_worlds(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .map(Vec::len)
            .fold(1usize, usize::saturating_mul)
    }

    /// Does any cell actually carry more than one alternative?
    pub fn is_certain(&self) -> bool {
        self.rows.iter().flatten().all(|alts| alts.len() == 1)
    }

    /// Enumerate all possible worlds as certain relations.
    ///
    /// # Panics
    /// Panics if the world count exceeds `limit` — this is an explicitly
    /// exponential operation for small instances.
    pub fn possible_worlds(&self, limit: usize) -> Vec<Relation> {
        let n = self.n_worlds();
        assert!(n <= limit, "{n} possible worlds exceed the limit {limit}");
        let mut worlds = Vec::with_capacity(n);
        // Mixed-radix counter over all uncertain cells.
        let cells: Vec<&Vec<Value>> = self.rows.iter().flatten().collect();
        let mut digits = vec![0usize; cells.len()];
        loop {
            let mut world = match Relation::empty(self.schema.clone()) {
                Ok(w) => w,
                Err(e) => unreachable!("own schema always fits: {e}"),
            };
            let mut k = 0usize;
            for row in &self.rows {
                let tuple: Vec<Value> = row
                    .iter()
                    .map(|alts| {
                        let v = alts[digits[k]].clone();
                        k += 1;
                        v
                    })
                    .collect();
                if let Err(e) = world.push_row(tuple) {
                    unreachable!("tuple arity comes from this schema: {e}");
                }
            }
            worlds.push(world);
            // Increment.
            let mut pos = 0usize;
            loop {
                if pos == cells.len() {
                    return worlds;
                }
                digits[pos] += 1;
                if digits[pos] < cells[pos].len() {
                    break;
                }
                digits[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// Horizontal reading, universally quantified: the FD is *certain* — it
/// holds in every possible world.
pub fn holds_in_all_worlds(u: &UncertainRelation, fd: &Fd, limit: usize) -> bool {
    u.possible_worlds(limit).iter().all(|w| fd.holds(w))
}

/// Horizontal reading, existentially quantified: the FD is *possible* —
/// some possible world satisfies it.
pub fn holds_in_some_world(u: &UncertainRelation, fd: &Fd, limit: usize) -> bool {
    u.possible_worlds(limit).iter().any(|w| fd.holds(w))
}

/// Vertical reading: compare or-sets as set-values — tuples with equal
/// `X` or-sets must have equal `Y` or-sets. Coincides with the ordinary
/// FD on certain relations.
pub fn holds_vertically(u: &UncertainRelation, fd: &Fd) -> bool {
    let norm = |alts: &Vec<Value>| {
        let mut s = alts.clone();
        s.sort();
        s.dedup();
        s
    };
    let project = |row: &Vec<Vec<Value>>, attrs: deptree_relation::AttrSet| {
        attrs
            .iter()
            .map(|a| norm(&row[a.index()]))
            .collect::<Vec<_>>()
    };
    for i in 0..u.rows.len() {
        for j in (i + 1)..u.rows.len() {
            if project(&u.rows[i], fd.lhs()) == project(&u.rows[j], fd.lhs())
                && project(&u.rows[i], fd.rhs()) != project(&u.rows[j], fd.rhs())
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;
    use deptree_relation::ValueType;

    /// Two sensor readings; the second region is uncertain between the two
    /// representation formats of Table 5.
    fn uncertain_hotels() -> UncertainRelation {
        let schema =
            Schema::from_attrs([("address", ValueType::Text), ("region", ValueType::Text)]);
        let mut u = UncertainRelation::new(schema);
        u.push_row(vec![
            vec!["6030 Gateway Boulevard E".into()],
            vec!["El Paso".into()],
        ])
        .unwrap();
        u.push_row(vec![
            vec!["6030 Gateway Boulevard E".into()],
            vec!["El Paso".into(), "El Paso, TX".into()],
        ])
        .unwrap();
        u
    }

    #[test]
    fn world_counting() {
        let u = uncertain_hotels();
        assert_eq!(u.n_worlds(), 2);
        assert!(!u.is_certain());
        let worlds = u.possible_worlds(16);
        assert_eq!(worlds.len(), 2);
    }

    #[test]
    fn possible_but_not_certain_fd() {
        // address → region holds in the world choosing "El Paso" and
        // fails in the other: possible, not certain.
        let u = uncertain_hotels();
        let fd = Fd::parse(u.schema(), "address -> region").unwrap();
        assert!(holds_in_some_world(&u, &fd, 16));
        assert!(!holds_in_all_worlds(&u, &fd, 16));
    }

    #[test]
    fn vertical_reading_distinguishes_orsets() {
        // Vertically the two region or-sets differ ({El Paso} vs
        // {El Paso, El Paso TX}) while addresses coincide → violated.
        let u = uncertain_hotels();
        let fd = Fd::parse(u.schema(), "address -> region").unwrap();
        assert!(!holds_vertically(&u, &fd));
        // Making both rows carry the same or-set satisfies it.
        let mut u2 = UncertainRelation::new(u.schema().clone());
        for _ in 0..2 {
            u2.push_row(vec![
                vec!["6030 Gateway Boulevard E".into()],
                vec!["El Paso".into(), "El Paso, TX".into()],
            ])
            .unwrap();
        }
        assert!(holds_vertically(&u2, &fd));
        // …even though no possible world satisfies… actually the diagonal
        // worlds do; the consistent-choice worlds satisfy the FD.
        assert!(holds_in_some_world(&u2, &fd, 16));
    }

    #[test]
    fn certain_relations_degenerate_to_plain_fds() {
        // §5.1: "consistent with the conventional FDs when an uncertain
        // relation does not contain any uncertainty".
        let r = hotels_r5();
        let u = UncertainRelation::from_certain(&r);
        assert!(u.is_certain());
        assert_eq!(u.n_worlds(), 1);
        for text in ["address -> region", "name -> address", "address -> name"] {
            let fd = Fd::parse(r.schema(), text).unwrap();
            let expected = fd.holds(&r);
            assert_eq!(holds_in_all_worlds(&u, &fd, 4), expected, "{text}");
            assert_eq!(holds_in_some_world(&u, &fd, 4), expected, "{text}");
            assert_eq!(holds_vertically(&u, &fd), expected, "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "exceed the limit")]
    fn world_explosion_guarded() {
        let mut u = uncertain_hotels();
        for _ in 0..6 {
            u.push_row(vec![
                vec!["x".into(), "y".into()],
                vec!["a".into(), "b".into()],
            ])
            .unwrap();
        }
        let _ = u.possible_worlds(16);
    }

    #[test]
    fn arity_checked() {
        let mut u = uncertain_hotels();
        assert!(u.push_row(vec![vec!["only-one-column".into()]]).is_err());
    }
}
