//! Resilient execution engine: budgets, cancellation and anytime results.
//!
//! Dependency discovery is exponential in the schema width in the worst
//! case, and the quality tasks built on top of it (repair, deduplication,
//! consistent query answering) are NP-hard even for fixed rule sets. A
//! production profiler cannot simply hope the input is friendly — it needs
//! every long-running routine to be an *anytime algorithm*: interruptible
//! at a fine grain, and able to return the **sound** portion of the work
//! done so far together with an honest account of why it stopped.
//!
//! The pieces:
//!
//! * [`Budget`] — declarative resource limits: a wall-clock deadline, a
//!   cap on candidate-lattice nodes, a cap on rows processed, and a cap
//!   on the estimated memory held in stripped partitions.
//! * [`CancelToken`] — a cheap, clonable cancellation flag (one relaxed
//!   atomic load per poll) that a driving thread, signal handler or UI can
//!   flip at any time.
//! * [`Exec`] — the per-run execution context that algorithms *tick*
//!   from their hot loops. Ticks are counters plus an occasional clock
//!   poll, so instrumentation costs nanoseconds per node.
//! * [`Outcome`] — what every bounded entry point returns: the result,
//!   whether it is complete, which budget (if any) was exhausted, and
//!   [`EngineStats`] describing the work performed.
//!
//! The contract every bounded algorithm in this workspace upholds: when
//! `complete == false`, the partial result is still **sound** — every
//! dependency reported holds on the input; every repair step applied is
//! valid — it is only *completeness* (minimality of covers, exhaustiveness
//! of search) that is forfeited.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which resource limit stopped a bounded run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The candidate/search-node cap was reached.
    Nodes,
    /// The row-processing cap was reached.
    Rows,
    /// The partition-memory estimate exceeded its cap.
    Memory,
    /// The [`CancelToken`] was flipped by the caller.
    Cancelled,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Deadline => "deadline",
            BudgetKind::Nodes => "node budget",
            BudgetKind::Rows => "row budget",
            BudgetKind::Memory => "memory budget",
            BudgetKind::Cancelled => "cancelled",
        })
    }
}

/// Declarative resource limits for one bounded run. All limits default to
/// "unlimited"; combine with the builder methods.
///
/// ```
/// use deptree_core::engine::Budget;
/// use std::time::Duration;
/// let b = Budget::new()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_nodes(10_000);
/// assert!(b.deadline.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit measured from [`Exec`] construction.
    pub deadline: Option<Duration>,
    /// Maximum search/lattice nodes visited.
    pub max_nodes: Option<u64>,
    /// Maximum rows processed (tuples scanned, pairs compared, …).
    pub max_rows: Option<u64>,
    /// Maximum bytes of partition state held at once (estimate).
    pub max_partition_bytes: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Set a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Cap the number of search nodes visited.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Cap the number of rows processed.
    pub fn with_max_rows(mut self, n: u64) -> Self {
        self.max_rows = Some(n);
        self
    }

    /// Cap the estimated partition memory held at once.
    pub fn with_max_partition_bytes(mut self, n: u64) -> Self {
        self.max_partition_bytes = Some(n);
        self
    }

    /// True when no limit is set — bounded entry points can skip all
    /// instrumentation overhead in this case.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_nodes.is_none()
            && self.max_rows.is_none()
            && self.max_partition_bytes.is_none()
    }
}

/// Cheap cooperative cancellation: clone the token, hand one clone to the
/// running algorithm (via [`Exec::with_cancel`]) and keep the other;
/// [`CancelToken::cancel`] makes every subsequent budget poll fail with
/// [`BudgetKind::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Work counters reported with every [`Outcome`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Search/lattice nodes visited.
    pub nodes_visited: u64,
    /// Rows processed (tuples scanned, pairs compared, …).
    pub rows_processed: u64,
    /// Peak estimated partition memory held at once, in bytes.
    pub partition_bytes_peak: u64,
    /// Wall-clock time from `Exec` construction to `finish`.
    pub elapsed: Duration,
}

/// The result of a bounded run: the (possibly partial, always sound)
/// result plus an honest account of whether and why the run stopped early.
#[derive(Debug, Clone)]
pub struct Outcome<T> {
    /// The result. When `complete` is false this is the sound prefix of
    /// the full answer, not an approximation of it.
    pub result: T,
    /// True iff the run finished exhaustively.
    pub complete: bool,
    /// Which budget stopped the run, when `complete` is false.
    pub exhausted: Option<BudgetKind>,
    /// Work performed.
    pub stats: EngineStats,
}

impl<T> Outcome<T> {
    /// Map the result, preserving completeness and stats.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            result: f(self.result),
            complete: self.complete,
            exhausted: self.exhausted,
            stats: self.stats,
        }
    }
}

/// How many ticks pass between clock/cancellation polls. Counter limits
/// are checked on every tick (they are just integer compares); the
/// deadline requires `Instant::now()` and the cancel flag an atomic load,
/// so those are amortized over this many ticks.
const POLL_INTERVAL: u64 = 64;

/// Per-run execution context. Cheap to construct; uses interior
/// mutability so algorithms can tick from `&self` contexts and helper
/// functions without threading `&mut` everywhere.
///
/// Hot-loop protocol:
///
/// ```
/// use deptree_core::engine::{Budget, Exec};
/// let exec = Exec::new(Budget::new().with_max_nodes(100));
/// let mut visited = 0u64;
/// loop {
///     if !exec.tick_node() {
///         break; // budget exhausted — wind down, return sound prefix
///     }
///     visited += 1;
/// }
/// let outcome = exec.finish(visited);
/// assert!(!outcome.complete);
/// assert_eq!(outcome.result, 100);
/// ```
#[derive(Debug)]
pub struct Exec {
    budget: Budget,
    cancel: CancelToken,
    start: Instant,
    nodes: Cell<u64>,
    rows: Cell<u64>,
    partition_bytes: Cell<u64>,
    partition_peak: Cell<u64>,
    since_poll: Cell<u64>,
    exhausted: Cell<Option<BudgetKind>>,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::unbounded()
    }
}

impl Exec {
    /// Context with the given budget and a private cancel token.
    pub fn new(budget: Budget) -> Self {
        Exec::with_cancel(budget, CancelToken::new())
    }

    /// Context with the given budget observing an external cancel token.
    pub fn with_cancel(budget: Budget, cancel: CancelToken) -> Self {
        Exec {
            budget,
            cancel,
            start: Instant::now(),
            nodes: Cell::new(0),
            rows: Cell::new(0),
            partition_bytes: Cell::new(0),
            partition_peak: Cell::new(0),
            since_poll: Cell::new(0),
            exhausted: Cell::new(None),
        }
    }

    /// Context with no limits — bounded entry points run to completion.
    pub fn unbounded() -> Self {
        Exec::new(Budget::new())
    }

    /// The budget this context enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Which budget has been exhausted, if any. Sticky: once set it stays
    /// set, so partial-result wind-down code can re-check freely.
    pub fn exhausted(&self) -> Option<BudgetKind> {
        self.exhausted.get()
    }

    /// True while no budget has been exhausted.
    pub fn is_live(&self) -> bool {
        self.exhausted.get().is_none()
    }

    /// Record one search-node visit; returns false when the run must stop.
    #[inline]
    pub fn tick_node(&self) -> bool {
        self.nodes.set(self.nodes.get() + 1);
        if let Some(max) = self.budget.max_nodes {
            if self.nodes.get() > max {
                self.exhaust(BudgetKind::Nodes);
                return false;
            }
        }
        self.tick()
    }

    /// Record `n` rows processed; returns false when the run must stop.
    #[inline]
    pub fn tick_rows(&self, n: u64) -> bool {
        self.rows.set(self.rows.get() + n);
        if let Some(max) = self.budget.max_rows {
            if self.rows.get() > max {
                self.exhaust(BudgetKind::Rows);
                return false;
            }
        }
        self.tick()
    }

    /// Cheap liveness poll for loops that don't map naturally onto nodes
    /// or rows; returns false when the run must stop.
    #[inline]
    pub fn tick(&self) -> bool {
        if self.exhausted.get().is_some() {
            return false;
        }
        let since = self.since_poll.get() + 1;
        if since < POLL_INTERVAL {
            self.since_poll.set(since);
            return true;
        }
        self.since_poll.set(0);
        self.poll()
    }

    /// Immediate (non-amortized) deadline + cancellation check. Use at
    /// phase boundaries where stale liveness would waste a whole phase.
    pub fn poll(&self) -> bool {
        if self.exhausted.get().is_some() {
            return false;
        }
        if self.cancel.is_cancelled() {
            self.exhaust(BudgetKind::Cancelled);
            return false;
        }
        if let Some(d) = self.budget.deadline {
            if self.start.elapsed() > d {
                self.exhaust(BudgetKind::Deadline);
                return false;
            }
        }
        true
    }

    /// Track growth of partition state; returns false when the estimate
    /// exceeds the memory cap.
    pub fn alloc_partition(&self, bytes: u64) -> bool {
        let now = self.partition_bytes.get() + bytes;
        self.partition_bytes.set(now);
        if now > self.partition_peak.get() {
            self.partition_peak.set(now);
        }
        if let Some(max) = self.budget.max_partition_bytes {
            if now > max {
                self.exhaust(BudgetKind::Memory);
                return false;
            }
        }
        true
    }

    /// Track release of partition state.
    pub fn free_partition(&self, bytes: u64) {
        self.partition_bytes
            .set(self.partition_bytes.get().saturating_sub(bytes));
    }

    fn exhaust(&self, kind: BudgetKind) {
        if self.exhausted.get().is_none() {
            self.exhausted.set(Some(kind));
        }
    }

    /// Snapshot the work counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            nodes_visited: self.nodes.get(),
            rows_processed: self.rows.get(),
            partition_bytes_peak: self.partition_peak.get(),
            elapsed: self.start.elapsed(),
        }
    }

    /// Package a result with this context's completion state and stats.
    pub fn finish<T>(&self, result: T) -> Outcome<T> {
        let exhausted = self.exhausted.get();
        Outcome {
            result,
            complete: exhausted.is_none(),
            exhausted,
            stats: self.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let exec = Exec::unbounded();
        for _ in 0..10_000 {
            assert!(exec.tick_node());
        }
        let out = exec.finish(());
        assert!(out.complete);
        assert_eq!(out.exhausted, None);
        assert_eq!(out.stats.nodes_visited, 10_000);
    }

    #[test]
    fn node_budget_exhausts_exactly() {
        let exec = Exec::new(Budget::new().with_max_nodes(10));
        let mut ok = 0;
        for _ in 0..100 {
            if exec.tick_node() {
                ok += 1;
            }
        }
        assert_eq!(ok, 10);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Nodes));
        assert!(!exec.finish(()).complete);
    }

    #[test]
    fn row_budget_counts_batches() {
        let exec = Exec::new(Budget::new().with_max_rows(100));
        assert!(exec.tick_rows(60));
        assert!(exec.tick_rows(40));
        assert!(!exec.tick_rows(1));
        assert_eq!(exec.exhausted(), Some(BudgetKind::Rows));
    }

    #[test]
    fn deadline_exhausts() {
        let exec = Exec::new(Budget::new().with_deadline(Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!exec.poll());
        assert_eq!(exec.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn deadline_detected_via_amortized_tick() {
        let exec = Exec::new(Budget::new().with_deadline(Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        let mut stopped = false;
        // Poll interval is 64, so within ~2·64 ticks the deadline fires.
        for _ in 0..200 {
            if !exec.tick_node() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let exec = Exec::with_cancel(Budget::new(), token.clone());
        assert!(exec.poll());
        token.cancel();
        assert!(!exec.poll());
        assert_eq!(exec.exhausted(), Some(BudgetKind::Cancelled));
    }

    #[test]
    fn memory_tracking_peaks_and_frees() {
        let exec = Exec::new(Budget::new().with_max_partition_bytes(1000));
        assert!(exec.alloc_partition(600));
        exec.free_partition(500);
        assert!(exec.alloc_partition(600));
        assert_eq!(exec.stats().partition_bytes_peak, 700);
        assert!(!exec.alloc_partition(400));
        assert_eq!(exec.exhausted(), Some(BudgetKind::Memory));
    }

    #[test]
    fn exhaustion_is_sticky() {
        let exec = Exec::new(Budget::new().with_max_nodes(1));
        assert!(exec.tick_node());
        assert!(!exec.tick_node());
        assert!(!exec.tick());
        assert!(!exec.poll());
        assert!(!exec.tick_rows(1));
    }

    #[test]
    fn outcome_map_preserves_flags() {
        let exec = Exec::new(Budget::new().with_max_nodes(1));
        exec.tick_node();
        exec.tick_node();
        let out = exec.finish(3u32).map(|x| x * 2);
        assert_eq!(out.result, 6);
        assert!(!out.complete);
        assert_eq!(out.exhausted, Some(BudgetKind::Nodes));
    }
}
