//! Resilient execution engine: budgets, cancellation and anytime results.
//!
//! Dependency discovery is exponential in the schema width in the worst
//! case, and the quality tasks built on top of it (repair, deduplication,
//! consistent query answering) are NP-hard even for fixed rule sets. A
//! production profiler cannot simply hope the input is friendly — it needs
//! every long-running routine to be an *anytime algorithm*: interruptible
//! at a fine grain, and able to return the **sound** portion of the work
//! done so far together with an honest account of why it stopped.
//!
//! The pieces:
//!
//! * [`Budget`] — declarative resource limits: a wall-clock deadline, a
//!   cap on candidate-lattice nodes, a cap on rows processed, and a cap
//!   on the estimated memory held in stripped partitions.
//! * [`CancelToken`] — a cheap, clonable cancellation flag (one relaxed
//!   atomic load per poll) that a driving thread, signal handler or UI can
//!   flip at any time.
//! * [`Exec`] — the per-run execution context that algorithms *tick*
//!   from their hot loops. Ticks are counters plus an occasional clock
//!   poll, so instrumentation costs nanoseconds per node. `Exec` is
//!   `Sync`: all counters are atomics, so the worker threads of the
//!   [`pool`] tick the same context concurrently and a budget exhausted
//!   by any worker stops all of them.
//! * [`Outcome`] — what every bounded entry point returns: the result,
//!   whether it is complete, which budget (if any) was exhausted, and
//!   [`EngineStats`] describing the work performed.
//! * [`pool`] — a scoped work-stealing thread pool used by the parallel
//!   discovery executors; [`Exec::threads`] carries the requested worker
//!   count through every bounded entry point.
//!
//! The contract every bounded algorithm in this workspace upholds: when
//! `complete == false`, the partial result is still **sound** — every
//! dependency reported holds on the input; every repair step applied is
//! valid — it is only *completeness* (minimality of covers, exhaustiveness
//! of search) that is forfeited.
//!
//! ## Deterministic parallel budgets
//!
//! Parallel executors must return the *same* anytime prefix at every
//! thread count. Per-candidate ticking from racing workers would make the
//! cut-off point depend on scheduling, so level-wise miners instead
//! *reserve* budget up front with [`Exec::try_reserve_nodes`] /
//! [`Exec::try_reserve_rows`]: the reservation atomically grants the
//! longest prefix of the candidate batch that fits the remaining budget,
//! the granted candidates are evaluated in parallel, and their results are
//! merged in canonical (input) order. The processed prefix — and therefore
//! the emitted dependency set — is identical to what the serial
//! tick-per-candidate loop would have processed.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod obs;
pub mod pool;
pub mod signal;

/// Which resource limit stopped a bounded run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The candidate/search-node cap was reached.
    Nodes,
    /// The row-processing cap was reached.
    Rows,
    /// The partition-memory estimate exceeded its cap.
    Memory,
    /// The [`CancelToken`] was flipped by the caller.
    Cancelled,
}

impl BudgetKind {
    /// Dense encoding for the atomic exhaustion flag (0 = live).
    fn code(self) -> u8 {
        match self {
            BudgetKind::Deadline => 1,
            BudgetKind::Nodes => 2,
            BudgetKind::Rows => 3,
            BudgetKind::Memory => 4,
            BudgetKind::Cancelled => 5,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(BudgetKind::Deadline),
            2 => Some(BudgetKind::Nodes),
            3 => Some(BudgetKind::Rows),
            4 => Some(BudgetKind::Memory),
            5 => Some(BudgetKind::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Deadline => "deadline",
            BudgetKind::Nodes => "node budget",
            BudgetKind::Rows => "row budget",
            BudgetKind::Memory => "memory budget",
            BudgetKind::Cancelled => "cancelled",
        })
    }
}

/// Declarative resource limits for one bounded run. All limits default to
/// "unlimited"; combine with the builder methods.
///
/// ```
/// use deptree_core::engine::Budget;
/// use std::time::Duration;
/// let b = Budget::new()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_nodes(10_000);
/// assert!(b.deadline.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit measured from [`Exec`] construction.
    pub deadline: Option<Duration>,
    /// Maximum search/lattice nodes visited.
    pub max_nodes: Option<u64>,
    /// Maximum rows processed (tuples scanned, pairs compared, …).
    pub max_rows: Option<u64>,
    /// Maximum bytes of partition state held at once (estimate).
    pub max_partition_bytes: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn new() -> Self {
        Budget::default()
    }

    /// Set a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Cap the number of search nodes visited.
    pub fn with_max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Cap the number of rows processed.
    pub fn with_max_rows(mut self, n: u64) -> Self {
        self.max_rows = Some(n);
        self
    }

    /// Cap the estimated partition memory held at once.
    pub fn with_max_partition_bytes(mut self, n: u64) -> Self {
        self.max_partition_bytes = Some(n);
        self
    }

    /// True when no limit is set — bounded entry points can skip all
    /// instrumentation overhead in this case.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_nodes.is_none()
            && self.max_rows.is_none()
            && self.max_partition_bytes.is_none()
    }

    /// Divide this budget into one of `n` equal shares for a
    /// scatter/gather fan-out (each share drives one parallel worker).
    ///
    /// Counter caps (`max_nodes`, `max_rows`, `max_partition_bytes`) are
    /// ceil-divided so no work is lost to rounding; the roll-up across
    /// all `n` shares overshoots the original grant by at most `n - 1`
    /// units per cap. The wall-clock `deadline` is kept as-is: the
    /// shares run concurrently, so they spend the same wall-clock
    /// window, not a fraction of it. Unlimited caps stay unlimited.
    ///
    /// ```
    /// use deptree_core::engine::Budget;
    /// let shares = Budget::new().with_max_nodes(10).split(3);
    /// assert_eq!(shares.max_nodes, Some(4)); // ceil(10 / 3)
    /// ```
    pub fn split(&self, n: usize) -> Budget {
        let n = n.max(1) as u64;
        let share = |cap: Option<u64>| cap.map(|c| c.div_ceil(n));
        Budget {
            deadline: self.deadline,
            max_nodes: share(self.max_nodes),
            max_rows: share(self.max_rows),
            max_partition_bytes: share(self.max_partition_bytes),
        }
    }
}

/// Cheap cooperative cancellation: clone the token, hand one clone to the
/// running algorithm (via [`Exec::with_cancel`]) and keep the other;
/// [`CancelToken::cancel`] makes every subsequent budget poll fail with
/// [`BudgetKind::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Work counters reported with every [`Outcome`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Search/lattice nodes visited.
    pub nodes_visited: u64,
    /// Rows processed (tuples scanned, pairs compared, …).
    pub rows_processed: u64,
    /// Peak estimated partition memory held at once, in bytes.
    pub partition_bytes_peak: u64,
    /// Wall-clock time from `Exec` construction to `finish`.
    pub elapsed: Duration,
}

/// The result of a bounded run: the (possibly partial, always sound)
/// result plus an honest account of whether and why the run stopped early.
#[derive(Debug, Clone)]
pub struct Outcome<T> {
    /// The result. When `complete` is false this is the sound prefix of
    /// the full answer, not an approximation of it.
    pub result: T,
    /// True iff the run finished exhaustively.
    pub complete: bool,
    /// Which budget stopped the run, when `complete` is false.
    pub exhausted: Option<BudgetKind>,
    /// Work performed.
    pub stats: EngineStats,
}

impl<T> Outcome<T> {
    /// Map the result, preserving completeness and stats.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            result: f(self.result),
            complete: self.complete,
            exhausted: self.exhausted,
            stats: self.stats,
        }
    }
}

/// How many ticks pass between clock/cancellation polls. Counter limits
/// are checked on every tick (they are just integer compares); the
/// deadline requires `Instant::now()` and the cancel flag an atomic load,
/// so those are amortized over this many ticks. The interval bounds how
/// far a run can overshoot its deadline — one interval of node work —
/// so it is kept small relative to per-node cost (a clock read is tens
/// of nanoseconds; a node visit is microseconds).
const POLL_INTERVAL: u64 = 16;

/// Environment variable consulted for the default worker-thread count.
pub const THREADS_ENV: &str = "DEPTREE_THREADS";

/// Default number of worker threads: `DEPTREE_THREADS` when set to a
/// positive integer, otherwise 1 (serial). The conservative default keeps
/// single-machine runs deterministic-by-default and lets CI gate both
/// modes by exporting the variable.
pub fn default_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Per-run execution context. Cheap to construct. All counters are
/// atomics, so `Exec` is `Sync` and one context can be shared by every
/// worker of a parallel run: any worker exhausting a budget stops all of
/// them, and counters aggregate across threads.
///
/// Hot-loop protocol:
///
/// ```
/// use deptree_core::engine::{Budget, Exec};
/// let exec = Exec::new(Budget::new().with_max_nodes(100));
/// let mut visited = 0u64;
/// loop {
///     if !exec.tick_node() {
///         break; // budget exhausted — wind down, return sound prefix
///     }
///     visited += 1;
/// }
/// let outcome = exec.finish(visited);
/// assert!(!outcome.complete);
/// assert_eq!(outcome.result, 100);
/// ```
#[derive(Debug)]
pub struct Exec {
    budget: Budget,
    cancel: CancelToken,
    start: Instant,
    threads: usize,
    nodes: AtomicU64,
    rows: AtomicU64,
    partition_bytes: AtomicU64,
    partition_peak: AtomicU64,
    since_poll: AtomicU64,
    exhausted: AtomicU8,
    tracer: Option<Arc<obs::Tracer>>,
}

impl Default for Exec {
    fn default() -> Self {
        Exec::unbounded()
    }
}

impl Exec {
    /// Context with the given budget and a private cancel token.
    pub fn new(budget: Budget) -> Self {
        Exec::with_cancel(budget, CancelToken::new())
    }

    /// Context with the given budget observing an external cancel token.
    pub fn with_cancel(budget: Budget, cancel: CancelToken) -> Self {
        Exec {
            budget,
            cancel,
            start: Instant::now(),
            threads: default_threads(),
            nodes: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            partition_bytes: AtomicU64::new(0),
            partition_peak: AtomicU64::new(0),
            since_poll: AtomicU64::new(0),
            exhausted: AtomicU8::new(0),
            tracer: None,
        }
    }

    /// Context with no limits — bounded entry points run to completion.
    pub fn unbounded() -> Self {
        Exec::new(Budget::new())
    }

    /// Set the worker-thread count for parallel discovery executors.
    /// Clamped to at least 1; 1 means fully serial execution.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads parallel executors should use (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attach a span tracer. Tracing is observation-only: algorithms
    /// record phase boundaries into it but never read it back, so an
    /// attached tracer cannot change any result byte.
    pub fn with_tracer(mut self, tracer: Arc<obs::Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<obs::Tracer>> {
        self.tracer.as_ref()
    }

    /// Open a named span. With no tracer attached this is a no-op guard
    /// costing one branch, so phase boundaries can be instrumented
    /// unconditionally.
    pub fn span(&self, name: &'static str) -> obs::SpanGuard<'_> {
        obs::SpanGuard::new(self.tracer.as_deref(), name)
    }

    /// The budget this context enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Which budget has been exhausted, if any. Sticky: once set it stays
    /// set, so partial-result wind-down code can re-check freely.
    pub fn exhausted(&self) -> Option<BudgetKind> {
        BudgetKind::from_code(self.exhausted.load(Ordering::Relaxed))
    }

    /// True while no budget has been exhausted.
    pub fn is_live(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed) == 0
    }

    /// Record one search-node visit; returns false when the run must stop.
    #[inline]
    pub fn tick_node(&self) -> bool {
        let now = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.budget.max_nodes {
            if now > max {
                self.exhaust(BudgetKind::Nodes);
                return false;
            }
        }
        self.tick()
    }

    /// Record `n` rows processed; returns false when the run must stop.
    #[inline]
    pub fn tick_rows(&self, n: u64) -> bool {
        let now = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.budget.max_rows {
            if now > max {
                self.exhaust(BudgetKind::Rows);
                return false;
            }
        }
        self.tick()
    }

    /// Atomically reserve up to `want` node visits, granting the longest
    /// prefix the node budget still allows. When fewer than `want` are
    /// granted the node budget is marked exhausted, mirroring what `want`
    /// sequential [`Exec::tick_node`] calls would have done. A failed
    /// deadline/cancellation poll grants zero.
    ///
    /// This is the primitive behind deterministic parallel budgets: a
    /// level-wise miner reserves a whole candidate batch, evaluates
    /// exactly the granted prefix in parallel and merges in input order,
    /// so the processed set matches the serial path bit for bit.
    pub fn try_reserve_nodes(&self, want: u64) -> u64 {
        if !self.poll() {
            return 0;
        }
        let granted = Self::reserve_counter(&self.nodes, self.budget.max_nodes, want);
        if granted < want {
            self.exhaust(BudgetKind::Nodes);
        }
        granted
    }

    /// Atomically reserve up to `want` row ticks; the row-budget analogue
    /// of [`Exec::try_reserve_nodes`], with the same exhaustion contract.
    pub fn try_reserve_rows(&self, want: u64) -> u64 {
        if !self.poll() {
            return 0;
        }
        let granted = Self::reserve_counter(&self.rows, self.budget.max_rows, want);
        if granted < want {
            self.exhaust(BudgetKind::Rows);
        }
        granted
    }

    /// Reserve up to `want` candidates that each cost one node tick plus
    /// `rows_per_item` row ticks — the shape of a level-wise miner's
    /// candidate loop (`tick_node() && tick_rows(k)` per candidate). The
    /// grant is the longest candidate prefix BOTH budgets allow, exactly
    /// where the serial tick-per-candidate loop would have stopped; a
    /// short grant marks the binding budget(s) exhausted, node budget
    /// first to mirror the serial short-circuit order.
    ///
    /// The two single-budget reservations cannot be composed for this
    /// (`try_reserve_nodes` then `try_reserve_rows`): the first short
    /// grant marks the run exhausted, making the second reservation
    /// return zero instead of its own prefix.
    pub fn try_reserve_batch(&self, want: u64, rows_per_item: u64) -> u64 {
        if !self.poll() {
            return 0;
        }
        let by_nodes = Self::reserve_counter(&self.nodes, self.budget.max_nodes, want);
        let rows_granted = Self::reserve_counter(
            &self.rows,
            self.budget.max_rows,
            want.saturating_mul(rows_per_item),
        );
        // Zero-cost items (empty relation) are bounded by nodes alone.
        let by_rows = rows_granted.checked_div(rows_per_item).unwrap_or(want);
        if by_nodes < want {
            self.exhaust(BudgetKind::Nodes);
        }
        if by_rows < want {
            self.exhaust(BudgetKind::Rows);
        }
        by_nodes.min(by_rows)
    }

    /// Lock-free longest-prefix grant against one budget counter: adds up
    /// to `want` to `counter`, stopping at `max`. Exhaustion marking is
    /// the caller's job — this must stay side-effect-free so combined
    /// reservations can probe several budgets before deciding which one
    /// was binding.
    fn reserve_counter(counter: &AtomicU64, max: Option<u64>, want: u64) -> u64 {
        match max {
            None => {
                counter.fetch_add(want, Ordering::Relaxed);
                want
            }
            Some(max) => loop {
                let cur = counter.load(Ordering::Relaxed);
                let grant = want.min(max.saturating_sub(cur));
                if counter
                    .compare_exchange(cur, cur + grant, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break grant;
                }
            },
        }
    }

    /// Cheap liveness poll for loops that don't map naturally onto nodes
    /// or rows; returns false when the run must stop.
    #[inline]
    pub fn tick(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) != 0 {
            return false;
        }
        let since = self.since_poll.fetch_add(1, Ordering::Relaxed) + 1;
        if since < POLL_INTERVAL {
            return true;
        }
        self.since_poll.store(0, Ordering::Relaxed);
        self.poll()
    }

    /// Immediate (non-amortized) deadline + cancellation check. Use at
    /// phase boundaries where stale liveness would waste a whole phase.
    pub fn poll(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) != 0 {
            return false;
        }
        if self.cancel.is_cancelled() {
            self.exhaust(BudgetKind::Cancelled);
            return false;
        }
        if let Some(d) = self.budget.deadline {
            if self.start.elapsed() > d {
                self.exhaust(BudgetKind::Deadline);
                return false;
            }
        }
        true
    }

    /// Active cancellation/deadline check for pool workers draining an
    /// already-reserved candidate batch. The deterministic budget kinds
    /// (nodes, rows, memory) must NOT abort the batch — the reservation
    /// fixed exactly which candidates get evaluated, at every thread
    /// count — but deadline expiry and external cancellation are
    /// timing-dependent by nature, so workers honor them promptly even
    /// mid-batch instead of finishing the whole grant. Marks the
    /// exhaustion it detects; sticky like [`Exec::poll`].
    pub fn interrupted(&self) -> bool {
        if let Some(BudgetKind::Deadline | BudgetKind::Cancelled) = self.exhausted() {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.exhaust(BudgetKind::Cancelled);
            return true;
        }
        if let Some(d) = self.budget.deadline {
            if self.start.elapsed() > d {
                self.exhaust(BudgetKind::Deadline);
                return true;
            }
        }
        false
    }

    /// Track growth of partition state; returns false when the estimate
    /// exceeds the memory cap.
    pub fn alloc_partition(&self, bytes: u64) -> bool {
        let now = self.partition_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.partition_peak.fetch_max(now, Ordering::Relaxed);
        if let Some(max) = self.budget.max_partition_bytes {
            if now > max {
                self.exhaust(BudgetKind::Memory);
                return false;
            }
        }
        true
    }

    /// Track release of partition state.
    pub fn free_partition(&self, bytes: u64) {
        // Saturating subtract via CAS: a release racing a larger release
        // must not wrap the counter.
        loop {
            let cur = self.partition_bytes.load(Ordering::Relaxed);
            let next = cur.saturating_sub(bytes);
            if self
                .partition_bytes
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
    }

    fn exhaust(&self, kind: BudgetKind) {
        // First exhaustion wins; later ones keep the original cause.
        if self
            .exhausted
            .compare_exchange(0, kind.code(), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            obs::engine_metrics().budget_exhausted(kind).inc();
        }
    }

    /// Snapshot the work counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            nodes_visited: self.nodes.load(Ordering::Relaxed),
            rows_processed: self.rows.load(Ordering::Relaxed),
            partition_bytes_peak: self.partition_peak.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
        }
    }

    /// Package a result with this context's completion state and stats.
    pub fn finish<T>(&self, result: T) -> Outcome<T> {
        let exhausted = self.exhausted();
        Outcome {
            result,
            complete: exhausted.is_none(),
            exhausted,
            stats: self.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_shares_counters_and_keeps_the_deadline() {
        let b = Budget::new()
            .with_deadline(Duration::from_millis(500))
            .with_max_nodes(10)
            .with_max_rows(7)
            .with_max_partition_bytes(64);
        let share = b.split(3);
        assert_eq!(share.deadline, Some(Duration::from_millis(500)));
        assert_eq!(share.max_nodes, Some(4)); // ceil(10/3)
        assert_eq!(share.max_rows, Some(3)); // ceil(7/3)
        assert_eq!(share.max_partition_bytes, Some(22)); // ceil(64/3)
                                                         // Roll-up bound: n shares cover the grant, overshooting by < n.
        for (total, cap) in [(10u64, 4u64), (7, 3), (64, 22)] {
            assert!(3 * cap >= total && 3 * cap < total + 3);
        }
    }

    #[test]
    fn split_of_unlimited_stays_unlimited_and_zero_shares_clamp() {
        assert!(Budget::new().split(4).is_unlimited());
        // A degenerate fan-out of zero workers must not divide by zero.
        let b = Budget::new().with_max_nodes(5).split(0);
        assert_eq!(b.max_nodes, Some(5));
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let exec = Exec::unbounded();
        for _ in 0..10_000 {
            assert!(exec.tick_node());
        }
        let out = exec.finish(());
        assert!(out.complete);
        assert_eq!(out.exhausted, None);
        assert_eq!(out.stats.nodes_visited, 10_000);
    }

    #[test]
    fn node_budget_exhausts_exactly() {
        let exec = Exec::new(Budget::new().with_max_nodes(10));
        let mut ok = 0;
        for _ in 0..100 {
            if exec.tick_node() {
                ok += 1;
            }
        }
        assert_eq!(ok, 10);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Nodes));
        assert!(!exec.finish(()).complete);
    }

    #[test]
    fn row_budget_counts_batches() {
        let exec = Exec::new(Budget::new().with_max_rows(100));
        assert!(exec.tick_rows(60));
        assert!(exec.tick_rows(40));
        assert!(!exec.tick_rows(1));
        assert_eq!(exec.exhausted(), Some(BudgetKind::Rows));
    }

    #[test]
    fn deadline_exhausts() {
        let exec = Exec::new(Budget::new().with_deadline(Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!exec.poll());
        assert_eq!(exec.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn deadline_detected_via_amortized_tick() {
        let exec = Exec::new(Budget::new().with_deadline(Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        let mut stopped = false;
        // Poll interval is 16, so within a few intervals the deadline fires.
        for _ in 0..200 {
            if !exec.tick_node() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let exec = Exec::with_cancel(Budget::new(), token.clone());
        assert!(exec.poll());
        token.cancel();
        assert!(!exec.poll());
        assert_eq!(exec.exhausted(), Some(BudgetKind::Cancelled));
    }

    #[test]
    fn memory_tracking_peaks_and_frees() {
        let exec = Exec::new(Budget::new().with_max_partition_bytes(1000));
        assert!(exec.alloc_partition(600));
        exec.free_partition(500);
        assert!(exec.alloc_partition(600));
        assert_eq!(exec.stats().partition_bytes_peak, 700);
        assert!(!exec.alloc_partition(400));
        assert_eq!(exec.exhausted(), Some(BudgetKind::Memory));
    }

    #[test]
    fn exhaustion_is_sticky() {
        let exec = Exec::new(Budget::new().with_max_nodes(1));
        assert!(exec.tick_node());
        assert!(!exec.tick_node());
        assert!(!exec.tick());
        assert!(!exec.poll());
        assert!(!exec.tick_rows(1));
    }

    #[test]
    fn outcome_map_preserves_flags() {
        let exec = Exec::new(Budget::new().with_max_nodes(1));
        exec.tick_node();
        exec.tick_node();
        let out = exec.finish(3u32).map(|x| x * 2);
        assert_eq!(out.result, 6);
        assert!(!out.complete);
        assert_eq!(out.exhausted, Some(BudgetKind::Nodes));
    }

    #[test]
    fn exec_is_sync_and_shareable() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Exec>();
        // Concurrent ticking from multiple threads aggregates counters.
        let exec = Exec::unbounded();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        assert!(exec.tick_node());
                    }
                });
            }
        });
        assert_eq!(exec.stats().nodes_visited, 4000);
    }

    #[test]
    fn reserve_nodes_grants_exact_prefix() {
        let exec = Exec::new(Budget::new().with_max_nodes(10));
        assert_eq!(exec.try_reserve_nodes(4), 4);
        assert!(exec.is_live());
        assert_eq!(exec.try_reserve_nodes(8), 6);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Nodes));
        assert_eq!(exec.try_reserve_nodes(1), 0);
    }

    #[test]
    fn reserve_rows_matches_serial_tick_semantics() {
        // Serial: with max_rows = 100, ticking 30 rows at a time succeeds
        // 3 times then fails. Reservation grants 100 across batches.
        let exec = Exec::new(Budget::new().with_max_rows(100));
        assert_eq!(exec.try_reserve_rows(30), 30);
        assert_eq!(exec.try_reserve_rows(30), 30);
        assert_eq!(exec.try_reserve_rows(30), 30);
        assert_eq!(exec.try_reserve_rows(30), 10);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Rows));
    }

    #[test]
    fn reserve_unlimited_grants_all() {
        let exec = Exec::unbounded();
        assert_eq!(exec.try_reserve_nodes(1_000_000), 1_000_000);
        assert_eq!(exec.stats().nodes_visited, 1_000_000);
    }

    #[test]
    fn reserve_zero_after_cancellation() {
        let token = CancelToken::new();
        let exec = Exec::with_cancel(Budget::new(), token.clone());
        token.cancel();
        assert_eq!(exec.try_reserve_nodes(5), 0);
        assert_eq!(exec.exhausted(), Some(BudgetKind::Cancelled));
    }

    #[test]
    fn threads_knob_clamps_to_one() {
        let exec = Exec::unbounded().with_threads(0);
        assert_eq!(exec.threads(), 1);
        let exec = Exec::unbounded().with_threads(8);
        assert_eq!(exec.threads(), 8);
    }
}
