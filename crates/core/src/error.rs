//! Structured errors for the whole workspace.
//!
//! Library code never panics on malformed input, impossible configuration
//! or exhausted budgets — it returns a [`DeptreeError`] variant that the
//! CLI maps onto a distinct exit code (see `deptree --help`). The enum is
//! hand-rolled (no derive-macro dependency) to keep the workspace building
//! offline.

use crate::engine::BudgetKind;
use deptree_relation::{CsvError, RelationError};
use std::fmt;

/// Result alias used by fallible library entry points.
pub type Result<T> = std::result::Result<T, DeptreeError>;

/// Every failure mode a pipeline stage can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeptreeError {
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
    /// Input text could not be parsed (CSV, rule syntax, …).
    Parse(String),
    /// A relation-level invariant was violated (arity, attribute count).
    Relation(RelationError),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A notation name is not in the family-tree registry.
    UnknownNotation(String),
    /// A resource budget was exhausted and the caller required a complete
    /// answer. (Anytime entry points return `Outcome` instead of this.)
    BudgetExhausted(BudgetKind),
    /// The run was cancelled by the caller.
    Cancelled,
    /// A requested feature or combination is not supported.
    Unsupported(String),
}

impl fmt::Display for DeptreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeptreeError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            DeptreeError::Parse(m) => write!(f, "parse error: {m}"),
            DeptreeError::Relation(e) => write!(f, "relation error: {e}"),
            DeptreeError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            DeptreeError::UnknownNotation(n) => write!(f, "unknown notation: {n}"),
            DeptreeError::BudgetExhausted(k) => write!(f, "budget exhausted: {k}"),
            DeptreeError::Cancelled => write!(f, "cancelled"),
            DeptreeError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DeptreeError {}

impl From<RelationError> for DeptreeError {
    fn from(e: RelationError) -> Self {
        DeptreeError::Relation(e)
    }
}

impl From<CsvError> for DeptreeError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Relation(e) => DeptreeError::Relation(e),
            other => DeptreeError::Parse(other.to_string()),
        }
    }
}

impl DeptreeError {
    /// The process exit code the CLI uses for this error class. Success
    /// is 0; 1 is reserved for unclassified failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            DeptreeError::Io { .. } => 2,
            DeptreeError::Parse(_) => 3,
            DeptreeError::Relation(_) => 4,
            DeptreeError::InvalidConfig(_) | DeptreeError::UnknownNotation(_) => 5,
            DeptreeError::BudgetExhausted(_) => 6,
            DeptreeError::Cancelled => 7,
            DeptreeError::Unsupported(_) => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let errs = [
            DeptreeError::Io {
                path: "x".into(),
                message: "gone".into(),
            },
            DeptreeError::Parse("bad".into()),
            DeptreeError::Relation(RelationError::ArityMismatch {
                expected: 2,
                got: 3,
            }),
            DeptreeError::InvalidConfig("x".into()),
            DeptreeError::BudgetExhausted(BudgetKind::Deadline),
            DeptreeError::Cancelled,
            DeptreeError::Unsupported("x".into()),
        ];
        let codes: std::collections::BTreeSet<u8> = errs.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes.len(), errs.len());
        assert!(!codes.contains(&0) && !codes.contains(&1));
    }

    #[test]
    fn display_is_informative() {
        let e = DeptreeError::BudgetExhausted(BudgetKind::Deadline);
        assert_eq!(e.to_string(), "budget exhausted: deadline");
        let e = DeptreeError::UnknownNotation("XYZ".into());
        assert!(e.to_string().contains("XYZ"));
    }
}
