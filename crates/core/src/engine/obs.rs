//! Observability: a std-only metrics registry and span tracer.
//!
//! Four PRs of engine work left the system fast but silent: the partition
//! cache counts hits nobody reads, the pool steals work nobody sees, and
//! the serve daemon sheds load it never counts. This module is the one
//! place all of that surfaces, under two hard constraints:
//!
//! * **No dependencies.** Counters, gauges and fixed-bucket histograms
//!   are plain atomics; the Prometheus text exposition is hand-rendered.
//! * **Observation only.** Nothing here may influence results. Metrics
//!   are written with relaxed atomics off the decision path, and span
//!   recording happens at phase boundaries — the property suite asserts
//!   byte-identical reports with tracing on and off, at every thread
//!   count.
//!
//! The hot path is lock-free: a handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) is an `Arc` around atomics, resolved once at
//! registration and cloned into whatever needs it (an [`super::Exec`],
//! a server loop). The registry's mutex is touched only at registration
//! and render time.
//!
//! Spans are the per-run complement: a [`Tracer`] (attached to an
//! [`super::Exec`] via [`super::Exec::with_tracer`]) accumulates named,
//! microsecond-resolution [`Span`]s which serialize to JSONL for the
//! `--trace-out` flag. A run without a tracer pays one branch per span
//! site.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use super::BudgetKind;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bucket bounds are upper bounds (`le`); an
/// implicit `+Inf` bucket catches the tail. Observations also feed a sum
/// (kept in integer microseconds so it stays a lock-free atomic — callers
/// observe seconds, as Prometheus latency conventions expect) and a count.
#[derive(Debug)]
pub struct Histogram {
    uppers: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_micros: AtomicU64,
    total: AtomicU64,
}

/// Default latency buckets in seconds, spanning sub-millisecond cache
/// hits to the 10 s default request deadline.
pub const LATENCY_BUCKETS: &[f64] = &[0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 5.0, 10.0];

impl Histogram {
    fn new(uppers: &[f64]) -> Self {
        Histogram {
            uppers: uppers.to_vec(),
            counts: (0..=uppers.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .uppers
            .iter()
            .position(|&u| v <= u)
            .unwrap_or(self.uppers.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        if v > 0.0 {
            self.sum_micros
                .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        }
    }

    /// Record a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A registry of labeled metric families rendering to Prometheus text
/// exposition format. Registration interns on `(name, labels)`: asking
/// for the same series twice returns the same handle, so call sites
/// never need to coordinate. The internal mutex guards registration and
/// rendering only — never the increments themselves.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`registry`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Family>> {
        // Registration and rendering never panic while holding the lock;
        // recover the data regardless so metrics can't wedge a server.
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series_slot<'a>(
        families: &'a mut Vec<Family>,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> (&'a mut Family, Option<usize>, Vec<(String, String)>) {
        let fi = match families.iter().position(|f| f.name == name) {
            Some(i) => i,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                families.len() - 1
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let si = families[fi].series.iter().position(|s| s.labels == labels);
        (&mut families[fi], si, labels)
    }

    /// Get or register a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut fams = self.lock();
        let (fam, slot, labels) = Self::series_slot(&mut fams, name, help, labels);
        if let Some(i) = slot {
            if let Metric::Counter(c) = &fam.series[i].metric {
                return c.clone();
            }
            // Kind clash: hand back a detached handle rather than corrupt
            // the exposition (observation must never panic a run).
            return Arc::new(Counter::default());
        }
        let c = Arc::new(Counter::default());
        fam.series.push(Series {
            labels,
            metric: Metric::Counter(c.clone()),
        });
        c
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut fams = self.lock();
        let (fam, slot, labels) = Self::series_slot(&mut fams, name, help, labels);
        if let Some(i) = slot {
            if let Metric::Gauge(g) = &fam.series[i].metric {
                return g.clone();
            }
            return Arc::new(Gauge::default());
        }
        let g = Arc::new(Gauge::default());
        fam.series.push(Series {
            labels,
            metric: Metric::Gauge(g.clone()),
        });
        g
    }

    /// Get or register a histogram series with the given bucket upper
    /// bounds (ascending; `+Inf` is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        uppers: &[f64],
    ) -> Arc<Histogram> {
        let mut fams = self.lock();
        let (fam, slot, labels) = Self::series_slot(&mut fams, name, help, labels);
        if let Some(i) = slot {
            if let Metric::Histogram(h) = &fam.series[i].metric {
                return h.clone();
            }
            return Arc::new(Histogram::new(uppers));
        }
        let h = Arc::new(Histogram::new(uppers));
        fam.series.push(Series {
            labels,
            metric: Metric::Histogram(h.clone()),
        });
        h
    }

    /// Render every registered family in Prometheus text exposition
    /// format (version 0.0.4). Families and series appear in
    /// registration order, so consecutive scrapes are diffable.
    pub fn render(&self) -> String {
        let fams = self.lock();
        let mut out = String::new();
        for fam in fams.iter() {
            let Some(first) = fam.series.first() else {
                continue;
            };
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, first.metric.type_name());
            for s in &fam.series {
                match &s.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            c.get()
                        );
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            g.get()
                        );
                    }
                    Metric::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, upper) in h.uppers.iter().enumerate() {
                            cum += h.counts[i].load(Ordering::Relaxed);
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                fam.name,
                                label_block(&s.labels, Some(&format!("{upper}"))),
                                cum
                            );
                        }
                        cum += h.counts[h.uppers.len()].load(Ordering::Relaxed);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            fam.name,
                            label_block(&s.labels, Some("+Inf")),
                            cum
                        );
                        let sum = h.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            sum
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and line feed.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text: backslash and line feed only.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The process-wide registry. Everything in the workspace registers
/// here, so one render covers engine, cache and server series alike.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

fn kind_label(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::Deadline => "deadline",
        BudgetKind::Nodes => "nodes",
        BudgetKind::Rows => "rows",
        BudgetKind::Memory => "memory",
        BudgetKind::Cancelled => "cancelled",
    }
}

/// Pre-registered handles for the engine-side series: partition-cache
/// traffic, pool scheduling, pair-generation pruning and per-kind budget
/// exhaustions. Resolved once via [`engine_metrics`]; all increments are
/// single relaxed atomic adds.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Partition-cache lookups served from cache.
    pub cache_hits: Arc<Counter>,
    /// Partition-cache lookups that had to compute.
    pub cache_misses: Arc<Counter>,
    /// Partitions evicted by the cache's LRU capacity enforcement.
    pub cache_evictions: Arc<Counter>,
    /// Bytes of partition state inserted into the cache.
    pub cache_inserted_bytes: Arc<Counter>,
    /// Bytes of partition state evicted from the cache.
    pub cache_evicted_bytes: Arc<Counter>,
    /// Parallel batches dispatched through `pool::map`.
    pub pool_batches: Arc<Counter>,
    /// Items evaluated across all pool batches.
    pub pool_items: Arc<Counter>,
    /// Work-stealing events (a worker raided a sibling's deque).
    pub pool_steals: Arc<Counter>,
    /// Seeded per-worker queue depth of the most recent pool batch.
    pub pool_queue_depth: Arc<Gauge>,
    /// Candidate-pair index blocks enumerated.
    pub pairgen_blocks: Arc<Counter>,
    /// Candidate pairs emitted by indexes (post-blocking).
    pub pairgen_candidate_pairs: Arc<Counter>,
    /// Pairs pruned relative to the naive all-pairs scan.
    pub pairgen_pruned_pairs: Arc<Counter>,
    /// Partition products computed by the radix (counting-sort) kernel.
    pub partition_product_radix: Arc<Counter>,
    /// Partition products computed by the probe-table hash fallback.
    pub partition_product_hash: Arc<Counter>,
    /// Rows whose q-gram indexing reused an already-indexed distinct
    /// dictionary entry (distinct-value edit builds).
    pub pairgen_distinct_gram_hits: Arc<Counter>,
    budget_exhausted: [Arc<Counter>; 5],
}

impl EngineMetrics {
    fn new(reg: &Registry) -> Self {
        let exhausted = |kind: BudgetKind| {
            reg.counter(
                "deptree_budget_exhausted_total",
                "Bounded runs stopped early, by binding budget kind.",
                &[("kind", kind_label(kind))],
            )
        };
        EngineMetrics {
            cache_hits: reg.counter(
                "deptree_cache_hits_total",
                "Partition-cache lookups served from cache.",
                &[],
            ),
            cache_misses: reg.counter(
                "deptree_cache_misses_total",
                "Partition-cache lookups that computed a fresh partition.",
                &[],
            ),
            cache_evictions: reg.counter(
                "deptree_cache_evictions_total",
                "Partitions evicted by the cache's LRU capacity enforcement.",
                &[],
            ),
            cache_inserted_bytes: reg.counter(
                "deptree_cache_inserted_bytes_total",
                "Bytes of partition state inserted into the cache.",
                &[],
            ),
            cache_evicted_bytes: reg.counter(
                "deptree_cache_evicted_bytes_total",
                "Bytes of partition state evicted from the cache.",
                &[],
            ),
            pool_batches: reg.counter(
                "deptree_pool_batches_total",
                "Parallel batches dispatched through the work-stealing pool.",
                &[],
            ),
            pool_items: reg.counter(
                "deptree_pool_items_total",
                "Items evaluated across all pool batches.",
                &[],
            ),
            pool_steals: reg.counter(
                "deptree_pool_steals_total",
                "Work-stealing events between pool workers.",
                &[],
            ),
            pool_queue_depth: reg.gauge(
                "deptree_pool_queue_depth",
                "Seeded per-worker queue depth of the most recent pool batch.",
                &[],
            ),
            pairgen_blocks: reg.counter(
                "deptree_pairgen_blocks_total",
                "Candidate-pair index blocks enumerated.",
                &[],
            ),
            pairgen_candidate_pairs: reg.counter(
                "deptree_pairgen_candidate_pairs_total",
                "Candidate pairs emitted by pair indexes after blocking.",
                &[],
            ),
            pairgen_pruned_pairs: reg.counter(
                "deptree_pairgen_pruned_pairs_total",
                "Pairs skipped relative to the naive all-pairs scan.",
                &[],
            ),
            partition_product_radix: reg.counter(
                "deptree_partition_product_radix_total",
                "Partition products computed by the radix (counting-sort) kernel.",
                &[],
            ),
            partition_product_hash: reg.counter(
                "deptree_partition_product_hash_total",
                "Partition products computed by the probe-table hash fallback.",
                &[],
            ),
            pairgen_distinct_gram_hits: reg.counter(
                "deptree_pairgen_distinct_gram_hits_total",
                "Rows whose q-gram indexing reused an already-indexed distinct dictionary entry.",
                &[],
            ),
            budget_exhausted: [
                exhausted(BudgetKind::Deadline),
                exhausted(BudgetKind::Nodes),
                exhausted(BudgetKind::Rows),
                exhausted(BudgetKind::Memory),
                exhausted(BudgetKind::Cancelled),
            ],
        }
    }

    /// The exhaustion counter for one budget kind.
    pub fn budget_exhausted(&self, kind: BudgetKind) -> &Counter {
        let idx = match kind {
            BudgetKind::Deadline => 0,
            BudgetKind::Nodes => 1,
            BudgetKind::Rows => 2,
            BudgetKind::Memory => 3,
            BudgetKind::Cancelled => 4,
        };
        &self.budget_exhausted[idx]
    }
}

/// The engine's pre-registered metric handles, registered in the global
/// [`registry`] on first use.
pub fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics::new(registry()))
}

/// One recorded span: a named phase with microsecond start offset (from
/// tracer creation) and duration, plus numeric attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name, dotted (`"tane.level"`, `"profile.fastdc"`).
    pub name: String,
    /// Microseconds from tracer creation to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Numeric attributes (`("level", 3)`, `("granted", 128)`).
    pub attrs: Vec<(&'static str, u64)>,
}

/// A per-run span accumulator. Attach to an [`super::Exec`] with
/// [`super::Exec::with_tracer`]; open spans with [`super::Exec::span`].
/// Recording happens on guard drop under a mutex — spans mark phase
/// boundaries, not per-node events, so contention is nil.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer whose span offsets count from now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, name: &str, started: Instant, dur: Duration, attrs: Vec<(&'static str, u64)>) {
        let start_us = started
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_micros() as u64;
        let span = Span {
            name: name.to_string(),
            start_us,
            dur_us: dur.as_micros() as u64,
            attrs,
        };
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(span);
    }

    /// Snapshot the recorded spans, ordered by start offset (ties by
    /// name) so output is stable regardless of which thread finished a
    /// span first.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        spans.sort_by(|a, b| (a.start_us, &a.name).cmp(&(b.start_us, &b.name)));
        spans
    }

    /// Serialize the recorded spans as JSON Lines: one object per span
    /// with `name`, `start_us`, `dur_us` and the attributes inlined.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
                escape_json(&s.name),
                s.start_us,
                s.dur_us
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, ",\"{}\":{}", escape_json(k), v);
            }
            out.push_str("}\n");
        }
        out
    }
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// RAII span: created by [`super::Exec::span`], records itself into the
/// tracer on drop. When the run has no tracer every method is a no-op —
/// span sites cost one branch.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    name: &'static str,
    started: Instant,
    attrs: Vec<(&'static str, u64)>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn new(tracer: Option<&'a Tracer>, name: &'static str) -> Self {
        SpanGuard {
            tracer,
            name,
            started: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Attach a numeric attribute to the span.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.tracer.is_some() {
            self.attrs.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.record(
                self.name,
                self.started,
                self.started.elapsed(),
                std::mem::take(&mut self.attrs),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "help", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("t_gauge", "help", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn interning_returns_the_same_series() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "help", &[("route", "/v1/task")]);
        let b = reg.counter("x_total", "help", &[("route", "/v1/task")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // A different label set is a different series.
        let c = reg.counter("x_total", "help", &[("route", "/metrics")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        let c = reg.counter("esc_total", "with \\ and\nnewline", &[("v", "a\"b\\c\nd")]);
        c.inc();
        let text = reg.render();
        assert!(
            text.contains(r#"esc_total{v="a\"b\\c\nd"} 1"#),
            "label escaping wrong in: {text}"
        );
        assert!(
            text.contains("# HELP esc_total with \\\\ and\\nnewline"),
            "help escaping wrong in: {text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "help", &[], &[0.1, 1.0, 5.0]);
        for v in [0.05, 0.05, 0.5, 2.0, 100.0] {
            h.observe(v);
        }
        let text = reg.render();
        assert!(text.contains(r#"lat_seconds_bucket{le="0.1"} 2"#), "{text}");
        assert!(text.contains(r#"lat_seconds_bucket{le="1"} 3"#), "{text}");
        assert!(text.contains(r#"lat_seconds_bucket{le="5"} 4"#), "{text}");
        assert!(
            text.contains(r#"lat_seconds_bucket{le="+Inf"} 5"#),
            "{text}"
        );
        assert!(text.contains("lat_seconds_count 5"), "{text}");
        // Cumulativity as an invariant: each bucket ≥ its predecessor and
        // +Inf equals the count.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse().ok())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), h.count());
    }

    #[test]
    fn counters_are_monotonic_across_scrapes() {
        let reg = Registry::new();
        let c = reg.counter("mono_total", "help", &[]);
        let value = |text: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with("mono_total "))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        c.add(3);
        let first = value(&reg.render());
        // Rendering must not reset anything.
        let second = value(&reg.render());
        c.add(2);
        let third = value(&reg.render());
        assert_eq!(first, 3);
        assert_eq!(second, 3);
        assert_eq!(third, 5);
    }

    #[test]
    fn render_orders_families_by_registration() {
        let reg = Registry::new();
        reg.counter("b_total", "second", &[]).inc();
        reg.counter("a_total", "first — registered later", &[])
            .inc();
        let text = reg.render();
        let b = text.find("b_total").unwrap();
        let a = text.find("a_total").unwrap();
        assert!(b < a, "registration order must be preserved: {text}");
    }

    #[test]
    fn engine_metrics_register_once() {
        let m1 = engine_metrics();
        let m2 = engine_metrics();
        let before = m1.cache_hits.get();
        m2.cache_hits.inc();
        assert_eq!(m1.cache_hits.get(), before + 1);
        let text = registry().render();
        assert!(text.contains("deptree_cache_hits_total"));
        assert!(text.contains(r#"deptree_budget_exhausted_total{kind="deadline"}"#));
    }

    #[test]
    fn tracer_records_and_serializes_spans() {
        let tracer = Tracer::new();
        {
            let mut g = SpanGuard::new(Some(&tracer), "phase.one");
            g.attr("items", 42);
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let _g = SpanGuard::new(Some(&tracer), "phase.two");
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "phase.one");
        assert!(spans[0].dur_us >= 1000, "slept 1ms: {:?}", spans[0]);
        assert_eq!(spans[0].attrs, vec![("items", 42)]);
        let jsonl = tracer.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"phase.one\","), "{jsonl}");
        assert!(lines[0].contains("\"items\":42"), "{jsonl}");
        assert!(lines.iter().all(|l| l.ends_with('}')), "{jsonl}");
    }

    #[test]
    fn spanless_guard_is_a_no_op() {
        let mut g = SpanGuard::new(None, "ignored");
        g.attr("k", 1);
        drop(g);
    }
}
