//! Minimal POSIX signal plumbing, vendored so no `libc` crate is needed.
//!
//! The handler itself does the only thing an async-signal-safe handler
//! may do: bump an atomic counter. Everything with consequences —
//! cancelling a [`CancelToken`], starting a server drain, force-exiting —
//! happens on ordinary threads that *poll* the counter. That split is
//! what makes the same primitive serve both the CLI (Ctrl-C → sound
//! partial + exit 7) and the daemon (SIGTERM → graceful drain → exit 0).
//!
//! On non-Unix targets the module compiles to a no-op: [`install`]
//! reports `false` and the counter never moves.

use super::CancelToken;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// `SIGHUP` (reload request; the gateway maps it to a rolling restart).
pub const SIGHUP: i32 = 1;
/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGKILL` (unblockable kill; the chaos harness uses it for crashes).
pub const SIGKILL: i32 = 9;
/// `SIGTERM` (polite kill; what orchestrators send first).
pub const SIGTERM: i32 = 15;
/// `SIGCONT` (resume a stopped process; ends a chaos `Slow` window).
pub const SIGCONT: i32 = 18;
/// `SIGSTOP` (unblockable stop; the chaos harness wedges workers with it).
pub const SIGSTOP: i32 = 19;

/// Signals observed since [`install`]. Monotonic; never reset.
static RECEIVED: AtomicU32 = AtomicU32::new(0);

/// `SIGHUP`s observed since [`install_hup`]. Counted separately from
/// [`RECEIVED`] because a reload request must never be mistaken for a
/// shutdown request.
static HUP_RECEIVED: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. The C library is already linked on every Unix
    /// Rust target, so declaring the symbol costs no new dependency.
    fn signal(signum: i32, handler: usize) -> usize;
    /// POSIX `kill(2)`, for supervising child processes.
    fn kill(pid: i32, sig: i32) -> i32;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed atomic increment, nothing else.
    RECEIVED.fetch_add(1, Ordering::Relaxed);
}

/// Install the counting handler for `SIGINT` and `SIGTERM`. Idempotent.
/// Returns `false` where signals are unsupported (non-Unix).
pub fn install() -> bool {
    #[cfg(unix)]
    {
        // SAFETY: `on_signal` is async-signal-safe (single atomic store)
        // and `signal` is the documented way to register it; the cast to
        // usize matches the `sighandler_t` ABI on every supported Unix.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// How many `SIGINT`/`SIGTERM` arrived since [`install`].
pub fn received() -> u32 {
    RECEIVED.load(Ordering::Relaxed)
}

#[cfg(unix)]
extern "C" fn on_hup(_signum: i32) {
    // Async-signal-safe: one relaxed atomic increment, nothing else.
    HUP_RECEIVED.fetch_add(1, Ordering::Relaxed);
}

/// Install a counting handler for `SIGHUP` only. Idempotent. Returns
/// `false` where signals are unsupported (non-Unix). Without this, a
/// `SIGHUP` kills the process with the default action — daemons that
/// want "HUP means reload" must opt in.
pub fn install_hup() -> bool {
    #[cfg(unix)]
    {
        // SAFETY: same contract as `install` — the handler is a single
        // atomic increment and the cast matches `sighandler_t`.
        let handler = on_hup as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGHUP, handler);
        }
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// How many `SIGHUP`s arrived since [`install_hup`].
pub fn hup_received() -> u32 {
    HUP_RECEIVED.load(Ordering::Relaxed)
}

/// How often the watcher thread re-checks the signal counter.
const POLL: Duration = Duration::from_millis(25);

/// Install the handler and spawn a watcher that cancels `token` on the
/// first signal — the bounded search winds down and the caller prints
/// its sound partial — and force-exits with `130` on the second, for
/// when the wind-down itself is what the operator wants to kill.
pub fn cancel_on_signal(token: CancelToken) {
    if !install() {
        return;
    }
    let spawned = std::thread::Builder::new()
        .name("deptree-signal".to_owned())
        .spawn(move || loop {
            match received() {
                0 => {}
                1 => token.cancel(),
                _ => std::process::exit(130),
            }
            std::thread::sleep(POLL);
        });
    // A failed spawn only loses Ctrl-C responsiveness, never correctness.
    drop(spawned);
}

/// Deliver `sig` to process `pid` (POSIX `kill(2)`). Returns `false`
/// when the delivery failed or signals are unsupported on this target.
/// The supervisor uses this with [`SIGTERM`] to ask a child to drain.
pub fn send(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: plain kill(2) call; pid/sig are data, no pointers.
        unsafe { kill(pid, sig) == 0 }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// How often [`reap_with_grace`] polls the child for exit.
const REAP_POLL: Duration = Duration::from_millis(10);

/// What [`reap_with_grace_report`] had to do to bring the child down.
#[derive(Debug, Clone, Copy)]
pub struct ReapOutcome {
    /// The collected exit status, when one could be collected.
    pub status: Option<std::process::ExitStatus>,
    /// `true` when the grace expired and the child had to be
    /// `SIGKILL`ed — the polite drain did not finish in time.
    pub forced: bool,
}

/// Stop a child process politely, then firmly: send `SIGTERM`, wait up
/// to `grace` for it to exit on its own, then `SIGKILL` and wait. The
/// final blocking `wait` guarantees the child is reaped (no zombie)
/// whichever path it took. Returns the exit status when one was
/// collected.
pub fn reap_with_grace(
    child: &mut std::process::Child,
    grace: Duration,
) -> Option<std::process::ExitStatus> {
    reap_with_grace_report(child, grace).status
}

/// [`reap_with_grace`], but also report whether the deadline forced a
/// `SIGKILL`. Supervisors draining a fleet under one shared deadline
/// use the flag to leave an audit trail for every child that refused
/// the polite path.
pub fn reap_with_grace_report(child: &mut std::process::Child, grace: Duration) -> ReapOutcome {
    send(child.id(), SIGTERM);
    let deadline = std::time::Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                return ReapOutcome {
                    status: Some(status),
                    forced: false,
                }
            }
            Ok(None) => {}
            Err(_) => break,
        }
        if std::time::Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(REAP_POLL);
    }
    // Grace expired (or try_wait errored): force it down and reap.
    let _ = child.kill();
    ReapOutcome {
        status: child.wait().ok(),
        forced: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_succeeds_on_unix() {
        assert_eq!(install(), cfg!(unix));
    }

    #[test]
    fn counter_starts_quiet() {
        // The test process receives no signals; the counter must not
        // invent any. (Raising a real signal here would race the other
        // tests in this binary, so delivery is exercised end-to-end by
        // the serve fault suite instead.)
        install();
        assert_eq!(received(), 0);
    }

    #[test]
    #[cfg(unix)]
    fn reap_terminates_a_sleeping_child_within_grace() {
        let mut child = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let started = std::time::Instant::now();
        let status = reap_with_grace(&mut child, Duration::from_secs(5));
        // `sleep` dies to the SIGTERM long before the grace expires, and
        // the exit status reflects the signal, not success.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(!status.unwrap().success());
        // Already-reaped: a second wait errors rather than blocking,
        // proving the child is gone from the process table.
        assert!(child.try_wait().is_err() || child.try_wait().unwrap().is_some());
    }

    #[test]
    #[cfg(unix)]
    fn reap_collects_an_already_dead_child() {
        let mut child = std::process::Command::new("true").spawn().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let status = reap_with_grace(&mut child, Duration::from_secs(1));
        assert!(status.unwrap().success());
    }

    #[test]
    fn hup_handler_installs_and_counter_starts_quiet() {
        assert_eq!(install_hup(), cfg!(unix));
        assert_eq!(hup_received(), 0);
    }

    #[test]
    #[cfg(unix)]
    fn reap_report_flags_a_forced_kill() {
        // `sh` ignoring TERM cannot drain politely; the deadline must
        // force it and say so.
        let mut stubborn = std::process::Command::new("sh")
            .args(["-c", "trap '' TERM; sleep 30"])
            .spawn()
            .unwrap();
        // Give the shell a moment to install its trap, otherwise the
        // TERM lands before the trap and the exit is polite.
        std::thread::sleep(Duration::from_millis(200));
        let outcome = reap_with_grace_report(&mut stubborn, Duration::from_millis(300));
        assert!(outcome.forced);
        assert!(!outcome.status.unwrap().success());

        // A cooperative child reports an unforced reap.
        let mut polite = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .unwrap();
        let outcome = reap_with_grace_report(&mut polite, Duration::from_secs(5));
        assert!(!outcome.forced);
    }

    #[test]
    fn send_to_a_bogus_pid_reports_failure() {
        // PID 0xFFFF_FFFF cannot be a real process (and on non-Unix the
        // helper is a stub); either way the call must say "no".
        assert!(!send(u32::MAX, SIGTERM));
    }
}
