//! A small scoped work-stealing thread pool for parallel discovery.
//!
//! Level-wise lattice miners produce batches of independent candidate
//! checks (one per lattice node) whose costs vary wildly — a partition
//! product over a near-key node is orders of magnitude cheaper than one
//! over a low-cardinality node. Static chunking would leave workers idle
//! behind the slowest chunk, so each worker owns a deque of candidate
//! indices and **steals the back half** of a victim's deque when its own
//! runs dry — the classic work-stealing discipline, scoped to one call so
//! the pool borrows the caller's data without `'static` bounds or any
//! non-std dependency.
//!
//! Determinism: [`map`] always returns results **in input order**
//! regardless of which worker evaluated which item, so parallel miners
//! can merge candidate verdicts exactly as their serial loops would.
//!
//! Budget integration happens one level up: miners reserve node/row
//! budget for a whole batch (see [`super::Exec::try_reserve_nodes`])
//! before dispatching it here, which keeps the anytime prefix identical
//! at every thread count. Worker closures are free to poll the shared
//! [`super::Exec`] for deadline/cancellation liveness — it is `Sync`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::obs;

/// Evaluate `f` over `items` with up to `threads` workers, returning the
/// results in input order. With `threads <= 1` (or fewer than two items)
/// this degenerates to a plain serial loop with zero threading overhead,
/// so callers can use one code path for both modes.
///
/// Panics in `f` are propagated to the caller after all workers stop
/// (the standard scoped-thread contract).
///
/// ```
/// use deptree_core::engine::pool;
/// let squares = pool::map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let m = obs::engine_metrics();
    m.pool_batches.inc();
    m.pool_items.add(n as u64);
    m.pool_queue_depth.set(n.div_ceil(workers) as i64);

    // Each worker starts with a contiguous block of indices (cache-friendly
    // and deterministic); imbalance is corrected by stealing at runtime.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((n * w / workers..n * (w + 1) / workers).collect()))
        .collect();

    let steals = AtomicU64::new(0);
    let mut partials: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let queues = &queues;
        let f = &f;
        let steals = &steals;
        let handles: Vec<_> = (1..workers)
            .map(|w| s.spawn(move || run_worker(w, queues, steals, items, f)))
            .collect();
        // The calling thread is worker 0 — no thread is left idle waiting.
        partials.push(run_worker(0, queues, steals, items, f));
        for h in handles {
            match h.join() {
                Ok(part) => partials.push(part),
                Err(payload) => panicked = Some(payload),
            }
        }
    });
    m.pool_steals.add(steals.load(Ordering::Relaxed));
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in partials.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(r) => r,
            // Every index lives in exactly one deque until claimed and is
            // then evaluated by its claimant; a hole is impossible unless
            // a worker panicked, which was re-raised above.
            None => unreachable!("work-stealing pool lost an item"),
        })
        .collect()
}

fn run_worker<T, R, F>(
    me: usize,
    queues: &[Mutex<VecDeque<usize>>],
    steals: &AtomicU64,
    items: &[T],
    f: &F,
) -> Vec<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::new();
    while let Some(i) = next_index(me, queues, steals) {
        out.push((i, f(i, &items[i])));
    }
    out
}

/// Pop from our own deque, or steal the back half of the fullest-available
/// victim's. `None` once every deque is empty (remaining in-flight items
/// are owned by the workers that claimed them). Each successful raid bumps
/// `steals`, published to the metrics registry when the batch completes.
fn next_index(me: usize, queues: &[Mutex<VecDeque<usize>>], steals: &AtomicU64) -> Option<usize> {
    if let Some(i) = lock(&queues[me]).pop_front() {
        return Some(i);
    }
    let workers = queues.len();
    for off in 1..workers {
        let victim = (me + off) % workers;
        let mut q = lock(&queues[victim]);
        let len = q.len();
        if len == 0 {
            continue;
        }
        let take = len.div_ceil(2);
        let mut stolen = q.split_off(len - take);
        drop(q);
        steals.fetch_add(1, Ordering::Relaxed);
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            lock(&queues[me]).append(&mut stolen);
        }
        return first;
    }
    None
}

/// Locks are held only for deque surgery, never across `f`, so poisoning
/// can only come from a panicking sibling — in which case the queue state
/// is still consistent and draining it remains correct.
fn lock<'a>(m: &'a Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'a, VecDeque<usize>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_evaluated_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..257).collect();
        map(8, &items, |_, &x| counts[x].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // Front-loaded costs: worker 0's block is by far the slowest, so
        // with stealing the others must pick up its tail. We can't observe
        // scheduling directly; assert correctness under the imbalance.
        let items: Vec<u64> = (0..64).map(|i| if i < 8 { 200 } else { 1 }).collect();
        let out = map(4, &items, |_, &cost| {
            let mut acc = 0u64;
            for i in 0..cost * 1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            map(4, &items, |_, &x| {
                assert!(x != 50, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
