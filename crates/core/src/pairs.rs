//! Engine-wired candidate-pair scanning.
//!
//! Bridges `relation::pairgen` generators with the execution engine: derive
//! [`PairSpec`]s from metric atoms, pick the most selective index, count
//! matching pairs analytically when possible, and — for enumeration — scan
//! index blocks through `pool::map` with a serial in-order merge so results
//! are identical at any thread count, honouring `Exec::interrupted()`
//! between blocks for anytime soundness.

use deptree_metrics::Metric;
use deptree_relation::pairgen::{self, PairIndex, PairSpec};
use deptree_relation::{AttrId, Relation};

use crate::engine::{obs, pool, Exec};

/// A similarity atom `dist_metric(t[A], u[A]) ≤ threshold`, the shared LHS
/// shape of MDs and NEDs.
pub type MetricAtom = (AttrId, Metric, f64);

/// Derive the candidate-generation spec of each atom.
pub fn atom_specs(atoms: &[MetricAtom]) -> Vec<(AttrId, PairSpec)> {
    atoms
        .iter()
        .map(|(a, m, t)| (*a, m.pair_spec(*t)))
        .collect()
}

/// Exact number of unordered row pairs satisfying *all* atoms, when the
/// conjunction is countable (equality atoms plus at most one numeric band);
/// `None` means fall back to enumerate-and-verify.
pub fn count_matching(r: &Relation, atoms: &[MetricAtom]) -> Option<u64> {
    pairgen::count_pairs(r, &atom_specs(atoms))
}

/// Like [`count_matching`], but additionally requiring structural agreement
/// on `agree` (used for MD confidence: matched ∧ identified).
pub fn count_matching_agreeing(
    r: &Relation,
    atoms: &[MetricAtom],
    agree: deptree_relation::AttrSet,
) -> Option<u64> {
    let mut specs = atom_specs(atoms);
    for a in agree.iter() {
        specs.push((a, PairSpec::Eq));
    }
    pairgen::count_pairs(r, &specs)
}

/// The most selective single-atom index for a conjunction of metric atoms
/// (full scan when nothing is indexable).  Candidates are a superset of the
/// pairs satisfying the whole conjunction.
///
/// Every index built publishes its pruning power to the global metrics
/// registry: blocks, candidates emitted, and pairs skipped relative to the
/// naive n(n−1)/2 scan it replaces. Analytic, so later interruption of the
/// enumeration cannot skew the numbers.
pub fn best_index(r: &Relation, atoms: &[MetricAtom]) -> PairIndex {
    let idx = pairgen::best_index(r, &atom_specs(atoms));
    let candidates = idx.n_candidates();
    let n = idx.n_rows() as u64;
    let naive = n * n.saturating_sub(1) / 2;
    let m = obs::engine_metrics();
    m.pairgen_blocks.add(idx.n_blocks() as u64);
    m.pairgen_candidate_pairs.add(candidates);
    m.pairgen_pruned_pairs.add(naive.saturating_sub(candidates));
    m.pairgen_distinct_gram_hits.add(idx.distinct_gram_hits());
    idx
}

/// Scan an index's candidate pairs in parallel, keeping only those `verify`
/// accepts, and return them in the index's deterministic enumeration order.
///
/// Work is split by index block and distributed over `exec.threads()` via
/// `pool::map`; the merge is serial and in block order, so the output is a
/// pure function of the index and predicate — independent of thread count.
/// Workers check `Exec::interrupted()` (deadline / cancellation only) before
/// each block; on interruption the scan is truncated at the first unfinished
/// block and `complete = false` is returned.
pub fn collect_matching(
    exec: &Exec,
    index: &PairIndex,
    verify: impl Fn(usize, usize) -> bool + Sync,
) -> (Vec<(usize, usize)>, bool) {
    let blocks: Vec<usize> = (0..index.n_blocks()).collect();
    let mut span = exec.span("pairs.blocks");
    span.attr("blocks", blocks.len() as u64);
    span.attr("candidates", index.n_candidates());
    let per_block: Vec<Option<Vec<(usize, usize)>>> =
        pool::map(exec.threads(), &blocks, |_, &b| {
            if exec.interrupted() {
                return None;
            }
            let mut hits = Vec::new();
            index.for_each_in_block(b, &mut |i, j| {
                if verify(i, j) {
                    hits.push((i, j));
                }
                true
            });
            Some(hits)
        });
    let mut out = Vec::new();
    let mut complete = true;
    for hits in per_block {
        match hits {
            Some(mut h) => out.append(&mut h),
            None => {
                complete = false;
                break;
            }
        }
    }
    span.attr("matched", out.len() as u64);
    (out, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::{RelationBuilder, Value, ValueType};

    fn rel() -> Relation {
        let mut b = RelationBuilder::new()
            .attr("grp", ValueType::Categorical)
            .attr("x", ValueType::Numeric);
        for i in 0..60i64 {
            b = b.row(vec![Value::Str(format!("g{}", i % 6)), Value::int(i / 2)]);
        }
        b.build().expect("valid relation")
    }

    #[test]
    fn counting_matches_enumeration() {
        let r = rel();
        let g = r.schema().attr_id("grp").expect("grp");
        let x = r.schema().attr_id("x").expect("x");
        let atoms: Vec<MetricAtom> = vec![(g, Metric::Equality, 0.0), (x, Metric::AbsDiff, 3.0)];
        let counted = count_matching(&r, &atoms).expect("countable");
        let mut brute = 0u64;
        for (i, j) in r.row_pairs() {
            if atoms
                .iter()
                .all(|(a, m, t)| m.dist(r.value(i, *a), r.value(j, *a)) <= *t)
            {
                brute += 1;
            }
        }
        assert_eq!(counted, brute);
    }

    #[test]
    fn collect_matching_is_thread_independent_and_exact() {
        let r = rel();
        let g = r.schema().attr_id("grp").expect("grp");
        let x = r.schema().attr_id("x").expect("x");
        let atoms: Vec<MetricAtom> = vec![(g, Metric::Equality, 0.0), (x, Metric::AbsDiff, 2.0)];
        let idx = best_index(&r, &atoms);
        let verify = |i: usize, j: usize| {
            atoms
                .iter()
                .all(|(a, m, t)| m.dist(r.value(i, *a), r.value(j, *a)) <= *t)
        };
        let (serial, c1) = collect_matching(&Exec::unbounded().with_threads(1), &idx, verify);
        let (par, c8) = collect_matching(&Exec::unbounded().with_threads(8), &idx, verify);
        assert!(c1 && c8);
        assert_eq!(serial, par, "identical at any thread count");
        let mut sorted = serial.clone();
        sorted.sort_unstable();
        let brute: Vec<(usize, usize)> = r.row_pairs().filter(|&(i, j)| verify(i, j)).collect();
        assert_eq!(sorted, brute, "exactly the matching pairs");
    }
}
