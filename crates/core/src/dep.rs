//! The [`Dependency`] trait and violation reporting.

use deptree_relation::{AttrSet, Relation};
use std::fmt;

/// Identifies the notation a dependency belongs to — one variant per row of
/// the survey's Table 2 (plus FDs themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the notations; see `familytree`.
pub enum DepKind {
    Fd,
    Sfd,
    Pfd,
    Afd,
    Nud,
    Cfd,
    ECfd,
    Mvd,
    Fhd,
    Amvd,
    Mfd,
    Ned,
    Dd,
    Cdd,
    Cd,
    Pac,
    Ffd,
    Md,
    Cmd,
    Ofd,
    Od,
    Dc,
    Sd,
    Csd,
}

impl DepKind {
    /// Every notation, in the survey's Table 2 order.
    pub const ALL: [DepKind; 24] = [
        DepKind::Fd,
        DepKind::Sfd,
        DepKind::Pfd,
        DepKind::Afd,
        DepKind::Nud,
        DepKind::Cfd,
        DepKind::ECfd,
        DepKind::Mvd,
        DepKind::Fhd,
        DepKind::Amvd,
        DepKind::Mfd,
        DepKind::Ned,
        DepKind::Dd,
        DepKind::Cdd,
        DepKind::Cd,
        DepKind::Pac,
        DepKind::Ffd,
        DepKind::Md,
        DepKind::Cmd,
        DepKind::Ofd,
        DepKind::Od,
        DepKind::Dc,
        DepKind::Sd,
        DepKind::Csd,
    ];

    /// The conventional acronym ("FDs", "CFDs", …).
    pub fn acronym(self) -> &'static str {
        match self {
            DepKind::Fd => "FDs",
            DepKind::Sfd => "SFDs",
            DepKind::Pfd => "PFDs",
            DepKind::Afd => "AFDs",
            DepKind::Nud => "NUDs",
            DepKind::Cfd => "CFDs",
            DepKind::ECfd => "eCFDs",
            DepKind::Mvd => "MVDs",
            DepKind::Fhd => "FHDs",
            DepKind::Amvd => "AMVDs",
            DepKind::Mfd => "MFDs",
            DepKind::Ned => "NEDs",
            DepKind::Dd => "DDs",
            DepKind::Cdd => "CDDs",
            DepKind::Cd => "CDs",
            DepKind::Pac => "PACs",
            DepKind::Ffd => "FFDs",
            DepKind::Md => "MDs",
            DepKind::Cmd => "CMDs",
            DepKind::Ofd => "OFDs",
            DepKind::Od => "ODs",
            DepKind::Dc => "DCs",
            DepKind::Sd => "SDs",
            DepKind::Csd => "CSDs",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.acronym())
    }
}

/// A detected violation of a dependency in a relation instance.
///
/// Violations are *witnesses*: the smallest set of rows demonstrating the
/// problem (one row for constant-pattern rules, a pair for most equality /
/// similarity / order rules, and a pair whose required third tuple is
/// missing for tuple-generating MVDs/FHDs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rows involved, in increasing order.
    pub rows: Vec<usize>,
    /// Attributes on which the violation manifests (the cells a repair
    /// would need to touch).
    pub attrs: AttrSet,
}

impl Violation {
    /// Single-row violation.
    pub fn row(row: usize, attrs: AttrSet) -> Self {
        Violation {
            rows: vec![row],
            attrs,
        }
    }

    /// Row-pair violation (rows are stored sorted).
    pub fn pair(r1: usize, r2: usize, attrs: AttrSet) -> Self {
        let mut rows = vec![r1, r2];
        rows.sort_unstable();
        Violation { rows, attrs }
    }
}

/// Common interface of every dependency notation.
///
/// * [`holds`](Dependency::holds) — does the dependency hold in `r`?
///   For threshold-based notations (SFDs, PFDs, AFDs, PACs, AMVDs) this is
///   "does the measure meet the declared threshold", which is *not* the
///   same as "zero violations": an AFD with ε = 0.25 holds on a relation
///   where a quarter of the rows violate its embedded FD.
/// * [`violations`](Dependency::violations) — concrete witnesses of the
///   embedded exact rule, for data-quality applications (detection,
///   repair). For threshold-based notations these are the witnesses of the
///   *embedded* rule even when the thresholded dependency holds.
/// * [`count_violations`](Dependency::count_violations) — cheaper count,
///   overridden where witnesses would be expensive to materialize.
pub trait Dependency: fmt::Display {
    /// Which notation this rule belongs to.
    fn kind(&self) -> DepKind;

    /// Does the dependency hold in the instance?
    fn holds(&self, r: &Relation) -> bool;

    /// Witnesses of violations of the (embedded) exact rule.
    fn violations(&self, r: &Relation) -> Vec<Violation>;

    /// Number of violation witnesses.
    fn count_violations(&self, r: &Relation) -> usize {
        self.violations(r).len()
    }
}

/// Blanket convenience for boxed rule sets.
impl<D: Dependency + ?Sized> Dependency for Box<D> {
    fn kind(&self) -> DepKind {
        (**self).kind()
    }
    fn holds(&self, r: &Relation) -> bool {
        (**self).holds(r)
    }
    fn violations(&self, r: &Relation) -> Vec<Violation> {
        (**self).violations(r)
    }
    fn count_violations(&self, r: &Relation) -> usize {
        (**self).count_violations(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_listed_once() {
        let mut sorted = DepKind::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 24);
    }

    #[test]
    fn violation_pair_sorts_rows() {
        let v = Violation::pair(5, 2, AttrSet::empty());
        assert_eq!(v.rows, vec![2, 5]);
    }

    #[test]
    fn acronyms_match_survey() {
        assert_eq!(DepKind::ECfd.acronym(), "eCFDs");
        assert_eq!(DepKind::Csd.to_string(), "CSDs");
    }
}
