//! The extension graph of Fig. 1A.

use crate::dep::DepKind;
use crate::familytree::registry;
use std::collections::{HashMap, HashSet, VecDeque};

/// The extension arrows of Fig. 1A: `(special, general)` — an arrow from
/// FDs to SFDs means "SFDs extend/generalize/subsume FDs".
pub const EDGES: [(DepKind, DepKind); 24] = [
    // Statistical and conditional extensions over categorical data (§2).
    (DepKind::Fd, DepKind::Sfd),
    (DepKind::Fd, DepKind::Pfd),
    (DepKind::Fd, DepKind::Afd),
    (DepKind::Fd, DepKind::Nud),
    (DepKind::Fd, DepKind::Cfd),
    (DepKind::Fd, DepKind::Mvd),
    (DepKind::Cfd, DepKind::ECfd),
    (DepKind::Mvd, DepKind::Fhd),
    (DepKind::Mvd, DepKind::Amvd),
    // Similarity extensions over heterogeneous data (§3).
    (DepKind::Fd, DepKind::Mfd),
    (DepKind::Fd, DepKind::Ffd),
    (DepKind::Fd, DepKind::Md),
    (DepKind::Mfd, DepKind::Ned),
    (DepKind::Ned, DepKind::Dd),
    (DepKind::Ned, DepKind::Cd),
    (DepKind::Ned, DepKind::Pac),
    (DepKind::Dd, DepKind::Cdd),
    (DepKind::Cfd, DepKind::Cdd),
    (DepKind::Md, DepKind::Cmd),
    // Order extensions over numerical data (§4).
    (DepKind::Ofd, DepKind::Od),
    (DepKind::Od, DepKind::Sd),
    (DepKind::Od, DepKind::Dc),
    (DepKind::ECfd, DepKind::Dc),
    (DepKind::Sd, DepKind::Csd),
];

/// The Fig. 1A graph with reachability and rendering queries.
#[derive(Debug, Clone)]
pub struct ExtensionGraph {
    children: HashMap<DepKind, Vec<DepKind>>,
    parents: HashMap<DepKind, Vec<DepKind>>,
}

impl ExtensionGraph {
    /// The survey's graph.
    pub fn survey() -> Self {
        let mut children: HashMap<DepKind, Vec<DepKind>> = HashMap::new();
        let mut parents: HashMap<DepKind, Vec<DepKind>> = HashMap::new();
        for &(special, general) in &EDGES {
            children.entry(special).or_default().push(general);
            parents.entry(general).or_default().push(special);
        }
        ExtensionGraph { children, parents }
    }

    /// Direct generalizations of a notation (outgoing arrows).
    pub fn generalizations(&self, kind: DepKind) -> &[DepKind] {
        self.children.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct special cases of a notation (incoming arrows).
    pub fn special_cases(&self, kind: DepKind) -> &[DepKind] {
        self.parents.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does `general` (transitively) extend `special`? Reflexive.
    pub fn extends(&self, general: DepKind, special: DepKind) -> bool {
        if general == special {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([special]);
        while let Some(k) = queue.pop_front() {
            for &g in self.generalizations(k) {
                if g == general {
                    return true;
                }
                if seen.insert(g) {
                    queue.push_back(g);
                }
            }
        }
        false
    }

    /// Every notation that (transitively) generalizes `kind`, excluding
    /// `kind` itself.
    pub fn all_generalizations(&self, kind: DepKind) -> Vec<DepKind> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([kind]);
        while let Some(k) = queue.pop_front() {
            for &g in self.generalizations(k) {
                if seen.insert(g) {
                    out.push(g);
                    queue.push_back(g);
                }
            }
        }
        out.sort();
        out
    }

    /// Roots: notations extending nothing (FDs and OFDs in the survey —
    /// the tree is "mostly rooted in FDs").
    pub fn roots(&self) -> Vec<DepKind> {
        let mut roots: Vec<DepKind> = DepKind::ALL
            .into_iter()
            .filter(|k| self.special_cases(*k).is_empty())
            .collect();
        roots.sort();
        roots
    }

    /// Leaves: notations no other notation extends.
    pub fn leaves(&self) -> Vec<DepKind> {
        let mut leaves: Vec<DepKind> = DepKind::ALL
            .into_iter()
            .filter(|k| self.generalizations(*k).is_empty())
            .collect();
        leaves.sort();
        leaves
    }

    /// A topological order (special cases before generalizations).
    pub fn topological_order(&self) -> Vec<DepKind> {
        let mut in_deg: HashMap<DepKind, usize> = DepKind::ALL
            .into_iter()
            .map(|k| (k, self.special_cases(k).len()))
            .collect();
        let mut queue: VecDeque<DepKind> = DepKind::ALL
            .into_iter()
            .filter(|k| in_deg[k] == 0)
            .collect();
        let mut out = Vec::with_capacity(DepKind::ALL.len());
        while let Some(k) = queue.pop_front() {
            out.push(k);
            for &g in self.generalizations(k) {
                let Some(d) = in_deg.get_mut(&g) else {
                    continue; // every kind is seeded above
                };
                *d -= 1;
                if *d == 0 {
                    queue.push_back(g);
                }
            }
        }
        out
    }

    /// Render the graph as an indented ASCII forest (Fig. 1A).
    /// Nodes reachable by several paths appear under each parent (marked
    /// with `*` on repeats).
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let mut printed = HashSet::new();
        for root in self.roots() {
            self.ascii_rec(root, 0, &mut printed, &mut out);
        }
        out
    }

    fn ascii_rec(
        &self,
        kind: DepKind,
        depth: usize,
        printed: &mut HashSet<DepKind>,
        out: &mut String,
    ) {
        let info = registry::info(kind);
        let repeat = !printed.insert(kind);
        out.push_str(&format!(
            "{}{}{} ({}, {})\n",
            "  ".repeat(depth),
            kind.acronym(),
            if repeat { " *" } else { "" },
            info.year,
            info.branch,
        ));
        if repeat {
            return;
        }
        let mut kids = self.generalizations(kind).to_vec();
        kids.sort();
        for g in kids {
            self.ascii_rec(g, depth + 1, printed, out);
        }
    }

    /// Render as GraphViz dot, color-coded by branch.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph familytree {\n  rankdir=LR;\n");
        for info in &registry::REGISTRY {
            let color = match info.branch {
                registry::DataTypeBranch::Categorical => "lightblue",
                registry::DataTypeBranch::Heterogeneous => "lightgreen",
                registry::DataTypeBranch::Numerical => "lightsalmon",
            };
            out.push_str(&format!(
                "  {} [label=\"{}\\n{}\" style=filled fillcolor={}];\n",
                info.kind.acronym(),
                info.kind.acronym(),
                info.year,
                color
            ));
        }
        for (s, g) in EDGES {
            out.push_str(&format!("  {} -> {};\n", s.acronym(), g.acronym()));
        }
        out.push_str("}\n");
        out
    }
}

impl Default for ExtensionGraph {
    fn default() -> Self {
        Self::survey()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_fd_and_ofd() {
        // "mostly rooted in FDs": the numerical branch roots at OFDs.
        let g = ExtensionGraph::survey();
        assert_eq!(g.roots(), vec![DepKind::Fd, DepKind::Ofd]);
    }

    #[test]
    fn reachability_matches_survey_claims() {
        let g = ExtensionGraph::survey();
        // "All the generalizations of CFDs, such as CDDs and DCs including
        // CFDs as special cases" (§1.4.2).
        assert!(g.extends(DepKind::Cdd, DepKind::Cfd));
        assert!(g.extends(DepKind::Dc, DepKind::Cfd));
        // "DCs extend ODs … as well as eCFDs" (§1.6).
        assert!(g.extends(DepKind::Dc, DepKind::Od));
        assert!(g.extends(DepKind::Dc, DepKind::ECfd));
        // "CDDs extend both DDs … and CFDs" (§1.6).
        assert!(g.extends(DepKind::Cdd, DepKind::Dd));
        // DDs extend NEDs extend MFDs extend FDs (§3).
        assert!(g.extends(DepKind::Dd, DepKind::Fd));
        // CDDs extend CFDs but NOT eCFDs (§2.5.5).
        assert!(!g.extends(DepKind::Cdd, DepKind::ECfd));
        // SFDs don't extend MVDs or vice versa.
        assert!(!g.extends(DepKind::Sfd, DepKind::Mvd));
        assert!(!g.extends(DepKind::Mvd, DepKind::Sfd));
    }

    #[test]
    fn extends_is_reflexive_and_respects_direction() {
        let g = ExtensionGraph::survey();
        assert!(g.extends(DepKind::Fd, DepKind::Fd));
        assert!(g.extends(DepKind::Sfd, DepKind::Fd));
        assert!(!g.extends(DepKind::Fd, DepKind::Sfd));
    }

    #[test]
    fn topological_order_is_complete_and_valid() {
        let g = ExtensionGraph::survey();
        let order = g.topological_order();
        assert_eq!(order.len(), DepKind::ALL.len());
        let pos: std::collections::HashMap<DepKind, usize> =
            order.iter().enumerate().map(|(i, k)| (*k, i)).collect();
        for (s, gnl) in EDGES {
            assert!(pos[&s] < pos[&gnl], "{s} must precede {gnl}");
        }
    }

    #[test]
    fn fd_generalizations_count() {
        let g = ExtensionGraph::survey();
        // Everything except OFDs (a separate root, though its descendants
        // merge back via DCs).
        let all = g.all_generalizations(DepKind::Fd);
        assert!(all.contains(&DepKind::Dc));
        assert!(!all.contains(&DepKind::Csd)); // CSD comes from SD/OD/OFD only
        assert!(!all.contains(&DepKind::Ofd));
    }

    #[test]
    fn renderers_mention_every_notation() {
        let g = ExtensionGraph::survey();
        let ascii = g.to_ascii();
        let dot = g.to_dot();
        for k in DepKind::ALL {
            assert!(ascii.contains(k.acronym()), "ascii missing {k}");
            assert!(dot.contains(k.acronym()), "dot missing {k}");
        }
        assert!(dot.contains("FDs -> SFDs"));
    }

    #[test]
    fn leaves_are_maximal_notations() {
        let g = ExtensionGraph::survey();
        let leaves = g.leaves();
        for k in [DepKind::Dc, DepKind::Csd, DepKind::Cdd, DepKind::Cmd] {
            assert!(leaves.contains(&k), "{k} should be maximal");
        }
        assert!(!leaves.contains(&DepKind::Fd));
    }
}
