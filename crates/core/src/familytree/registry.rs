//! The notation registry: Table 2, Fig. 1B, Fig. 2, Fig. 3 and Table 3 as
//! queryable data.

use crate::dep::DepKind;

/// The survey's three data-type branches (§1.3), plus the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataTypeBranch {
    /// §2: equality relationships over categorical data.
    Categorical,
    /// §3: similarity relationships over heterogeneous data.
    Heterogeneous,
    /// §4: order relationships over numerical data.
    Numerical,
}

impl std::fmt::Display for DataTypeBranch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataTypeBranch::Categorical => write!(f, "Categorical"),
            DataTypeBranch::Heterogeneous => write!(f, "Heterogeneous"),
            DataTypeBranch::Numerical => write!(f, "Numerical"),
        }
    }
}

/// Complexity of the discovery problem for a notation (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Polynomial-time solvable (the CSD tableau DP is the survey's
    /// highlighted exception).
    PolynomialTime,
    /// NP-complete.
    NpComplete,
    /// NP-hard (no known membership claim).
    NpHard,
    /// co-NP-complete (used for implication-problem entries).
    CoNpComplete,
    /// Output can be exponential in the number of attributes (FD-style
    /// minimal covers), with NP-complete decision subproblems.
    ExponentialOutput,
}

impl std::fmt::Display for Complexity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Complexity::PolynomialTime => write!(f, "PTIME"),
            Complexity::NpComplete => write!(f, "NP-complete"),
            Complexity::NpHard => write!(f, "NP-hard"),
            Complexity::CoNpComplete => write!(f, "co-NP-complete"),
            Complexity::ExponentialOutput => write!(f, "exponential output"),
        }
    }
}

/// The application tasks of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// Detecting tuples/pairs violating declared rules.
    ViolationDetection,
    /// Modifying data to restore consistency.
    DataRepairing,
    /// Exploiting dependencies in query planning/statistics.
    QueryOptimization,
    /// Answers valid in every minimal repair.
    ConsistentQueryAnswering,
    /// Identifying records denoting the same real-world entity.
    Deduplication,
    /// Partitioning data by comparability.
    DataPartition,
    /// 3NF/BCNF/4NF-style design.
    SchemaNormalization,
    /// Causal-fairness repairs of training data.
    ModelFairness,
}

impl Application {
    /// All application tasks, in Table 3 row order.
    pub const ALL: [Application; 8] = [
        Application::ViolationDetection,
        Application::DataRepairing,
        Application::QueryOptimization,
        Application::ConsistentQueryAnswering,
        Application::Deduplication,
        Application::DataPartition,
        Application::SchemaNormalization,
        Application::ModelFairness,
    ];
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Application::ViolationDetection => "Violation detection",
            Application::DataRepairing => "Data repairing",
            Application::QueryOptimization => "Query optimization",
            Application::ConsistentQueryAnswering => "Consistent query answering",
            Application::Deduplication => "Data deduplication",
            Application::DataPartition => "Data partition",
            Application::SchemaNormalization => "Schema normalization",
            Application::ModelFairness => "Model fairness",
        };
        write!(f, "{s}")
    }
}

/// Everything the survey records about one notation.
#[derive(Debug, Clone)]
pub struct NotationInfo {
    /// Which notation.
    pub kind: DepKind,
    /// Full name ("Soft Functional Dependencies").
    pub name: &'static str,
    /// Data-type branch (Table 2's grouping).
    pub branch: DataTypeBranch,
    /// Year of the defining proposal (Table 2 / Fig. 2).
    pub year: u16,
    /// Number of publications using the notation per Google Scholar
    /// (Table 2 / Fig. 1B). The counts reproduce the paper's reported
    /// values; the categorical-branch column suffers extraction ambiguity
    /// in the source PDF, so FHDs/AMVDs carry the conservative value 1.
    pub publications: u32,
    /// Discovery-problem complexity (Fig. 3).
    pub discovery: Complexity,
    /// One-line note on the Fig. 3 entry.
    pub complexity_note: &'static str,
    /// Applications supported per Table 3.
    pub applications: &'static [Application],
}

use Application as A;

/// The registry, in Table 2 order (FDs first as the family-tree root).
pub const REGISTRY: [NotationInfo; 24] = [
    NotationInfo {
        kind: DepKind::Fd,
        name: "Functional Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 1971,
        publications: 10_000, // canonical; shown as "root" in Fig. 1B
        discovery: Complexity::ExponentialOutput,
        complexity_note: "minimal cover may be exponential; key-of-size-k is NP-complete",
        applications: &[
            A::ViolationDetection,
            A::DataRepairing,
            A::ConsistentQueryAnswering,
            A::SchemaNormalization,
        ],
    },
    NotationInfo {
        kind: DepKind::Sfd,
        name: "Soft Functional Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 2004,
        publications: 327,
        discovery: Complexity::PolynomialTime,
        complexity_note: "CORDS sampling: cost independent of relation size",
        applications: &[A::QueryOptimization],
    },
    NotationInfo {
        kind: DepKind::Pfd,
        name: "Probabilistic Functional Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 2009,
        publications: 55,
        discovery: Complexity::PolynomialTime,
        complexity_note: "counting-based per-source merge (TANE extension)",
        applications: &[A::ViolationDetection, A::SchemaNormalization],
    },
    NotationInfo {
        kind: DepKind::Afd,
        name: "Approximate Functional Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 1995,
        publications: 248,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "TANE with g3 validity test; inherits FD lattice size",
        applications: &[A::QueryOptimization],
    },
    NotationInfo {
        kind: DepKind::Nud,
        name: "Numerical Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 1981,
        publications: 404,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "derivation/implication is not finitely axiomatizable",
        applications: &[A::QueryOptimization],
    },
    NotationInfo {
        kind: DepKind::Cfd,
        name: "Conditional Functional Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 2007,
        publications: 471,
        discovery: Complexity::NpComplete,
        complexity_note: "optimal tableau generation NP-complete; implication co-NP-complete",
        applications: &[A::ViolationDetection, A::DataRepairing, A::Deduplication],
    },
    NotationInfo {
        kind: DepKind::ECfd,
        name: "extended CFDs",
        branch: DataTypeBranch::Categorical,
        year: 2008,
        publications: 76,
        discovery: Complexity::NpComplete,
        complexity_note: "implication co-NP-complete, unchanged from CFDs",
        applications: &[A::ViolationDetection, A::DataRepairing],
    },
    NotationInfo {
        kind: DepKind::Mvd,
        name: "Multivalued Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 1977,
        publications: 191,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "level-wise hypothesis-space search (Savnik–Flach)",
        applications: &[A::DataRepairing, A::SchemaNormalization, A::ModelFairness],
    },
    NotationInfo {
        kind: DepKind::Fhd,
        name: "Full Hierarchical Dependencies",
        branch: DataTypeBranch::Categorical,
        year: 1978,
        publications: 1,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "hierarchical decompositions inherit MVD search",
        applications: &[A::SchemaNormalization],
    },
    NotationInfo {
        kind: DepKind::Amvd,
        name: "Approximate MVDs",
        branch: DataTypeBranch::Categorical,
        year: 2020,
        publications: 1,
        discovery: Complexity::NpHard,
        complexity_note: "mining approximate acyclic schemes",
        applications: &[A::QueryOptimization],
    },
    NotationInfo {
        kind: DepKind::Mfd,
        name: "Metric Functional Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2009,
        publications: 86,
        discovery: Complexity::PolynomialTime,
        complexity_note: "verification O(n²) per candidate; approximate verifiers exist",
        applications: &[A::ViolationDetection],
    },
    NotationInfo {
        kind: DepKind::Ned,
        name: "Neighborhood Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2001,
        publications: 15,
        discovery: Complexity::NpHard,
        complexity_note: "LHS-predicate search NP-hard in the number of attributes",
        applications: &[A::DataRepairing],
    },
    NotationInfo {
        kind: DepKind::Dd,
        name: "Differential Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2011,
        publications: 109,
        discovery: Complexity::NpComplete,
        complexity_note: "minimal DDs exponential in attributes; implication co-NP-complete",
        applications: &[
            A::DataRepairing,
            A::QueryOptimization,
            A::Deduplication,
            A::DataPartition,
        ],
    },
    NotationInfo {
        kind: DepKind::Cdd,
        name: "Conditional Differential Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2015,
        publications: 3,
        discovery: Complexity::NpComplete,
        complexity_note: "no easier than CFD discovery (CDDs subsume CFDs)",
        applications: &[A::ViolationDetection, A::DataRepairing],
    },
    NotationInfo {
        kind: DepKind::Cd,
        name: "Comparable Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2011,
        publications: 18,
        discovery: Complexity::NpComplete,
        complexity_note: "error and confidence validation both NP-complete",
        applications: &[
            A::ViolationDetection,
            A::QueryOptimization,
            A::Deduplication,
        ],
    },
    NotationInfo {
        kind: DepKind::Pac,
        name: "Probabilistic Approximate Constraints",
        branch: DataTypeBranch::Heterogeneous,
        year: 2003,
        publications: 39,
        discovery: Complexity::PolynomialTime,
        complexity_note: "PAC-Man instantiates parameters from rule templates",
        applications: &[A::ViolationDetection, A::QueryOptimization],
    },
    NotationInfo {
        kind: DepKind::Ffd,
        name: "Fuzzy Functional Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 1988,
        publications: 496,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "TANE-style small-to-large with pairwise μ_EQ checks",
        applications: &[A::QueryOptimization, A::Deduplication],
    },
    NotationInfo {
        kind: DepKind::Md,
        name: "Matching Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2009,
        publications: 197,
        discovery: Complexity::NpComplete,
        complexity_note: "concise matching-key set of size ≤ k is NP-complete",
        applications: &[A::DataRepairing, A::Deduplication, A::DataPartition],
    },
    NotationInfo {
        kind: DepKind::Cmd,
        name: "Conditional Matching Dependencies",
        branch: DataTypeBranch::Heterogeneous,
        year: 2017,
        publications: 15,
        discovery: Complexity::NpComplete,
        complexity_note: "deciding g3 ≤ e is NP-complete",
        applications: &[A::DataRepairing, A::Deduplication],
    },
    NotationInfo {
        kind: DepKind::Ofd,
        name: "Ordered Functional Dependencies",
        branch: DataTypeBranch::Numerical,
        year: 1999,
        publications: 27,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "lattice of pointwise/lexicographic candidates",
        applications: &[A::ConsistentQueryAnswering],
    },
    NotationInfo {
        kind: DepKind::Od,
        name: "Order Dependencies",
        branch: DataTypeBranch::Numerical,
        year: 1982,
        publications: 27,
        discovery: Complexity::ExponentialOutput,
        complexity_note: "FASTOD set-based canonical form; implication co-NP-complete",
        applications: &[
            A::ViolationDetection,
            A::DataRepairing,
            A::QueryOptimization,
        ],
    },
    NotationInfo {
        kind: DepKind::Dc,
        name: "Denial Constraints",
        branch: DataTypeBranch::Numerical,
        year: 2005,
        publications: 52,
        discovery: Complexity::NpComplete,
        complexity_note: "minimal covers of evidence sets (FASTDC); subsumes CFD hardness",
        applications: &[
            A::ViolationDetection,
            A::DataRepairing,
            A::ConsistentQueryAnswering,
        ],
    },
    NotationInfo {
        kind: DepKind::Sd,
        name: "Sequential Dependencies",
        branch: DataTypeBranch::Numerical,
        year: 2009,
        publications: 97,
        discovery: Complexity::PolynomialTime,
        complexity_note: "confidence computable efficiently for simple SDs",
        applications: &[A::ViolationDetection],
    },
    NotationInfo {
        kind: DepKind::Csd,
        name: "Conditional Sequential Dependencies",
        branch: DataTypeBranch::Numerical,
        year: 2009,
        publications: 97,
        discovery: Complexity::PolynomialTime,
        complexity_note: "exact tableau DP quadratic in candidate intervals — the Fig. 3 exception",
        applications: &[A::ViolationDetection],
    },
];

/// Look up registry info for a notation.
pub fn info(kind: DepKind) -> &'static NotationInfo {
    match REGISTRY.iter().find(|n| n.kind == kind) {
        Some(n) => n,
        // REGISTRY is a static table covering `DepKind::ALL`; the registry
        // tests assert the cover, so this arm cannot be reached.
        None => unreachable!("DepKind {kind:?} missing from REGISTRY"),
    }
}

/// Notations in a branch, in registry order.
pub fn branch_members(branch: DataTypeBranch) -> Vec<&'static NotationInfo> {
    REGISTRY.iter().filter(|n| n.branch == branch).collect()
}

/// Notations supporting an application (one column of Table 3).
pub fn supporting(app: Application) -> Vec<&'static NotationInfo> {
    REGISTRY
        .iter()
        .filter(|n| n.applications.contains(&app))
        .collect()
}

/// The timeline of Fig. 2: `(year, notation)` sorted by year.
pub fn timeline() -> Vec<(u16, DepKind)> {
    let mut t: Vec<(u16, DepKind)> = REGISTRY.iter().map(|n| (n.year, n.kind)).collect();
    t.sort();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kind_once() {
        for kind in DepKind::ALL {
            assert_eq!(
                REGISTRY.iter().filter(|n| n.kind == kind).count(),
                1,
                "{kind}"
            );
        }
    }

    #[test]
    fn paper_years_match_table2() {
        assert_eq!(info(DepKind::Sfd).year, 2004);
        assert_eq!(info(DepKind::Afd).year, 1995);
        assert_eq!(info(DepKind::Cfd).year, 2007);
        assert_eq!(info(DepKind::Mvd).year, 1977);
        assert_eq!(info(DepKind::Ffd).year, 1988);
        assert_eq!(info(DepKind::Od).year, 1982);
        assert_eq!(info(DepKind::Csd).year, 2009);
        assert_eq!(info(DepKind::Amvd).year, 2020);
    }

    #[test]
    fn branch_sizes_match_table2() {
        assert_eq!(branch_members(DataTypeBranch::Categorical).len(), 10); // 9 + FD root
        assert_eq!(branch_members(DataTypeBranch::Heterogeneous).len(), 9);
        assert_eq!(branch_members(DataTypeBranch::Numerical).len(), 5);
    }

    #[test]
    fn timeline_milestones() {
        // §1.4.1: AFDs (1995) are the first statistical extension; CFDs
        // open the conditional line (2007); the timeline starts with MVDs
        // (1977) among the extensions.
        let t = timeline();
        assert_eq!(t.first().map(|(y, _)| *y), Some(1971));
        assert!(t.windows(2).all(|w| w[0].0 <= w[1].0));
        let year_of = |k: DepKind| t.iter().find(|(_, kk)| *kk == k).map(|(y, _)| *y);
        assert!(year_of(DepKind::Afd) < year_of(DepKind::Sfd));
        assert!(year_of(DepKind::Cfd) < year_of(DepKind::Cdd));
        assert!(year_of(DepKind::Cdd) < year_of(DepKind::Cmd));
    }

    #[test]
    fn csd_is_the_polynomial_exception() {
        // Fig. 3's headline: CSD tableau discovery is polynomial while the
        // conditional/denial extensions are NP-complete.
        assert_eq!(info(DepKind::Csd).discovery, Complexity::PolynomialTime);
        assert_eq!(info(DepKind::Cfd).discovery, Complexity::NpComplete);
        assert_eq!(info(DepKind::Cdd).discovery, Complexity::NpComplete);
        assert_eq!(info(DepKind::Dc).discovery, Complexity::NpComplete);
    }

    #[test]
    fn table3_spot_checks() {
        // Violation detection column includes ODs, DCs, SDs, CSDs.
        let vd = supporting(Application::ViolationDetection);
        for k in [DepKind::Od, DepKind::Dc, DepKind::Sd, DepKind::Csd] {
            assert!(vd.iter().any(|n| n.kind == k), "{k}");
        }
        // Model fairness is MVDs only.
        let mf = supporting(Application::ModelFairness);
        assert_eq!(mf.len(), 1);
        assert_eq!(mf[0].kind, DepKind::Mvd);
        // Schema normalization: FDs, PFDs, MVDs, FHDs.
        let sn = supporting(Application::SchemaNormalization);
        assert_eq!(sn.len(), 4);
    }
}
