//! Empirical verification of the Fig. 1A extension edges.
//!
//! For every arrow `S → G` the survey draws, this module builds a concrete
//! special-case dependency `s` and its embedding `g` into the general
//! notation, then evaluates both on a paper example instance *and on every
//! single-cell perturbation of it* (each cell replaced by the value of the
//! next row). Most embeddings are **equivalences** (`s` holds iff `g`
//! holds); two are genuine **implications** (`s` holds ⇒ `g` holds):
//! FDs → MVDs (every FD is an MVD, but MVDs are strictly weaker) and
//! ODs → SDs (SDs skip order ties on the sequencing attribute).

// Edge verification runs over the paper's fixed example instances; every
// `expect` below sits on a static construction whose success the edge
// tests assert — not a data-dependent error path.
#![allow(clippy::expect_used)]

use crate::categorical::{Afd, Amvd, Cfd, ECfd, Fd, Fhd, Mvd, Nud, Pattern, Pfd, Sfd};
use crate::dep::{DepKind, Dependency};
use crate::heterogeneous::{Cd, Cdd, Cmd, Dd, Ffd, Md, Mfd, Ned, NedAtom, Pac};
use crate::numerical::{Csd, Dc, Direction, Od, Ofd, Sd};
use deptree_metrics::Metric;
use deptree_relation::{examples, AttrSet, Relation};

/// How an embedding relates special to general.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMode {
    /// `special.holds(r) ⇔ general.holds(r)` on every instance.
    Equivalence,
    /// `special.holds(r) ⇒ general.holds(r)` on every instance.
    Implication,
}

/// The outcome of verifying one extension edge.
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// The verified `(special, general)` edge.
    pub edge: (DepKind, DepKind),
    /// Equivalence or implication.
    pub mode: EdgeMode,
    /// Number of instances (base + perturbations) evaluated.
    pub instances: usize,
    /// Instances where the relationship held.
    pub agreed: usize,
}

impl EdgeReport {
    /// Did the relationship hold on every instance?
    pub fn ok(&self) -> bool {
        self.agreed == self.instances
    }
}

/// All single-cell perturbations of `r`: each cell replaced by the value
/// of the same attribute in the next row (cyclically). Deterministic, so
/// verification needs no RNG.
fn perturbations(r: &Relation) -> Vec<Relation> {
    let n = r.n_rows();
    if n < 2 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n * r.n_attrs());
    for row in 0..n {
        for attr in r.schema().ids() {
            let donor = (row + 1) % n;
            let v = r.value(donor, attr).clone();
            if &v == r.value(row, attr) {
                continue;
            }
            let mut variant = r.clone();
            variant.set_value(row, attr, v);
            out.push(variant);
        }
    }
    out
}

fn check(
    edge: (DepKind, DepKind),
    mode: EdgeMode,
    base: &Relation,
    special: &dyn Dependency,
    general: &dyn Dependency,
) -> EdgeReport {
    let mut instances = 0usize;
    let mut agreed = 0usize;
    let mut visit = |r: &Relation| {
        instances += 1;
        let s = special.holds(r);
        let g = general.holds(r);
        let ok = match mode {
            EdgeMode::Equivalence => s == g,
            EdgeMode::Implication => !s || g,
        };
        if ok {
            agreed += 1;
        }
    };
    visit(base);
    for v in perturbations(base) {
        visit(&v);
    }
    EdgeReport {
        edge,
        mode,
        instances,
        agreed,
    }
}

/// Verify one Fig. 1A edge; `None` if the pair is not an edge of the
/// survey's graph.
pub fn verify_edge(special: DepKind, general: DepKind) -> Option<EdgeReport> {
    use DepKind as K;
    let edge = (special, general);
    let r5 = examples::hotels_r5();
    let r6 = examples::hotels_r6();
    let r7 = examples::hotels_r7();
    let s5 = r5.schema();
    let s6 = r6.schema();
    let s7 = r7.schema();

    let fd5 = Fd::parse(s5, "address -> region").expect("r5 attrs");
    let report = match edge {
        (K::Fd, K::Sfd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Sfd::from_fd(fd5.clone()),
        ),
        (K::Fd, K::Pfd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Pfd::from_fd(fd5.clone()),
        ),
        (K::Fd, K::Afd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Afd::from_fd(fd5.clone()),
        ),
        (K::Fd, K::Nud) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Nud::from_fd(s5, &fd5),
        ),
        (K::Fd, K::Cfd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Cfd::from_fd(s5, &fd5),
        ),
        (K::Fd, K::Mvd) => check(
            edge,
            EdgeMode::Implication,
            &r5,
            &fd5,
            &Mvd::from_fd(s5, &fd5),
        ),
        (K::Fd, K::Mfd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Mfd::from_fd(s5, &fd5),
        ),
        (K::Fd, K::Ffd) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Ffd::from_fd(s5, &fd5),
        ),
        (K::Fd, K::Md) => check(
            edge,
            EdgeMode::Equivalence,
            &r5,
            &fd5,
            &Md::from_fd(s5, &fd5),
        ),
        (K::Cfd, K::ECfd) => {
            let lhs = AttrSet::from_ids([s5.id("region"), s5.id("name")]);
            let rhs = AttrSet::single(s5.id("address"));
            let cfd = Cfd::new(
                s5,
                lhs,
                rhs,
                Pattern::all_any(lhs.union(rhs)).with_const(s5.id("region"), "Jackson"),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r5,
                &cfd,
                &ECfd::from_cfd(s5, &cfd),
            )
        }
        (K::Cfd, K::Cdd) => {
            let lhs = AttrSet::from_ids([s6.id("source"), s6.id("name")]);
            let rhs = AttrSet::single(s6.id("zip"));
            let cfd = Cfd::new(
                s6,
                lhs,
                rhs,
                Pattern::all_any(lhs.union(rhs)).with_const(s6.id("source"), "s1"),
            );
            let cdd = Cdd::from_cfd(s6, &cfd).expect("LHS-constant CFD embeds");
            check(edge, EdgeMode::Equivalence, &r6, &cfd, &cdd)
        }
        (K::Mvd, K::Fhd) => {
            let mvd = Mvd::new(
                s5,
                AttrSet::from_ids([s5.id("address"), s5.id("rate")]),
                AttrSet::single(s5.id("region")),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r5,
                &mvd,
                &Fhd::from_mvd(s5, &mvd),
            )
        }
        (K::Mvd, K::Amvd) => {
            let mvd = Mvd::new(
                s5,
                AttrSet::from_ids([s5.id("address"), s5.id("rate")]),
                AttrSet::single(s5.id("region")),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r5,
                &mvd,
                &Amvd::from_mvd(mvd.clone()),
            )
        }
        (K::Mfd, K::Ned) => {
            let mfd = Mfd::new(
                s6,
                AttrSet::from_ids([s6.id("name"), s6.id("region")]),
                vec![(s6.id("price"), Metric::AbsDiff, 500.0)],
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r6,
                &mfd,
                &Ned::from_mfd(s6, &mfd),
            )
        }
        (K::Ned, K::Dd) => {
            let ned = example_ned(&r6);
            check(
                edge,
                EdgeMode::Equivalence,
                &r6,
                &ned,
                &Dd::from_ned(s6, &ned),
            )
        }
        (K::Ned, K::Cd) => {
            let ned = example_ned(&r6);
            let cd = Cd::from_ned(s6, &ned).expect("NED has an RHS atom");
            check(edge, EdgeMode::Equivalence, &r6, &ned, &cd)
        }
        (K::Ned, K::Pac) => {
            let ned = example_ned(&r6);
            check(
                edge,
                EdgeMode::Equivalence,
                &r6,
                &ned,
                &Pac::from_ned(s6, &ned),
            )
        }
        (K::Dd, K::Cdd) => {
            let dd = Dd::from_ned(s6, &example_ned(&r6));
            check(
                edge,
                EdgeMode::Equivalence,
                &r6,
                &dd,
                &Cdd::from_dd(s6, dd.clone()),
            )
        }
        (K::Md, K::Cmd) => {
            let md = Md::new(
                s6,
                vec![
                    (s6.id("street"), Metric::Levenshtein, 5.0),
                    (s6.id("region"), Metric::Levenshtein, 2.0),
                ],
                AttrSet::single(s6.id("zip")),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r6,
                &md,
                &Cmd::from_md(s6, md.clone()),
            )
        }
        (K::Ofd, K::Od) => {
            let ofd = Ofd::pointwise(
                s7,
                AttrSet::single(s7.id("subtotal")),
                AttrSet::single(s7.id("taxes")),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r7,
                &ofd,
                &Od::from_ofd(s7, &ofd),
            )
        }
        (K::Od, K::Sd) => {
            let od = example_od(&r7);
            let sd = Sd::from_od(s7, &od).expect("single-attribute OD embeds");
            check(edge, EdgeMode::Implication, &r7, &od, &sd)
        }
        (K::Od, K::Dc) => {
            let od = example_od(&r7);
            let dcs = Dc::from_od(s7, &od);
            let conj = Conjunction(dcs);
            check(edge, EdgeMode::Equivalence, &r7, &od, &conj)
        }
        (K::ECfd, K::Dc) => {
            let ecfd = ECfd::new(
                s5,
                AttrSet::from_ids([s5.id("rate"), s5.id("name")]),
                AttrSet::single(s5.id("address")),
                vec![(
                    s5.id("rate"),
                    crate::categorical::PatternOp::Cmp(crate::op::CmpOp::Leq, 200.into()),
                )],
            );
            let conj = Conjunction(Dc::from_ecfd(s5, &ecfd));
            check(edge, EdgeMode::Equivalence, &r5, &ecfd, &conj)
        }
        (K::Sd, K::Csd) => {
            let sd = Sd::new(
                s7,
                s7.id("nights"),
                s7.id("subtotal"),
                crate::numerical::Interval::new(100.0, 200.0),
            );
            check(
                edge,
                EdgeMode::Equivalence,
                &r7,
                &sd,
                &Csd::from_sd(s7, &sd),
            )
        }
        _ => return None,
    };
    Some(report)
}

fn example_ned(r6: &Relation) -> Ned {
    let s6 = r6.schema();
    Ned::new(
        s6,
        vec![
            NedAtom::new(s6.id("name"), Metric::Levenshtein, 1.0),
            NedAtom::new(s6.id("address"), Metric::Levenshtein, 5.0),
        ],
        vec![NedAtom::new(s6.id("street"), Metric::Levenshtein, 5.0)],
    )
}

fn example_od(r7: &Relation) -> Od {
    let s7 = r7.schema();
    Od::new(
        s7,
        vec![(s7.id("nights"), Direction::Asc)],
        vec![(s7.id("avg/night"), Direction::Desc)],
    )
}

/// Verify every edge of the survey graph. Returns one report per edge, in
/// [`crate::familytree::EDGES`] order.
pub fn verify_all_edges() -> Vec<EdgeReport> {
    crate::familytree::EDGES
        .iter()
        .map(|&(s, g)| verify_edge(s, g).expect("EDGES entries are verifiable"))
        .collect()
}

/// A conjunction of dependencies, used when one special case embeds into
/// *several* general rules (ODs and eCFDs each map to a set of DCs).
struct Conjunction(Vec<Dc>);

impl std::fmt::Display for Conjunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⋀ of {} DCs", self.0.len())
    }
}

impl Dependency for Conjunction {
    fn kind(&self) -> DepKind {
        DepKind::Dc
    }
    fn holds(&self, r: &Relation) -> bool {
        self.0.iter().all(|d| d.holds(r))
    }
    fn violations(&self, r: &Relation) -> Vec<crate::dep::Violation> {
        self.0.iter().flat_map(|d| d.violations(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_survey_edge_verifies() {
        let reports = verify_all_edges();
        assert_eq!(reports.len(), crate::familytree::EDGES.len());
        for rep in &reports {
            assert!(
                rep.ok(),
                "edge {:?} ({:?}): {}/{} instances agreed",
                rep.edge,
                rep.mode,
                rep.agreed,
                rep.instances
            );
            assert!(rep.instances > 1, "perturbations must be exercised");
        }
    }

    #[test]
    fn non_edges_are_rejected() {
        assert!(verify_edge(DepKind::Sfd, DepKind::Pfd).is_none());
        assert!(verify_edge(DepKind::Dc, DepKind::Fd).is_none());
    }

    #[test]
    fn implication_edges_are_the_two_weak_ones() {
        let weak: Vec<(DepKind, DepKind)> = verify_all_edges()
            .into_iter()
            .filter(|r| r.mode == EdgeMode::Implication)
            .map(|r| r.edge)
            .collect();
        assert_eq!(
            weak,
            vec![(DepKind::Fd, DepKind::Mvd), (DepKind::Od, DepKind::Sd)]
        );
    }
}
