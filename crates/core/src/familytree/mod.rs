//! The family tree of data dependencies — the survey's own contribution.
//!
//! * [`registry`] — one [`registry::NotationInfo`] per notation: the data
//!   type branch, proposal year, publication count (Fig. 1B / Table 2),
//!   discovery complexity (Fig. 3) and supported applications (Table 3);
//! * [`graph`] — the extension graph of Fig. 1A with reachability queries
//!   and renderers (ASCII tree, GraphViz dot);
//! * [`verify`] — empirical verification of every extension edge: for each
//!   arrow `S → G`, a concrete special-case dependency and its embedding
//!   are evaluated on the paper's example instances and systematic
//!   perturbations thereof, asserting they agree.

pub mod graph;
pub mod registry;
pub mod verify;

pub use graph::{ExtensionGraph, EDGES};
pub use registry::{Application, Complexity, DataTypeBranch, NotationInfo, REGISTRY};
pub use verify::{verify_all_edges, verify_edge, EdgeReport};
