//! Differential functions: ranges of metric distances (survey §3.3.1).

use std::fmt;

/// A range of metric distances, the *differential function* φ\[A\] of
/// differential dependencies.
///
/// A `DistRange` is a closed-below / closed-above interval `[min, max]`
/// over ℝ≥0 ∪ {∞}; the constructors mirror the operator set
/// {=, <, >, ≤, ≥} of the survey:
///
/// ```
/// use deptree_metrics::DistRange;
///
/// assert!(DistRange::at_most(5.0).contains(3.0));   // φ = "≤ 5"
/// assert!(DistRange::at_least(10.0).contains(10.0)); // φ = "≥ 10" (dissimilar)
/// assert!(!DistRange::exactly(0.0).contains(0.5));   // φ = "= 0" (equality)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRange {
    min: f64,
    max: f64,
}

impl DistRange {
    /// The full range `[0, ∞]` — satisfied by every pair (trivial φ).
    pub const fn any() -> Self {
        DistRange {
            min: 0.0,
            max: f64::INFINITY,
        }
    }

    /// `φ = "≤ d"`: the *similar* semantics.
    pub fn at_most(d: f64) -> Self {
        assert!(d >= 0.0, "distance threshold must be non-negative");
        DistRange { min: 0.0, max: d }
    }

    /// `φ = "< d"` approximated as `[0, d)` via the largest float below `d`.
    pub fn less_than(d: f64) -> Self {
        assert!(d > 0.0, "strict upper bound must be positive");
        DistRange {
            min: 0.0,
            max: prev_down(d),
        }
    }

    /// `φ = "≥ d"`: the *dissimilar* semantics.
    pub fn at_least(d: f64) -> Self {
        assert!(d >= 0.0, "distance threshold must be non-negative");
        DistRange {
            min: d,
            max: f64::INFINITY,
        }
    }

    /// `φ = "> d"` approximated as `(d, ∞]`.
    pub fn greater_than(d: f64) -> Self {
        DistRange {
            min: next_up(d),
            max: f64::INFINITY,
        }
    }

    /// `φ = "= d"`.
    pub fn exactly(d: f64) -> Self {
        DistRange { min: d, max: d }
    }

    /// Arbitrary closed interval `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max` or `min < 0`.
    pub fn between(min: f64, max: f64) -> Self {
        assert!(min >= 0.0 && min <= max, "invalid distance interval");
        DistRange { min, max }
    }

    /// Equality range `[0, 0]` — the degenerate φ that recovers FDs.
    pub const fn zero() -> Self {
        DistRange { min: 0.0, max: 0.0 }
    }

    /// Lower bound (inclusive).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound (inclusive; may be `∞`).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Does a distance fall in the range?
    #[inline]
    pub fn contains(&self, d: f64) -> bool {
        d >= self.min && d <= self.max
    }

    /// Is every distance accepted by `self` also accepted by `other`?
    /// (`self` is a *tighter* differential function.)
    #[inline]
    pub fn implies(&self, other: &DistRange) -> bool {
        other.min <= self.min && self.max <= other.max
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &DistRange) -> Option<DistRange> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        (min <= max).then_some(DistRange { min, max })
    }

    /// Is this the trivial `[0, ∞]` range?
    pub fn is_trivial(&self) -> bool {
        self.min == 0.0 && self.max == f64::INFINITY
    }
}

impl Default for DistRange {
    fn default() -> Self {
        Self::any()
    }
}

impl fmt::Display for DistRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min == 0.0, self.max.is_infinite()) {
            (true, true) => write!(f, "(any)"),
            (true, false) => write!(f, "≤{}", self.max),
            (false, true) => write!(f, "≥{}", self.min),
            (false, false) if self.min == self.max => write!(f, "={}", self.min),
            (false, false) => write!(f, "[{},{}]", self.min, self.max),
        }
    }
}

fn next_up(x: f64) -> f64 {
    // f64::next_up is stable since 1.86; keep a local helper for clarity.
    f64::next_up(x)
}

fn prev_down(x: f64) -> f64 {
    f64::next_down(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_membership() {
        assert!(DistRange::at_most(5.0).contains(5.0));
        assert!(!DistRange::at_most(5.0).contains(5.0001));
        assert!(DistRange::at_least(10.0).contains(10.0));
        assert!(!DistRange::at_least(10.0).contains(9.9999));
        assert!(DistRange::less_than(5.0).contains(4.9999));
        assert!(!DistRange::less_than(5.0).contains(5.0));
        assert!(DistRange::greater_than(5.0).contains(5.0001));
        assert!(!DistRange::greater_than(5.0).contains(5.0));
        assert!(DistRange::exactly(3.0).contains(3.0));
        assert!(DistRange::any().contains(f64::INFINITY));
        assert!(DistRange::zero().contains(0.0));
        assert!(!DistRange::zero().contains(0.1));
    }

    #[test]
    fn implication_is_interval_containment() {
        let tight = DistRange::at_most(2.0);
        let loose = DistRange::at_most(5.0);
        assert!(tight.implies(&loose));
        assert!(!loose.implies(&tight));
        assert!(tight.implies(&tight));
        assert!(DistRange::zero().implies(&DistRange::at_most(0.0)));
        assert!(!DistRange::at_least(1.0).implies(&DistRange::at_most(5.0)));
        assert!(DistRange::between(1.0, 2.0).implies(&DistRange::any()));
    }

    #[test]
    fn intersection() {
        let a = DistRange::at_most(5.0);
        let b = DistRange::at_least(3.0);
        assert_eq!(a.intersect(&b), Some(DistRange::between(3.0, 5.0)));
        assert_eq!(
            DistRange::at_most(1.0).intersect(&DistRange::at_least(2.0)),
            None
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(DistRange::at_most(5.0).to_string(), "≤5");
        assert_eq!(DistRange::at_least(3.0).to_string(), "≥3");
        assert_eq!(DistRange::exactly(2.0).to_string(), "=2");
        assert_eq!(DistRange::any().to_string(), "(any)");
        assert_eq!(DistRange::between(1.0, 2.0).to_string(), "[1,2]");
    }

    #[test]
    #[should_panic(expected = "invalid distance interval")]
    fn inverted_interval_rejected() {
        DistRange::between(3.0, 1.0);
    }
}
