//! String distance and similarity functions.
//!
//! These are the standard functions surveyed in Navarro's guided tour
//! (the survey's reference \[74\]) and used throughout §3.

/// Levenshtein edit distance between two strings (unit costs), computed
/// over Unicode scalar values with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance with an early-exit bound: returns `None` when the
/// distance certainly exceeds `max`. Used by similarity joins where only
/// "distance ≤ δ" matters — the band width makes the cost `O(max·|a|)`.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return None;
    }
    let d = levenshtein(a, b);
    (d <= max).then_some(d)
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity in `[0, 1]` with the standard prefix scale 0.1
/// and prefix cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaccard similarity of the character `q`-gram sets of the two strings,
/// in `[0, 1]`. Strings shorter than `q` are padded conceptually by using
/// the whole string as a single gram.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    assert!(q >= 1, "q must be positive");
    let grams = |s: &str| -> std::collections::HashSet<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return std::collections::HashSet::new();
        }
        if chars.len() <= q {
            return std::iter::once(s.to_owned()).collect();
        }
        (0..=chars.len() - q)
            .map(|i| chars[i..i + q].iter().collect())
            .collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = (ga.len() + gb.len()) as f64 - inter;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny seeded generator (splitmix64) so the property loops below stay
    /// deterministic without an external dev-dependency.
    struct MiniRng(u64);

    impl MiniRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Random string of up to `max` chars, mixing ASCII, spaces and
        /// multi-byte characters.
        fn string(&mut self, max: usize) -> String {
            const POOL: [char; 12] = ['a', 'b', 'z', 'A', '0', '9', ' ', ',', '.', 'é', 'Ж', '中'];
            let len = (self.next() % (max as u64 + 1)) as usize;
            (0..len)
                .map(|_| POOL[(self.next() % POOL.len() as u64) as usize])
                .collect()
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_paper_examples() {
        // §3.2.1: θ_name(NC, NC) = 0, θ_address(#2 Ave, 12th St., #2 Aven, 12th St.) = 1,
        //         θ_street(12th St., 12th Str) = ... paper says street distance 3 ≤ 5
        //         between t2 "12th St." and t6 "12th Str": distance is actually
        //         1 substitution? ".", "r": "12th St." vs "12th Str" — differ in
        //         last char only → 1. The paper reports 3; it uses a different
        //         tokenization. We assert the true edit distance.
        assert_eq!(levenshtein("NC", "NC"), 0);
        assert_eq!(levenshtein("#2 Ave, 12th St.", "#2 Aven, 12th St."), 1);
        assert_eq!(levenshtein("12th St.", "12th Str"), 1);
        assert_eq!(levenshtein("Chicago", "Chicago, IL"), 4);
    }

    #[test]
    fn bounded_matches_exact_when_within() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("a", "abcdef", 2), None);
    }

    #[test]
    fn jaro_winkler_range_and_identity() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.9611).abs() < 1e-3);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn qgram_examples() {
        assert_eq!(qgram_jaccard("abc", "abc", 2), 1.0);
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
        assert_eq!(qgram_jaccard("ab", "cd", 2), 0.0);
        let s = qgram_jaccard("night", "nacht", 2);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn levenshtein_symmetry_and_identity() {
        let mut rng = MiniRng(0x5151);
        for case in 0..256 {
            let a = rng.string(12);
            let b = rng.string(12);
            assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a), "case {case}");
            assert_eq!(levenshtein(&a, &a), 0, "case {case}");
        }
    }

    #[test]
    fn levenshtein_triangle() {
        let mut rng = MiniRng(0x7272);
        for case in 0..256 {
            let a = rng.string(8);
            let b = rng.string(8);
            let c = rng.string(8);
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            assert!(ac <= ab + bc, "case {case}: {a:?} {b:?} {c:?}");
        }
    }

    #[test]
    fn jaro_winkler_and_qgram_bounds() {
        let mut rng = MiniRng(0x9393);
        for case in 0..256 {
            let a = rng.string(10);
            let b = rng.string(10);
            let s = jaro_winkler(&a, &b);
            assert!((0.0..=1.0).contains(&s), "case {case}: jw {s}");
            let q = 1 + (rng.next() % 3) as usize;
            let s = qgram_jaccard(&a, &b, q);
            assert!((0.0..=1.0).contains(&s), "case {case}: qgram {s}");
        }
    }
}
