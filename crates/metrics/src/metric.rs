//! Per-attribute distance metrics.

use crate::string;
use deptree_relation::pairgen::PairSpec;
use deptree_relation::{Value, ValueType};
use std::fmt;
use std::sync::Arc;

/// Signature of a user-supplied distance function.
pub type CustomDist = Arc<dyn Fn(&Value, &Value) -> f64 + Send + Sync>;

/// A distance metric `d : dom(A) × dom(A) → ℝ≥0` attached to an attribute.
///
/// All built-in variants satisfy non-negativity, identity of indiscernibles
/// and symmetry (§3.3.1). Comparisons involving `Null` return `+∞` (a null
/// is arbitrarily far from everything), except `Null` vs `Null` which is 0.
///
/// ```
/// use deptree_metrics::Metric;
/// use deptree_relation::Value;
///
/// let d = Metric::Levenshtein;
/// assert_eq!(d.dist(&Value::str("Chicago"), &Value::str("Chicago, IL")), 4.0);
/// assert_eq!(Metric::AbsDiff.dist(&Value::int(299), &Value::int(300)), 1.0);
/// ```
#[derive(Clone)]
pub enum Metric {
    /// Discrete metric: 0 if the values are equal, 1 otherwise.
    /// The degenerate metric that turns similarity dependencies back into
    /// their equality-based special cases.
    Equality,
    /// Absolute numeric difference `|a − b|`. Non-numeric values are
    /// compared discretely (0 / ∞).
    AbsDiff,
    /// Levenshtein edit distance on the rendered text.
    Levenshtein,
    /// `1 − jaro_winkler(a, b)`, a similarity turned into a distance in
    /// `[0, 1]`.
    JaroWinkler,
    /// `1 − qgram_jaccard(a, b, q)`.
    QGram(
        /// Gram size `q ≥ 1`.
        usize,
    ),
    /// User-supplied distance function.
    Custom(
        /// Name for display purposes.
        &'static str,
        /// The distance function.
        CustomDist,
    ),
}

impl Metric {
    /// The natural default metric for a declared attribute type:
    /// equality for categorical, edit distance for text, |a−b| for numeric.
    pub fn default_for(ty: ValueType) -> Metric {
        match ty {
            ValueType::Categorical => Metric::Equality,
            ValueType::Text => Metric::Levenshtein,
            ValueType::Numeric => Metric::AbsDiff,
        }
    }

    /// Distance between two values.
    pub fn dist(&self, a: &Value, b: &Value) -> f64 {
        match (a.is_null(), b.is_null()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return f64::INFINITY,
            _ => {}
        }
        match self {
            Metric::Equality => {
                if a == b {
                    0.0
                } else {
                    1.0
                }
            }
            Metric::AbsDiff => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x - y).abs(),
                _ => {
                    if a == b {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                }
            },
            Metric::Levenshtein => string::levenshtein(&a.render(), &b.render()) as f64,
            Metric::JaroWinkler => 1.0 - string::jaro_winkler(&a.render(), &b.render()),
            Metric::QGram(q) => 1.0 - string::qgram_jaccard(&a.render(), &b.render(), *q),
            Metric::Custom(_, f) => f(a, b),
        }
    }

    /// Similarity view: `1 / (1 + dist)`, monotone decreasing in distance,
    /// equal to 1 exactly when the distance is 0.
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        1.0 / (1.0 + self.dist(a, b))
    }

    /// The candidate-generation class of the predicate `dist(a, b) ≤ t`.
    ///
    /// Completeness contract: every value pair with distance ≤ `t` under this
    /// metric matches the returned [`PairSpec`] (the spec may admit more —
    /// candidates are verified against the exact metric).  Unindexable
    /// metrics map to [`PairSpec::All`], the full-scan fallback; an
    /// unsatisfiable threshold maps to [`PairSpec::Empty`].
    pub fn pair_spec(&self, t: f64) -> PairSpec {
        if t.is_nan() {
            // dist ≤ NaN never holds
            return PairSpec::Empty;
        }
        match self {
            Metric::Equality => {
                if t < 0.0 {
                    PairSpec::Empty
                } else if t < 1.0 {
                    PairSpec::Eq
                } else {
                    // every pair, even unequal ones, sits within the threshold
                    PairSpec::All
                }
            }
            Metric::AbsDiff => {
                if t < 0.0 {
                    PairSpec::Empty
                } else {
                    PairSpec::Band(t)
                }
            }
            Metric::Levenshtein => {
                if t < 0.0 {
                    PairSpec::Empty
                } else if t >= usize::MAX as f64 {
                    PairSpec::All
                } else {
                    PairSpec::Edit(t as usize)
                }
            }
            Metric::JaroWinkler | Metric::QGram(_) => {
                if t < 0.0 {
                    PairSpec::Empty
                } else {
                    PairSpec::All
                }
            }
            // a custom distance may return anything, including negatives
            Metric::Custom(..) => PairSpec::All,
        }
    }
}

impl fmt::Debug for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Equality => write!(f, "Equality"),
            Metric::AbsDiff => write!(f, "AbsDiff"),
            Metric::Levenshtein => write!(f, "Levenshtein"),
            Metric::JaroWinkler => write!(f, "JaroWinkler"),
            Metric::QGram(q) => write!(f, "QGram({q})"),
            Metric::Custom(name, _) => write!(f, "Custom({name})"),
        }
    }
}

impl PartialEq for Metric {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Metric::Equality, Metric::Equality)
            | (Metric::AbsDiff, Metric::AbsDiff)
            | (Metric::Levenshtein, Metric::Levenshtein)
            | (Metric::JaroWinkler, Metric::JaroWinkler) => true,
            (Metric::QGram(a), Metric::QGram(b)) => a == b,
            (Metric::Custom(_, a), Metric::Custom(_, b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_metric() {
        let m = Metric::Equality;
        assert_eq!(m.dist(&Value::str("a"), &Value::str("a")), 0.0);
        assert_eq!(m.dist(&Value::str("a"), &Value::str("b")), 1.0);
        assert_eq!(m.dist(&Value::int(1), &Value::int(2)), 1.0);
    }

    #[test]
    fn absdiff_mixed_numeric() {
        let m = Metric::AbsDiff;
        assert_eq!(m.dist(&Value::int(299), &Value::float(300.5)), 1.5);
        assert_eq!(m.dist(&Value::str("x"), &Value::str("x")), 0.0);
        assert_eq!(m.dist(&Value::str("x"), &Value::int(1)), f64::INFINITY);
    }

    #[test]
    fn null_semantics() {
        for m in [Metric::Equality, Metric::AbsDiff, Metric::Levenshtein] {
            assert_eq!(m.dist(&Value::Null, &Value::Null), 0.0);
            assert_eq!(m.dist(&Value::Null, &Value::int(1)), f64::INFINITY);
        }
    }

    #[test]
    fn custom_metric() {
        let m = Metric::Custom(
            "first-char",
            Arc::new(|a: &Value, b: &Value| {
                let fa = a.render().chars().next();
                let fb = b.render().chars().next();
                if fa == fb {
                    0.0
                } else {
                    1.0
                }
            }),
        );
        assert_eq!(m.dist(&Value::str("apple"), &Value::str("ant")), 0.0);
        assert_eq!(m.dist(&Value::str("apple"), &Value::str("pear")), 1.0);
        assert_eq!(m, m.clone());
    }

    #[test]
    fn similarity_monotone() {
        let m = Metric::Levenshtein;
        let near = m.similarity(&Value::str("Chicago"), &Value::str("Chicago, IL"));
        let far = m.similarity(&Value::str("Chicago"), &Value::str("San Francisco"));
        assert!(near > far);
        assert_eq!(m.similarity(&Value::str("x"), &Value::str("x")), 1.0);
    }

    #[test]
    fn defaults_per_type() {
        assert_eq!(
            Metric::default_for(ValueType::Categorical),
            Metric::Equality
        );
        assert_eq!(Metric::default_for(ValueType::Text), Metric::Levenshtein);
        assert_eq!(Metric::default_for(ValueType::Numeric), Metric::AbsDiff);
    }

    #[test]
    fn pair_specs_per_metric() {
        assert_eq!(Metric::Equality.pair_spec(-0.5), PairSpec::Empty);
        assert_eq!(Metric::Equality.pair_spec(0.0), PairSpec::Eq);
        assert_eq!(Metric::Equality.pair_spec(0.9), PairSpec::Eq);
        assert_eq!(Metric::Equality.pair_spec(1.0), PairSpec::All);
        assert_eq!(Metric::AbsDiff.pair_spec(2.5), PairSpec::Band(2.5));
        assert_eq!(Metric::AbsDiff.pair_spec(-1.0), PairSpec::Empty);
        assert_eq!(Metric::Levenshtein.pair_spec(2.7), PairSpec::Edit(2));
        assert_eq!(Metric::Levenshtein.pair_spec(0.0), PairSpec::Edit(0));
        assert_eq!(Metric::Levenshtein.pair_spec(f64::NAN), PairSpec::Empty);
        assert_eq!(Metric::JaroWinkler.pair_spec(0.2), PairSpec::All);
        assert_eq!(Metric::QGram(2).pair_spec(0.2), PairSpec::All);
    }
}
