//! Fuzzy resemblance relations for fuzzy functional dependencies (§3.6).

use crate::metric::Metric;
use deptree_relation::Value;
use std::fmt;
use std::sync::Arc;

/// Signature of a user-supplied resemblance function.
pub type CustomMu = Arc<dyn Fn(&Value, &Value) -> f64 + Send + Sync>;

/// A fuzzy resemblance relation `EQUAL`: `μ_EQ(a, b) ∈ [0, 1]`, where
/// larger means "more equal" (§3.6.1). It should be reflexive
/// (`μ(a, a) = 1`) and symmetric; the built-in variants are.
#[derive(Clone)]
pub enum Resemblance {
    /// Crisp equality: `μ = 1` if `a = b`, else 0. With this resemblance on
    /// all attributes, an FFD degenerates to an FD (§3.6.2).
    Crisp,
    /// The survey's numeric resemblance `μ(a, b) = 1 / (1 + β·|a − b|)`.
    /// Non-numeric pairs fall back to crisp equality.
    InverseNumeric(
        /// Sensitivity β > 0; larger β makes values "less equal" faster.
        f64,
    ),
    /// `μ = 1 / (1 + d(a, b))` for an arbitrary metric `d`.
    FromMetric(
        /// The underlying distance metric.
        Metric,
    ),
    /// User-supplied resemblance.
    Custom(
        /// Name for display purposes.
        &'static str,
        /// The resemblance function.
        CustomMu,
    ),
}

impl Resemblance {
    /// Evaluate `μ_EQ(a, b)`.
    ///
    /// `Null` resembles only `Null` (μ = 1); any other pairing has μ = 0.
    pub fn mu(&self, a: &Value, b: &Value) -> f64 {
        match (a.is_null(), b.is_null()) {
            (true, true) => return 1.0,
            (true, false) | (false, true) => return 0.0,
            _ => {}
        }
        match self {
            Resemblance::Crisp => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            Resemblance::InverseNumeric(beta) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => 1.0 / (1.0 + beta * (x - y).abs()),
                _ => {
                    if a == b {
                        1.0
                    } else {
                        0.0
                    }
                }
            },
            Resemblance::FromMetric(m) => m.similarity(a, b),
            Resemblance::Custom(_, f) => f(a, b).clamp(0.0, 1.0),
        }
    }
}

impl fmt::Debug for Resemblance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resemblance::Crisp => write!(f, "Crisp"),
            Resemblance::InverseNumeric(b) => write!(f, "InverseNumeric(β={b})"),
            Resemblance::FromMetric(m) => write!(f, "FromMetric({m:?})"),
            Resemblance::Custom(name, _) => write!(f, "Custom({name})"),
        }
    }
}

impl PartialEq for Resemblance {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Resemblance::Crisp, Resemblance::Crisp) => true,
            (Resemblance::InverseNumeric(a), Resemblance::InverseNumeric(b)) => a == b,
            (Resemblance::FromMetric(a), Resemblance::FromMetric(b)) => a == b,
            (Resemblance::Custom(_, a), Resemblance::Custom(_, b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ffd_mu_computations() {
        // §3.6.1: μ_EQ(NC, NC) = 1;
        // μ_EQ(299, 300) = 1/(1+|299−300|) = 1/2 with β = 1 (price);
        // μ_EQ(29, 20) = 1/(1+10·|29−20|) = 1/91 with β = 10 (tax).
        let name = Resemblance::Crisp;
        assert_eq!(name.mu(&Value::str("NC"), &Value::str("NC")), 1.0);
        let price = Resemblance::InverseNumeric(1.0);
        assert!((price.mu(&Value::int(299), &Value::int(300)) - 0.5).abs() < 1e-12);
        let tax = Resemblance::InverseNumeric(10.0);
        assert!((tax.mu(&Value::int(29), &Value::int(20)) - 1.0 / 91.0).abs() < 1e-12);
    }

    #[test]
    fn reflexive_and_symmetric() {
        let rs = [
            Resemblance::Crisp,
            Resemblance::InverseNumeric(2.0),
            Resemblance::FromMetric(Metric::Levenshtein),
        ];
        let vals = [Value::int(5), Value::int(9), Value::str("ab")];
        for r in &rs {
            for v in &vals {
                assert_eq!(r.mu(v, v), 1.0, "{r:?} not reflexive on {v}");
            }
            for a in &vals {
                for b in &vals {
                    assert_eq!(r.mu(a, b), r.mu(b, a), "{r:?} not symmetric");
                }
            }
        }
    }

    #[test]
    fn null_resemblance() {
        let r = Resemblance::InverseNumeric(1.0);
        assert_eq!(r.mu(&Value::Null, &Value::Null), 1.0);
        assert_eq!(r.mu(&Value::Null, &Value::int(1)), 0.0);
    }

    #[test]
    fn custom_is_clamped() {
        let r = Resemblance::Custom("overshoot", Arc::new(|_: &Value, _: &Value| 3.5));
        assert_eq!(r.mu(&Value::int(1), &Value::int(2)), 1.0);
    }
}
