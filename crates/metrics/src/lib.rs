//! Distance/similarity machinery for heterogeneous data (survey §3).
//!
//! Three layers:
//!
//! * raw string/numeric distance functions ([`string`], e.g. edit distance,
//!   Jaro–Winkler, q-gram Jaccard);
//! * [`Metric`] — a per-attribute distance `dom(A) × dom(A) → ℝ≥0` used by
//!   MFDs, NEDs, DDs, CDs, PACs, MDs and SDs;
//! * [`DistRange`] — a *differential function* φ\[A\]: a range of metric
//!   distances specified with {=, <, >, ≤, ≥}, the building block of
//!   differential dependencies;
//! * [`Resemblance`] — a fuzzy resemblance relation μ_EQ ∈ \[0, 1\] for
//!   fuzzy functional dependencies (larger means "more equal").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod diff;
mod fuzzy;
mod metric;
pub mod string;

pub use diff::DistRange;
pub use fuzzy::Resemblance;
pub use metric::Metric;
