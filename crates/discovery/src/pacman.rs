//! PAC-Man (Korn et al., §3.5.3): instantiate probabilistic approximate
//! constraints from rule *templates* — the user names the attribute sides,
//! the system fits the tolerances and the confidence from training data,
//! then monitors new data for alarms.

use deptree_core::{Dependency, Pac};
use deptree_metrics::Metric;
use deptree_relation::{AttrId, Relation};

/// A PAC rule template: attribute sides without parameters.
#[derive(Debug, Clone)]
pub struct PacTemplate {
    /// Determinant attributes (each gets a fitted tolerance Δ).
    pub lhs: Vec<AttrId>,
    /// Dependent attributes (each gets a fitted tolerance ε).
    pub rhs: Vec<AttrId>,
}

/// Configuration for [`instantiate`].
#[derive(Debug, Clone)]
pub struct PacManConfig {
    /// Quantile of the pairwise LHS distance distribution used as Δ
    /// (0.5 = median: "pairs at least as close as a typical pair").
    pub lhs_quantile: f64,
    /// Quantile of the RHS distances *among LHS-close pairs* used as ε.
    pub rhs_quantile: f64,
    /// Safety margin subtracted from the measured confidence so the
    /// fitted PAC holds on the training data with slack.
    pub confidence_margin: f64,
}

impl Default for PacManConfig {
    fn default() -> Self {
        PacManConfig {
            lhs_quantile: 0.5,
            rhs_quantile: 0.9,
            confidence_margin: 0.05,
        }
    }
}

fn quantile(mut xs: Vec<f64>, q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let idx = ((q * (xs.len() - 1) as f64).round() as usize).min(xs.len() - 1);
    Some(xs[idx])
}

/// Fit a PAC from training data: Δ from the LHS distance distribution,
/// ε from the conditional RHS distribution, δ from the measured
/// probability minus the margin. `None` when the data gives no usable
/// distances.
pub fn instantiate(train: &Relation, template: &PacTemplate, cfg: &PacManConfig) -> Option<Pac> {
    let metric = Metric::AbsDiff;
    // Δ per LHS attribute.
    let mut lhs = Vec::with_capacity(template.lhs.len());
    for &a in &template.lhs {
        let dists: Vec<f64> = train
            .row_pairs()
            .map(|(i, j)| metric.dist(train.value(i, a), train.value(j, a)))
            .filter(|d| d.is_finite())
            .collect();
        lhs.push((a, metric.clone(), quantile(dists, cfg.lhs_quantile)?));
    }
    // ε per RHS attribute, conditioned on LHS closeness.
    let close = |i: usize, j: usize| {
        lhs.iter()
            .all(|(a, m, t)| m.dist(train.value(i, *a), train.value(j, *a)) <= *t)
    };
    let mut rhs = Vec::with_capacity(template.rhs.len());
    for &b in &template.rhs {
        let dists: Vec<f64> = train
            .row_pairs()
            .filter(|&(i, j)| close(i, j))
            .map(|(i, j)| metric.dist(train.value(i, b), train.value(j, b)))
            .filter(|d| d.is_finite())
            .collect();
        rhs.push((b, metric.clone(), quantile(dists, cfg.rhs_quantile)?));
    }
    // δ: measured, with margin, floored at a meaningful level.
    let probe = Pac::new(train.schema(), lhs.clone(), rhs.clone(), 1.0);
    let delta = (probe.probability(train) - cfg.confidence_margin).clamp(0.05, 1.0);
    Some(Pac::new(train.schema(), lhs, rhs, delta))
}

/// The monitoring side of PAC-Man: `true` when `data` violates the fitted
/// constraint (time to alarm).
pub fn alarm(data: &Relation, pac: &Pac) -> bool {
    !pac.holds(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r6;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn fitted_pac_holds_on_training_data() {
        let r = hotels_r6();
        let s = r.schema();
        let template = PacTemplate {
            lhs: vec![s.id("price")],
            rhs: vec![s.id("tax")],
        };
        let pac = instantiate(&r, &template, &PacManConfig::default()).unwrap();
        assert!(pac.holds(&r), "{pac} must hold on its own training data");
        assert!(!alarm(&r, &pac));
    }

    #[test]
    fn monitor_alarms_on_drift() {
        // Train on a clean linear tax = price/10 relationship; monitor data
        // with a broken tax column.
        let mk = |broken: bool| {
            let mut b = RelationBuilder::new()
                .attr("price", ValueType::Numeric)
                .attr("tax", ValueType::Numeric);
            for i in 0..30i64 {
                let price = 100 + i * 10;
                let tax = if broken && i % 2 == 0 {
                    999
                } else {
                    price / 10
                };
                b = b.row(vec![price.into(), tax.into()]);
            }
            b.build().unwrap()
        };
        let train = mk(false);
        let s = train.schema();
        let template = PacTemplate {
            lhs: vec![s.id("price")],
            rhs: vec![s.id("tax")],
        };
        let pac = instantiate(&train, &template, &PacManConfig::default()).unwrap();
        assert!(!alarm(&train, &pac));
        assert!(alarm(&mk(true), &pac), "{pac} should alarm on drifted data");
    }

    #[test]
    fn degenerate_training_data() {
        let r = RelationBuilder::new()
            .attr("price", ValueType::Numeric)
            .attr("tax", ValueType::Numeric)
            .row(vec![100.into(), 10.into()])
            .build()
            .unwrap();
        let s = r.schema();
        let template = PacTemplate {
            lhs: vec![s.id("price")],
            rhs: vec![s.id("tax")],
        };
        // One row → no pairs → no distances to fit from.
        assert!(instantiate(&r, &template, &PacManConfig::default()).is_none());
    }
}
