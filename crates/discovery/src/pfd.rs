//! PFD discovery (Wang et al.): counting-based probability computation,
//! for one table and merged across heterogeneous sources (§2.2.3).

use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::{Dependency, Fd, Pfd};
use deptree_relation::{AttrSet, Relation};

/// Configuration for [`discover`] / [`discover_multi_source`].
#[derive(Debug, Clone)]
pub struct PfdConfig {
    /// Minimum probability `p`.
    pub min_probability: f64,
    /// Maximum LHS size (the level-wise TANE extension's depth).
    pub max_lhs: usize,
}

impl Default for PfdConfig {
    fn default() -> Self {
        PfdConfig {
            min_probability: 0.9,
            max_lhs: 2,
        }
    }
}

/// Discover PFDs `X →ₚ A` with `P(X → A, r) ≥ p` on a single table —
/// the first counting algorithm of Wang et al.: merge tuples per distinct
/// `X`-value and average the modal-value fractions.
pub fn discover(r: &Relation, cfg: &PfdConfig) -> Vec<Pfd> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per candidate, row ticks for the
/// counting scan. PFDs are emitted only after `holds`, so partial results
/// are sound.
///
/// Each level's candidates are evaluated concurrently on the engine pool:
/// the node/row budget is reserved for the whole level up front (so the
/// processed prefix is thread-count-independent), the probability scans —
/// the pure, expensive part — run in parallel, and minimality filtering
/// replays serially in candidate order.
pub fn discover_bounded(r: &Relation, cfg: &PfdConfig, exec: &Exec) -> Outcome<Vec<Pfd>> {
    let threads = exec.threads();
    let row_cost = r.n_rows() as u64;
    let mut out = Vec::new();
    let mut level: Vec<AttrSet> = r.schema().ids().map(AttrSet::single).collect();
    let mut depth = 1usize;
    // Track (lhs, rhs) pairs already satisfied to keep results minimal:
    // a PFD with a superset LHS of a found PFD is implied "in spirit"
    // (probability is not monotone, but reporting minimal LHS matches the
    // paper's output form).
    let mut found: Vec<(AttrSet, AttrSet)> = Vec::new();
    'search: while depth <= cfg.max_lhs {
        let candidates: Vec<(AttrSet, AttrSet)> = level
            .iter()
            .flat_map(|&lhs| {
                r.schema()
                    .ids()
                    .filter(move |&rhs| !lhs.contains(rhs))
                    .map(move |rhs| (lhs, AttrSet::single(rhs)))
            })
            .collect();
        let want = candidates.len() as u64;
        let prefix = exec.try_reserve_batch(want, row_cost) as usize;
        let batch = &candidates[..prefix];
        // Pure phase: the per-candidate probability scan. The minimality
        // check is deferred to the serial merge — within a level all LHS
        // sets have equal size, so no same-level emission can dominate
        // another candidate, and evaluating a to-be-dominated candidate
        // here costs nothing the serial path didn't also pay.
        let verdicts = pool::map(threads, batch, |_, &(lhs, rhs_set)| {
            if exec.interrupted() {
                // Deadline/cancellation only; deterministic budgets never
                // cut the granted batch.
                return None;
            }
            let pfd = Pfd::new(Fd::new(r.schema(), lhs, rhs_set), cfg.min_probability);
            pfd.holds(r).then_some(pfd)
        });
        for (&(lhs, rhs_set), pfd) in batch.iter().zip(verdicts) {
            if found
                .iter()
                .any(|(l, rr)| l.is_subset(lhs) && *rr == rhs_set)
            {
                continue;
            }
            if let Some(pfd) = pfd {
                found.push((lhs, rhs_set));
                out.push(pfd);
            }
        }
        if prefix < candidates.len() {
            break 'search;
        }
        // Next level: all (depth+1)-sets built from current level.
        let mut next = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let u = level[i].union(level[j]);
                if u.len() == depth + 1 && !next.contains(&u) {
                    next.push(u);
                }
            }
        }
        level = next;
        depth += 1;
    }
    exec.finish(out)
}

/// Merge PFD probabilities across sources — the second algorithm of Wang
/// et al. for pay-as-you-go integration: compute per-source probabilities
/// and combine them weighted by source size.
pub fn merged_probability(sources: &[Relation], lhs: AttrSet, rhs: AttrSet) -> f64 {
    let total: usize = sources.iter().map(Relation::n_rows).sum();
    if total == 0 {
        return 1.0;
    }
    sources
        .iter()
        .filter(|s| s.n_rows() > 0)
        .map(|s| {
            let pfd = Pfd::new(Fd::new(s.schema(), lhs, rhs), 1.0);
            pfd.probability(s) * s.n_rows() as f64 / total as f64
        })
        .sum()
}

/// Discover PFDs across multiple (schema-aligned) sources using the
/// merged probability.
pub fn discover_multi_source(sources: &[Relation], cfg: &PfdConfig) -> Vec<(Fd, f64)> {
    let Some(first) = sources.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for a in first.schema().ids() {
        for b in first.schema().ids() {
            if a == b {
                continue;
            }
            let lhs = AttrSet::single(a);
            let rhs = AttrSet::single(b);
            let p = merged_probability(sources, lhs, rhs);
            if p >= cfg.min_probability {
                out.push((Fd::new(first.schema(), lhs, rhs), p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn r5_probabilities_drive_discovery() {
        // P(address → region) = 3/4: discovered at p = 0.7, not at 0.8.
        let r = hotels_r5();
        let loose = discover(
            &r,
            &PfdConfig {
                min_probability: 0.7,
                max_lhs: 1,
            },
        );
        let addr = AttrSet::single(r.schema().id("address"));
        let region = AttrSet::single(r.schema().id("region"));
        assert!(loose
            .iter()
            .any(|p| p.embedded().lhs() == addr && p.embedded().rhs() == region));
        let strict = discover(
            &r,
            &PfdConfig {
                min_probability: 0.8,
                max_lhs: 1,
            },
        );
        assert!(!strict
            .iter()
            .any(|p| p.embedded().lhs() == addr && p.embedded().rhs() == region));
    }

    #[test]
    fn all_discovered_hold() {
        let r = hotels_r5();
        for p in discover(&r, &PfdConfig::default()) {
            assert!(p.holds(&r), "{p}");
        }
    }

    #[test]
    fn minimal_lhs_reported() {
        let r = hotels_r5();
        let res = discover(
            &r,
            &PfdConfig {
                min_probability: 0.7,
                max_lhs: 2,
            },
        );
        for p in &res {
            if p.embedded().lhs().len() == 2 {
                // No reported 1-attribute subset with the same RHS.
                for a in p.embedded().lhs().iter() {
                    let sub = p.embedded().lhs().remove(a);
                    assert!(
                        !res.iter().any(|q| q.embedded().lhs() == sub
                            && q.embedded().rhs() == p.embedded().rhs()),
                        "{p} is not LHS-minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_source_merge_weighted_by_size() {
        // Source 1 (4 rows): FD holds exactly (P = 1).
        // Source 2 (2 rows): P = 1/2 for a → b (one a-value split).
        let mk = |rows: Vec<(&str, &str)>| {
            let mut b = RelationBuilder::new()
                .attr("a", ValueType::Categorical)
                .attr("b", ValueType::Categorical);
            for (x, y) in rows {
                b = b.row(vec![x.into(), y.into()]);
            }
            b.build().unwrap()
        };
        let s1 = mk(vec![("x", "1"), ("x", "1"), ("y", "2"), ("y", "2")]);
        let s2 = mk(vec![("z", "3"), ("z", "4")]);
        let a = AttrSet::single(s1.schema().id("a"));
        let b = AttrSet::single(s1.schema().id("b"));
        let p = merged_probability(&[s1.clone(), s2.clone()], a, b);
        // 1.0 * 4/6 + 0.5 * 2/6 = 5/6.
        assert!((p - 5.0 / 6.0).abs() < 1e-12);
        let found = discover_multi_source(
            &[s1, s2],
            &PfdConfig {
                min_probability: 0.8,
                max_lhs: 1,
            },
        );
        assert!(found
            .iter()
            .any(|(fd, pp)| fd.lhs() == a && fd.rhs() == b && *pp > 0.8));
    }

    #[test]
    fn empty_sources_edge_case() {
        assert!(discover_multi_source(&[], &PfdConfig::default()).is_empty());
    }
}
