//! Pay-as-you-go comparable-dependency discovery (Song et al., §3.4.3):
//! dependencies are derived *incrementally* as new attribute-comparison
//! functions are identified in the dataspace — given the currently known
//! similarity functions and a newly identified one, generate the CDs the
//! new function participates in.

use deptree_core::{Cd, SimFn};
use deptree_relation::Relation;

/// Configuration for [`discover_incremental`].
#[derive(Debug, Clone)]
pub struct CdConfig {
    /// Minimum LHS-similar pairs.
    pub min_support: usize,
    /// Maximum fraction of LHS-similar pairs violating the RHS (the g3
    /// error-validation bound of §3.4.3; exact validation is NP-complete,
    /// this measures the pairwise surrogate).
    pub max_error: f64,
    /// Maximum LHS similarity functions per CD.
    pub max_lhs: usize,
}

impl Default for CdConfig {
    fn default() -> Self {
        CdConfig {
            min_support: 1,
            max_error: 0.0,
            max_lhs: 2,
        }
    }
}

/// Given the already-identified similarity functions `known` and a `new`
/// one, emit the valid CDs involving the new function — both as RHS
/// (known-LHS conjunctions → new) and as an LHS atom (new + known → each
/// known RHS). The pay-as-you-go loop calls this once per newly matched
/// attribute pair.
pub fn discover_incremental(r: &Relation, known: &[SimFn], new: &SimFn, cfg: &CdConfig) -> Vec<Cd> {
    let mut out = Vec::new();
    // New function as the RHS.
    for lhs in lhs_combinations(known, cfg.max_lhs) {
        if lhs.is_empty() {
            continue;
        }
        let cd = Cd::new(r.schema(), lhs, new.clone());
        if accept(r, &cd, cfg) {
            out.push(cd);
        }
    }
    // New function as an LHS atom.
    for rhs in known {
        for mut lhs in lhs_combinations(known, cfg.max_lhs.saturating_sub(1)) {
            if lhs.iter().any(|f| same_attrs(f, rhs)) || same_attrs(new, rhs) {
                continue;
            }
            lhs.push(new.clone());
            let cd = Cd::new(r.schema(), lhs, rhs.clone());
            if accept(r, &cd, cfg) {
                out.push(cd);
            }
        }
    }
    out
}

fn same_attrs(a: &SimFn, b: &SimFn) -> bool {
    (a.a, a.b) == (b.a, b.b) || (a.a, a.b) == (b.b, b.a)
}

fn lhs_combinations(known: &[SimFn], max: usize) -> Vec<Vec<SimFn>> {
    let mut combos: Vec<Vec<SimFn>> = vec![vec![]];
    for f in known {
        let mut next = combos.clone();
        for c in &combos {
            if c.len() < max && !c.iter().any(|g| same_attrs(g, f)) {
                let mut c2 = c.clone();
                c2.push(f.clone());
                next.push(c2);
            }
        }
        combos = next;
    }
    combos
}

fn accept(r: &Relation, cd: &Cd, cfg: &CdConfig) -> bool {
    let support = r
        .row_pairs()
        .filter(|&(i, j)| cd.lhs_similar(r, i, j))
        .count();
    support >= cfg.min_support && cd.g3_pairs(r) <= cfg.max_error
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_metrics::Metric;
    use deptree_relation::examples::dataspace_cd;

    #[test]
    fn identifying_addr_post_yields_cd1() {
        // The dataspace already knows θ(region, city); identifying
        // θ(addr, post) must produce cd1: θ(region, city) → θ(addr, post).
        let r = dataspace_cd();
        let s = r.schema();
        let known = vec![SimFn::new(
            s.id("region"),
            s.id("city"),
            Metric::Levenshtein,
            5.0,
            5.0,
            5.0,
        )];
        let new = SimFn::new(
            s.id("addr"),
            s.id("post"),
            Metric::Levenshtein,
            7.0,
            9.0,
            6.0,
        );
        let found = discover_incremental(&r, &known, &new, &CdConfig::default());
        assert!(
            found
                .iter()
                .any(|cd| cd.to_string() == "CD: θ(region,city) -> θ(addr,post)"),
            "{:?}",
            found.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
        for cd in &found {
            assert!(cd.holds(&r), "{cd}");
        }
    }

    #[test]
    fn error_budget_gates_acceptance() {
        let mut r = dataspace_cd();
        let s = r.schema().clone();
        // Corrupt one post value: the region→addr CD now has error > 0.
        r.set_value(1, s.id("post"), "somewhere else entirely".into());
        let known = vec![SimFn::new(
            s.id("region"),
            s.id("city"),
            Metric::Levenshtein,
            5.0,
            5.0,
            5.0,
        )];
        let new = SimFn::new(
            s.id("addr"),
            s.id("post"),
            Metric::Levenshtein,
            7.0,
            9.0,
            6.0,
        );
        let strict = discover_incremental(&r, &known, &new, &CdConfig::default());
        assert!(strict.is_empty() || strict.iter().all(|cd| cd.holds(&r)));
        let tolerant = discover_incremental(
            &r,
            &known,
            &new,
            &CdConfig {
                max_error: 0.5,
                ..Default::default()
            },
        );
        assert!(tolerant.len() >= strict.len());
    }

    #[test]
    fn new_function_appears_on_both_sides() {
        let r = dataspace_cd();
        let s = r.schema();
        let known = vec![SimFn::new(
            s.id("addr"),
            s.id("post"),
            Metric::Levenshtein,
            7.0,
            9.0,
            6.0,
        )];
        let new = SimFn::new(
            s.id("region"),
            s.id("city"),
            Metric::Levenshtein,
            5.0,
            5.0,
            5.0,
        );
        let found = discover_incremental(&r, &known, &new, &CdConfig::default());
        // region/city as LHS of addr/post, and possibly as RHS too.
        assert!(found
            .iter()
            .any(|cd| cd.lhs().iter().any(|f| f.a == s.id("region"))));
    }
}
