//! eCFD discovery (Zanzi–Trombetta's "non-constant CFDs with built-in
//! predicates", the survey's \[114\]): mine conditions of the form
//! `A op c` on numeric attributes — with `c` drawn from the attribute's
//! value quantiles — under which an embedded FD holds that fails
//! unconditionally.

use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::{CmpOp, Dependency, ECfd, Fd, PatternOp};
use deptree_relation::{AttrId, AttrSet, Relation, Value, ValueType};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct ECfdConfig {
    /// Minimum tuples the condition must cover.
    pub min_support: usize,
    /// Maximum *variable* LHS attributes (besides the condition attribute).
    pub max_lhs: usize,
    /// Candidate constants per condition attribute (value quantiles).
    pub constants_per_attr: usize,
}

impl Default for ECfdConfig {
    fn default() -> Self {
        ECfdConfig {
            min_support: 2,
            max_lhs: 1,
            constants_per_attr: 4,
        }
    }
}

fn numeric_constants(r: &Relation, attr: AttrId, k: usize) -> Vec<Value> {
    let mut vals: Vec<Value> = r.column(attr).to_vec();
    vals.sort();
    vals.dedup();
    if vals.len() <= k {
        return vals;
    }
    (0..k)
        .map(|q| vals[q * (vals.len() - 1) / (k - 1).max(1)].clone())
        .collect()
}

/// Discover eCFDs `(cond_attr op c), X → A` whose embedded FD fails
/// without the condition (the conditional rules that add information).
pub fn discover(r: &Relation, cfg: &ECfdConfig) -> Vec<ECfd> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per candidate rule, row ticks for
/// each validation scan. eCFDs are emitted only after `holds`, so partial
/// results are sound.
/// Candidates are enumerated in the canonical (condition attribute,
/// constant, operator, variable set, RHS) order, the node/row budget is
/// reserved for the whole batch — cutting it to the same prefix the
/// serial tick-per-candidate loop would process — and the validation
/// scans run concurrently on the engine pool. There is no minimality
/// filter, so the surviving rules are merged straight back in order.
pub fn discover_bounded(r: &Relation, cfg: &ECfdConfig, exec: &Exec) -> Outcome<Vec<ECfd>> {
    let schema = r.schema();
    let threads = exec.threads();
    let row_cost = 2 * r.n_rows() as u64;
    let numeric: Vec<AttrId> = schema
        .iter()
        .filter(|(_, a)| a.ty == ValueType::Numeric)
        .map(|(id, _)| id)
        .collect();
    let mut candidates: Vec<(AttrId, Value, CmpOp, AttrSet, AttrId)> = Vec::new();
    for &cond in &numeric {
        let constants = numeric_constants(r, cond, cfg.constants_per_attr);
        for c in &constants {
            for op in [CmpOp::Leq, CmpOp::Gt] {
                for vars in crate::mvd_subsets(r.all_attrs().remove(cond), cfg.max_lhs) {
                    for rhs in schema.ids() {
                        if vars.contains(rhs) || rhs == cond {
                            continue;
                        }
                        candidates.push((cond, c.clone(), op, vars, rhs));
                    }
                }
            }
        }
    }
    let want = candidates.len() as u64;
    let prefix = exec.try_reserve_batch(want, row_cost) as usize;
    let batch = &candidates[..prefix];
    let verdicts = pool::map(threads, batch, |_, (cond, c, op, vars, rhs)| {
        if exec.interrupted() {
            // Deadline/cancellation only; deterministic budgets never cut
            // the granted batch.
            return None;
        }
        // Skip when the unconditioned FD already holds — the condition
        // then adds nothing.
        let plain = Fd::new(schema, *vars, AttrSet::single(*rhs));
        if plain.holds(r) {
            return None;
        }
        let ecfd = ECfd::new(
            schema,
            vars.insert(*cond),
            AttrSet::single(*rhs),
            vec![(*cond, PatternOp::Cmp(*op, c.clone()))],
        );
        (ecfd.matching_rows(r).len() >= cfg.min_support && ecfd.holds(r)).then_some(ecfd)
    });
    let out: Vec<ECfd> = verdicts.into_iter().flatten().collect();
    exec.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;

    #[test]
    fn finds_the_papers_ecfd1_shape() {
        // §2.5.5: rate ≤ 200, name = _ → address = _ — name → address
        // fails globally on r5 but holds among the low-rate tuples.
        let r = hotels_r5();
        let s = r.schema();
        let found = discover(&r, &ECfdConfig::default());
        let hit = found.iter().find(|e| {
            e.lhs().contains(s.id("rate"))
                && e.lhs().contains(s.id("name"))
                && e.rhs() == AttrSet::single(s.id("address"))
                && matches!(e.cell(s.id("rate")), PatternOp::Cmp(CmpOp::Leq, _))
        });
        assert!(
            hit.is_some(),
            "{:?}",
            found.iter().map(|e| e.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_found_hold_with_support() {
        let r = hotels_r5();
        let cfg = ECfdConfig::default();
        for e in discover(&r, &cfg) {
            assert!(e.holds(&r), "{e}");
            assert!(e.matching_rows(&r).len() >= cfg.min_support, "{e}");
        }
    }

    #[test]
    fn unconditioned_fds_filtered_out() {
        // address → name holds globally on r5 (all names Hyatt): no eCFD
        // with that embedded FD should be reported.
        let r = hotels_r5();
        let s = r.schema();
        let found = discover(&r, &ECfdConfig::default());
        assert!(!found.iter().any(|e| {
            e.rhs() == AttrSet::single(s.id("name")) && e.lhs().contains(s.id("address"))
        }));
    }

    #[test]
    fn constants_are_quantiles_of_the_column() {
        let r = hotels_r5();
        let cs = numeric_constants(&r, r.schema().id("rate"), 4);
        // Distinct rates {189, 230, 250}: all become candidates.
        assert_eq!(cs.len(), 3);
    }
}
