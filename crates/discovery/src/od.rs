//! Order-dependency discovery (§4.2.3): a FASTOD-flavoured search that
//! validates candidate ODs on sorted partitions in `O(n log n)` per
//! candidate, over the direction combinations of marked attributes.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dependency, Direction, Od};
use deptree_relation::{AttrId, AttrSet, Relation, Value};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct OdConfig {
    /// Maximum marked attributes on the LHS.
    pub max_lhs: usize,
}

impl Default for OdConfig {
    fn default() -> Self {
        OdConfig { max_lhs: 1 }
    }
}

/// Validate the single-attribute OD `A^da → B^db` in `O(n log n)`:
/// sort rows by `A`; within each equal-`A` run `B` must be constant, and
/// the per-run `B` values must be monotone in the marked direction.
pub fn validate_single(r: &Relation, a: AttrId, da: Direction, b: AttrId, db: Direction) -> bool {
    let order = r.sorted_rows(AttrSet::single(a));
    let mut prev_run_b: Option<&Value> = None;
    let mut i = 0usize;
    while i < order.len() {
        // Delimit the equal-A run.
        let mut j = i + 1;
        while j < order.len() && r.value(order[j], a) == r.value(order[i], a) {
            j += 1;
        }
        let run_b = r.value(order[i], b);
        // Ties on A force equality on B (both directions apply).
        if order[i..j].iter().any(|&t| r.value(t, b) != run_b) {
            return false;
        }
        if let Some(pb) = prev_run_b {
            // prev run has smaller A under Asc; check B direction.
            let ord = pb.numeric_cmp(run_b);
            let ok = match (da, db) {
                (Direction::Asc, Direction::Asc) | (Direction::Desc, Direction::Desc) => {
                    ord != std::cmp::Ordering::Greater
                }
                _ => ord != std::cmp::Ordering::Less,
            };
            if !ok {
                return false;
            }
        }
        prev_run_b = Some(run_b);
        i = j;
    }
    true
}

/// Cheap deterministic prefilter for compound candidates: scan all pairs
/// drawn from a strided sample of at most [`PREFILTER_ROWS`] rows. Any
/// violating sample pair refutes the OD outright, skipping the full
/// validation; a clean sample proves nothing, so the full check still
/// runs. Output is therefore unchanged.
fn sample_refutes(r: &Relation, od: &Od) -> bool {
    const PREFILTER_ROWS: usize = 64;
    let n = r.n_rows();
    let stride = (n / PREFILTER_ROWS).max(1);
    let rows: Vec<usize> = (0..n).step_by(stride).take(PREFILTER_ROWS).collect();
    for (x, &i) in rows.iter().enumerate() {
        for &j in &rows[x + 1..] {
            if !od.pair_ok(r, i, j) || !od.pair_ok(r, j, i) {
                return true;
            }
        }
    }
    false
}

/// Discover all valid single-attribute ODs over numeric-typed attribute
/// pairs, canonicalized so the LHS mark is always ascending
/// (`A^≥ → B^d` equals `A^≤ → B^d̄`).
pub fn discover(r: &Relation, cfg: &OdConfig) -> Vec<Od> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: each candidate OD costs one node tick plus one
/// row tick per row validated. ODs are emitted only after validation, so
/// partial results are sound; unvisited candidates are forfeit.
pub fn discover_bounded(r: &Relation, cfg: &OdConfig, exec: &Exec) -> Outcome<Vec<Od>> {
    let mut out = Vec::new();
    let attrs: Vec<AttrId> = r.schema().ids().collect();
    'single: for &a in &attrs {
        for &b in &attrs {
            if a == b {
                continue;
            }
            for db in [Direction::Asc, Direction::Desc] {
                if !exec.tick_node() || !exec.tick_rows(r.n_rows() as u64) {
                    break 'single;
                }
                if validate_single(r, a, Direction::Asc, b, db) {
                    out.push(Od::new(
                        r.schema(),
                        vec![(a, Direction::Asc)],
                        vec![(b, db)],
                    ));
                }
            }
        }
    }
    // Compound LHS (lexicographic-style pointwise lists) when requested.
    if cfg.max_lhs >= 2 {
        'compound: for &a1 in &attrs {
            for &a2 in &attrs {
                if a1 >= a2 {
                    continue;
                }
                for &b in &attrs {
                    if b == a1 || b == a2 {
                        continue;
                    }
                    for db in [Direction::Asc, Direction::Desc] {
                        if !exec.tick_node() || !exec.tick_rows(3 * r.n_rows() as u64) {
                            break 'compound;
                        }
                        // Only report if neither single-attribute premise
                        // already suffices (minimality).
                        if validate_single(r, a1, Direction::Asc, b, db)
                            || validate_single(r, a2, Direction::Asc, b, db)
                        {
                            continue;
                        }
                        let od = Od::new(
                            r.schema(),
                            vec![(a1, Direction::Asc), (a2, Direction::Asc)],
                            vec![(b, db)],
                        );
                        if !sample_refutes(r, &od) && od.holds(r) {
                            out.push(od);
                        }
                    }
                }
            }
        }
    }
    exec.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn validator_agrees_with_pairwise_semantics() {
        let r = hotels_r7();
        let s = r.schema();
        let attrs: Vec<AttrId> = s.ids().collect();
        for &a in &attrs {
            for &b in &attrs {
                if a == b {
                    continue;
                }
                for db in [Direction::Asc, Direction::Desc] {
                    let od = Od::new(s, vec![(a, Direction::Asc)], vec![(b, db)]);
                    assert_eq!(
                        validate_single(&r, a, Direction::Asc, b, db),
                        od.holds(&r),
                        "{od}"
                    );
                }
            }
        }
    }

    #[test]
    fn discovers_both_paper_ods_on_r7() {
        let r = hotels_r7();
        let s = r.schema();
        let found = discover(&r, &OdConfig::default());
        let has = |lhs: &str, rhs: &str, d: Direction| {
            found
                .iter()
                .any(|od| od.lhs() == [(s.id(lhs), Direction::Asc)] && od.rhs() == [(s.id(rhs), d)])
        };
        // od1: nights^≤ → avg/night^≥ and ofd1-as-od: subtotal^≤ → taxes^≤.
        assert!(has("nights", "avg/night", Direction::Desc));
        assert!(has("subtotal", "taxes", Direction::Asc));
        // All discovered ODs hold.
        for od in &found {
            assert!(od.holds(&r), "{od}");
        }
    }

    #[test]
    fn ties_on_lhs_require_equal_rhs() {
        let r = RelationBuilder::new()
            .attr("a", ValueType::Numeric)
            .attr("b", ValueType::Numeric)
            .row(vec![1.into(), 10.into()])
            .row(vec![1.into(), 20.into()]) // tie on a, different b
            .row(vec![2.into(), 30.into()])
            .build()
            .unwrap();
        let s = r.schema();
        assert!(!validate_single(
            &r,
            s.id("a"),
            Direction::Asc,
            s.id("b"),
            Direction::Asc
        ));
    }

    #[test]
    fn compound_lhs_found_only_when_needed() {
        // Every row pair is pointwise-incomparable on (a1, a2) — the
        // compound premise is vacuous, so the compound OD holds — while b
        // is monotone in neither a1 nor a2 alone.
        let r = RelationBuilder::new()
            .attr("a1", ValueType::Numeric)
            .attr("a2", ValueType::Numeric)
            .attr("b", ValueType::Numeric)
            .row(vec![1.into(), 3.into(), 10.into()])
            .row(vec![2.into(), 2.into(), 20.into()])
            .row(vec![3.into(), 1.into(), 15.into()])
            .build()
            .unwrap();
        let s = r.schema();
        assert!(!validate_single(
            &r,
            s.id("a1"),
            Direction::Asc,
            s.id("b"),
            Direction::Asc
        ));
        assert!(!validate_single(
            &r,
            s.id("a2"),
            Direction::Asc,
            s.id("b"),
            Direction::Asc
        ));
        let found = discover(&r, &OdConfig { max_lhs: 2 });
        let compound = found
            .iter()
            .find(|od| od.lhs().len() == 2 && od.rhs()[0].0 == s.id("b"));
        assert!(compound.is_some(), "{found:?}");
    }
}
