//! FFD mining (Wang–Chen, §3.6.3): a TANE-style small-to-large search for
//! fuzzy functional dependencies with a single right-hand attribute,
//! checking every tuple pair against the μ_EQ monotonicity condition.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dependency, Ffd};
use deptree_metrics::Resemblance;
use deptree_relation::{AttrId, Relation, ValueType};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct FfdConfig {
    /// Maximum LHS size.
    pub max_lhs: usize,
    /// β for the numeric resemblance `1/(1 + β|a−b|)`.
    pub numeric_beta: f64,
}

impl Default for FfdConfig {
    fn default() -> Self {
        FfdConfig {
            max_lhs: 2,
            numeric_beta: 1.0,
        }
    }
}

/// The resemblance relation assigned to an attribute by type: crisp for
/// categorical/text, `1/(1+β|a−b|)` for numeric (the survey's example
/// setup in §3.6.1).
pub fn default_resemblance(ty: ValueType, beta: f64) -> Resemblance {
    match ty {
        ValueType::Numeric => Resemblance::InverseNumeric(beta),
        _ => Resemblance::Crisp,
    }
}

/// Mine non-trivial FFDs `X ⤳ A` with minimal LHS.
///
/// Adding attributes to the LHS can only *lower* `μ(t1[X], t2[X])`
/// (min-combination), which weakens the premise — so once `X ⤳ A` holds,
/// every superset of `X` also yields a valid FFD and only the minimal `X`
/// is reported (the small-to-large pruning of the mining algorithm).
pub fn discover(r: &Relation, cfg: &FfdConfig) -> Vec<Ffd> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per candidate, row ticks for the
/// validation scan. FFDs are emitted only after `holds`, so partial
/// results are sound.
pub fn discover_bounded(r: &Relation, cfg: &FfdConfig, exec: &Exec) -> Outcome<Vec<Ffd>> {
    let schema = r.schema();
    let res = |a: AttrId| default_resemblance(schema.ty(a), cfg.numeric_beta);
    let mut out: Vec<Ffd> = Vec::new();
    let mut found: Vec<(deptree_relation::AttrSet, AttrId)> = Vec::new();
    'search: for lhs_set in crate::mvd_subsets(r.all_attrs(), cfg.max_lhs) {
        for rhs in schema.ids() {
            if lhs_set.contains(rhs) {
                continue;
            }
            if !exec.tick_node() || !exec.tick_rows(r.n_rows() as u64) {
                break 'search;
            }
            if found.iter().any(|(l, a)| l.is_subset(lhs_set) && *a == rhs) {
                continue; // implied by monotonicity of the min-combination
            }
            let lhs: Vec<(AttrId, Resemblance)> = lhs_set.iter().map(|a| (a, res(a))).collect();
            let ffd = Ffd::new(schema, lhs, vec![(rhs, res(rhs))]);
            if ffd.holds(r) {
                found.push((lhs_set, rhs));
                out.push(ffd);
            }
        }
    }
    exec.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r5, hotels_r6};
    use deptree_relation::AttrSet;

    #[test]
    fn all_discovered_hold() {
        for r in [hotels_r5(), hotels_r6()] {
            for ffd in discover(&r, &FfdConfig::default()) {
                assert!(ffd.holds(&r), "{ffd}");
            }
        }
    }

    #[test]
    fn monotonicity_makes_supersets_redundant() {
        // Verify the pruning premise on data: if X ⤳ A holds, X∪{B} ⤳ A
        // holds too.
        let r = hotels_r6();
        let schema = r.schema();
        let res = |a: AttrId| default_resemblance(schema.ty(a), 1.0);
        for base in discover(
            &r,
            &FfdConfig {
                max_lhs: 1,
                numeric_beta: 1.0,
            },
        ) {
            let (lhs_attr, _) = base.lhs()[0].clone();
            let (rhs_attr, _) = base.rhs()[0].clone();
            for extra in schema.ids() {
                if extra == lhs_attr || extra == rhs_attr {
                    continue;
                }
                let bigger = Ffd::new(
                    schema,
                    vec![(lhs_attr, res(lhs_attr)), (extra, res(extra))],
                    vec![(rhs_attr, res(rhs_attr))],
                );
                assert!(bigger.holds(&r), "monotonicity violated: {bigger}");
            }
        }
    }

    #[test]
    fn minimal_lhs_only() {
        let r = hotels_r5();
        let found = discover(
            &r,
            &FfdConfig {
                max_lhs: 2,
                numeric_beta: 1.0,
            },
        );
        for ffd in found.iter().filter(|f| f.lhs().len() == 2) {
            let rhs_attr = ffd.rhs()[0].0;
            for (a, _) in ffd.lhs() {
                let _ = a;
            }
            // No reported single-attribute LHS with the same RHS.
            let sub_found = found.iter().any(|g| {
                g.lhs().len() == 1
                    && g.rhs()[0].0 == rhs_attr
                    && ffd.lhs().iter().any(|(a, _)| *a == g.lhs()[0].0)
            });
            assert!(!sub_found, "{ffd} not minimal");
        }
    }

    #[test]
    fn ffd1_counterexample_not_discovered() {
        // §3.6.1: name, price ⤳ tax fails on r6 (t1/t2 conflict), so it
        // must not be discovered.
        let r = hotels_r6();
        let s = r.schema();
        let found = discover(
            &r,
            &FfdConfig {
                max_lhs: 2,
                numeric_beta: 1.0,
            },
        );
        let target_lhs = AttrSet::from_ids([s.id("name"), s.id("price")]);
        assert!(!found.iter().any(|f| {
            let lhs: AttrSet = f.lhs().iter().map(|(a, _)| *a).collect();
            lhs == target_lhs && f.rhs()[0].0 == s.id("tax")
        }));
    }
}
