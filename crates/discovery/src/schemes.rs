//! Discovery for the decomposition-oriented notations: FHDs (hierarchical
//! schemes, Delobel/Hartmann–Link) and AMVDs (Kenig et al.'s approximate
//! acyclic schemes, §2.6.6), plus OFD validation over attribute pairs.

use deptree_core::{Amvd, Dependency, Fhd, Mvd, Ofd};
use deptree_relation::{AttrSet, Relation};

/// Configuration for the scheme discoveries.
#[derive(Debug, Clone)]
pub struct SchemeConfig {
    /// Maximum size of the hierarchy root / determinant `X`.
    pub max_x: usize,
    /// AMVD accuracy threshold ε.
    pub epsilon: f64,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            max_x: 1,
            epsilon: 0.1,
        }
    }
}

/// Discover FHDs with maximal block counts: for each root `X`, try the
/// finest hierarchy (every remaining attribute its own block); when that
/// fails, fall back to coarser two-block splits. Only genuinely
/// hierarchical results (≥ 2 blocks) are reported — the k = 1 case is MVD
/// discovery's job.
pub fn discover_fhds(r: &Relation, cfg: &SchemeConfig) -> Vec<Fhd> {
    let all = r.all_attrs();
    let mut out = Vec::new();
    for x in crate::mvd_subsets(all, cfg.max_x) {
        let rest = all.difference(x);
        if rest.len() < 2 {
            continue;
        }
        // Finest hierarchy: all singletons.
        let singletons: Vec<AttrSet> = rest.iter().map(AttrSet::single).collect();
        let finest = Fhd::new(r.schema(), x, singletons);
        if finest.holds(r) {
            out.push(finest);
            continue;
        }
        // Two-block splits (Y, rest−Y), canonical side only.
        for y in crate::mvd_subsets(rest, rest.len() - 1) {
            let z = rest.difference(y);
            if z.is_empty() || z < y || z.len() < y.len() {
                continue;
            }
            let fhd = Fhd::new(r.schema(), x, vec![y, z]);
            if fhd.holds(r) {
                out.push(fhd);
            }
        }
    }
    out
}

/// Discover AMVDs: minimal-`X` MVD candidates whose accuracy error is at
/// most ε, reported with their measured error — Kenig et al.'s mining of
/// approximately-lossless schemes, specialized to single splits.
pub fn discover_amvds(r: &Relation, cfg: &SchemeConfig) -> Vec<(Amvd, f64)> {
    let all = r.all_attrs();
    let mut out: Vec<(Amvd, f64)> = Vec::new();
    for x in std::iter::once(AttrSet::empty()).chain(crate::mvd_subsets(all, cfg.max_x)) {
        let rest = all.difference(x);
        if rest.len() < 2 {
            continue;
        }
        for y in crate::mvd_subsets(rest, rest.len() - 1) {
            let z = rest.difference(y);
            if z.is_empty() || (z.len() < rest.len() && z < y) {
                continue;
            }
            // Minimal X per Y: skip if a subset-X variant already reported.
            if out
                .iter()
                .any(|(a, _)| a.embedded().x().is_subset(x) && a.embedded().y() == y)
            {
                continue;
            }
            let amvd = Amvd::new(Mvd::new(r.schema(), x, y), cfg.epsilon);
            let err = amvd.accuracy_error(r);
            if err <= cfg.epsilon {
                out.push((amvd, err));
            }
        }
    }
    out
}

/// Validate all single-attribute pointwise OFDs over numeric attribute
/// pairs (the orderings temporal applications lean on, §4.1.2).
pub fn discover_ofds(r: &Relation) -> Vec<Ofd> {
    let mut out = Vec::new();
    for a in r.schema().ids() {
        for b in r.schema().ids() {
            if a == b {
                continue;
            }
            let ofd = Ofd::pointwise(r.schema(), AttrSet::single(a), AttrSet::single(b));
            if ofd.holds(r) {
                out.push(ofd);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r7;
    use deptree_relation::{RelationBuilder, ValueType};

    fn emp_rel(complete: bool) -> Relation {
        let mut b = RelationBuilder::new()
            .attr("emp", ValueType::Categorical)
            .attr("project", ValueType::Categorical)
            .attr("skill", ValueType::Categorical)
            .row(vec!["e1".into(), "p1".into(), "s1".into()])
            .row(vec!["e1".into(), "p1".into(), "s2".into()])
            .row(vec!["e1".into(), "p2".into(), "s1".into()]);
        if complete {
            b = b.row(vec!["e1".into(), "p2".into(), "s2".into()]);
        }
        b.build().unwrap()
    }

    #[test]
    fn fhd_discovery_finds_the_hierarchy() {
        let r = emp_rel(true);
        let s = r.schema();
        let found = discover_fhds(&r, &SchemeConfig::default());
        assert!(
            found
                .iter()
                .any(|f| { f.x() == AttrSet::single(s.id("emp")) && f.ys().len() == 2 }),
            "{found:?}"
        );
        for f in &found {
            assert!(f.holds(&r));
        }
    }

    #[test]
    fn amvd_tolerates_missing_recombination() {
        let dirty = emp_rel(false); // one missing tuple: 1 spurious in 4
        let s = dirty.schema();
        let exact = discover_amvds(
            &dirty,
            &SchemeConfig {
                max_x: 1,
                epsilon: 0.0,
            },
        );
        let loose = discover_amvds(
            &dirty,
            &SchemeConfig {
                max_x: 1,
                epsilon: 0.3,
            },
        );
        // `emp` is constant in this instance, so the minimal determinant
        // is ∅ (⊆ {emp}) — accept either.
        let hit = |res: &[(Amvd, f64)]| {
            res.iter().any(|(a, _)| {
                a.embedded().x().is_subset(AttrSet::single(s.id("emp")))
                    && (a.embedded().y() == AttrSet::single(s.id("project"))
                        || a.embedded().y() == AttrSet::single(s.id("skill")))
            })
        };
        assert!(!hit(&exact));
        assert!(hit(&loose), "{loose:?}");
        for (a, err) in &loose {
            assert!(a.holds(&dirty));
            assert!(*err <= 0.3);
        }
    }

    #[test]
    fn ofd_discovery_on_r7() {
        let r = hotels_r7();
        let s = r.schema();
        let found = discover_ofds(&r);
        // nights, subtotal and taxes are mutually co-ordered (all
        // ascending); avg/night is anti-ordered with them, so it appears
        // in no pointwise OFD.
        assert!(found.iter().any(|o| {
            o.lhs() == AttrSet::single(s.id("nights"))
                && o.rhs() == AttrSet::single(s.id("subtotal"))
        }));
        assert!(!found.iter().any(|o| {
            o.lhs() == AttrSet::single(s.id("nights"))
                && o.rhs() == AttrSet::single(s.id("avg/night"))
        }));
        for o in &found {
            assert!(o.holds(&r));
        }
    }
}
