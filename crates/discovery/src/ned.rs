//! NED discovery (Bassée–Wijsen, §3.2.3): given the target right-hand
//! predicate, find a left-hand neighborhood predicate with sufficient
//! support and confidence. The problem is NP-hard in the number of
//! attributes; the standard practical attack is greedy/beam search.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Ned, NedAtom};
use deptree_metrics::Metric;
use deptree_relation::{AttrSet, Relation};

/// Configuration for [`discover_lhs`].
#[derive(Debug, Clone)]
pub struct NedConfig {
    /// Minimum pairs the LHS predicate must match.
    pub min_support: usize,
    /// Required confidence.
    pub min_confidence: f64,
    /// Candidate thresholds per attribute.
    pub thresholds_per_attr: usize,
    /// Maximum LHS atoms (beam depth).
    pub max_lhs: usize,
    /// Beam width.
    pub beam: usize,
}

impl Default for NedConfig {
    fn default() -> Self {
        NedConfig {
            min_support: 2,
            min_confidence: 1.0,
            thresholds_per_attr: 3,
            max_lhs: 2,
            beam: 4,
        }
    }
}

/// Greedy/beam search for a left-hand predicate given the target RHS.
/// Returns the best NED meeting both bars, or `None`.
pub fn discover_lhs(r: &Relation, rhs: Vec<NedAtom>, cfg: &NedConfig) -> Option<Ned> {
    discover_lhs_bounded(r, rhs, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover_lhs`]: one node tick per beam expansion, row ticks
/// for each scoring scan (charged at the all-pairs worst case, though
/// scoring itself runs through [`Ned::support_confidence`]'s indexed or
/// analytic counting path and usually touches far fewer pairs). The best
/// rule found before exhaustion is returned (it has verified
/// support/confidence), so partial results are sound.
pub fn discover_lhs_bounded(
    r: &Relation,
    rhs: Vec<NedAtom>,
    cfg: &NedConfig,
    exec: &Exec,
) -> Outcome<Option<Ned>> {
    assert!(!rhs.is_empty(), "target RHS predicate required");
    let rhs_attrs: AttrSet = rhs.iter().map(|a| a.attr).collect();
    // Candidate atoms: every non-RHS attribute × candidate thresholds.
    let mut atoms = Vec::new();
    for a in r.schema().ids() {
        if rhs_attrs.contains(a) {
            continue;
        }
        let metric = Metric::default_for(r.schema().ty(a));
        for t in crate::dd::candidate_thresholds(r, a, &metric, cfg.thresholds_per_attr) {
            atoms.push(NedAtom::new(a, metric.clone(), t));
        }
    }
    // Beam over LHS atom lists, scored by (confidence, support).
    let score = |lhs: &[NedAtom]| -> (usize, f64) {
        Ned::new(r.schema(), lhs.to_vec(), rhs.clone()).support_confidence(r)
    };
    let mut beam: Vec<Vec<NedAtom>> = vec![vec![]];
    let mut best: Option<(Vec<NedAtom>, usize, f64)> = None;
    'search: for _ in 0..cfg.max_lhs {
        let mut expansions: Vec<(Vec<NedAtom>, usize, f64)> = Vec::new();
        for base in &beam {
            for atom in &atoms {
                if base.iter().any(|b| b.attr == atom.attr) {
                    continue;
                }
                let n = r.n_rows() as u64;
                if !exec.tick_node() || !exec.tick_rows(n * n.saturating_sub(1) / 2) {
                    break 'search;
                }
                let mut lhs = base.clone();
                lhs.push(atom.clone());
                let (support, conf) = score(&lhs);
                if support < cfg.min_support {
                    continue;
                }
                if conf >= cfg.min_confidence {
                    let better = match &best {
                        None => true,
                        Some((_, s, c)) => conf > *c || (conf == *c && support > *s),
                    };
                    if better {
                        best = Some((lhs.clone(), support, conf));
                    }
                }
                expansions.push((lhs, support, conf));
            }
        }
        expansions.sort_by(|a, b| b.2.total_cmp(&a.2).then(b.1.cmp(&a.1)));
        expansions.truncate(cfg.beam);
        if expansions.is_empty() {
            break;
        }
        beam = expansions.into_iter().map(|(l, _, _)| l).collect();
    }
    exec.finish(best.map(|(lhs, _, _)| Ned::new(r.schema(), lhs, rhs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r6;

    #[test]
    fn recovers_a_predictor_for_street() {
        // ned1's shape: something like name/address closeness predicts
        // street closeness on r6.
        let r = hotels_r6();
        let s = r.schema();
        let rhs = vec![NedAtom::new(s.id("street"), Metric::Levenshtein, 5.0)];
        let ned = discover_lhs(&r, rhs, &NedConfig::default()).expect("a predictor exists");
        assert!(ned.holds(&r), "{ned}");
        let (support, conf) = ned.support_confidence(&r);
        assert!(support >= 2);
        assert_eq!(conf, 1.0);
    }

    #[test]
    fn impossible_target_returns_none() {
        // Demand confident prediction of exact-price closeness from pairs
        // that include wildly different prices: zero-threshold support on
        // a key-like attribute can't reach min_support 10.
        let r = hotels_r6();
        let s = r.schema();
        let rhs = vec![NedAtom::new(s.id("address"), Metric::Levenshtein, 0.0)];
        let found = discover_lhs(
            &r,
            rhs,
            &NedConfig {
                min_support: 10,
                ..Default::default()
            },
        );
        assert!(found.is_none());
    }

    #[test]
    fn confidence_bar_is_respected() {
        let r = hotels_r6();
        let s = r.schema();
        let rhs = vec![NedAtom::new(s.id("tax"), Metric::AbsDiff, 5.0)];
        if let Some(ned) = discover_lhs(&r, rhs, &NedConfig::default()) {
            let (_, conf) = ned.support_confidence(&r);
            assert!(conf >= 1.0);
        }
    }
}
