//! FASTDC (Chu et al.): denial-constraint discovery via predicate spaces,
//! evidence sets and minimal set covers (§4.3.4), plus the approximate
//! variant A-FASTDC.

use crate::cover::{minimal_hitting_sets, minimal_hitting_sets_bounded};
use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::{CmpOp, Dc, Predicate};
use deptree_relation::{AttrId, Relation, ValueType};
use std::collections::HashMap;

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct DcConfig {
    /// Maximum number of predicates per DC (small DCs are the useful
    /// ones; the space is exponential in this).
    pub max_predicates: usize,
    /// A-FASTDC: fraction of tuple pairs a DC may violate and still be
    /// reported (0 = exact FASTDC).
    pub approx_epsilon: f64,
}

impl Default for DcConfig {
    fn default() -> Self {
        DcConfig {
            max_predicates: 3,
            approx_epsilon: 0.0,
        }
    }
}

/// Build the two-tuple predicate space of FASTDC: for every attribute,
/// `tα.A op tβ.A` with `op ∈ {=, ≠}` for categorical/text attributes and
/// the full operator set for numeric ones.
pub fn predicate_space(r: &Relation) -> Vec<Predicate> {
    let mut preds = Vec::new();
    for (id, attr) in r.schema().iter() {
        let ops: &[CmpOp] = match attr.ty {
            ValueType::Numeric => &CmpOp::ALL,
            _ => &CmpOp::EQUALITY,
        };
        for &op in ops {
            preds.push(Predicate::across(id, op, id));
        }
    }
    preds
}

/// Statistics from a run.
#[derive(Debug, Clone, Default)]
pub struct FastDcStats {
    /// Size of the predicate space.
    pub n_predicates: usize,
    /// Distinct evidence sets.
    pub n_evidence_sets: usize,
    /// Ordered tuple pairs evaluated.
    pub pairs_evaluated: usize,
}

/// Compute the *evidence sets*: for each ordered tuple pair, the bitset of
/// predicates it satisfies. Returns distinct evidence sets with their
/// multiplicities.
pub fn evidence_sets(
    r: &Relation,
    preds: &[Predicate],
    stats: &mut FastDcStats,
) -> HashMap<u64, usize> {
    evidence_sets_bounded(r, preds, stats, &Exec::unbounded()).0
}

/// Budgeted [`evidence_sets`]: each tuple pair costs one engine row tick.
/// Returns the evidence multiset plus a completeness flag; an incomplete
/// multiset under-constrains covers, so callers must validate candidate
/// DCs before emitting them.
pub fn evidence_sets_bounded(
    r: &Relation,
    preds: &[Predicate],
    stats: &mut FastDcStats,
    exec: &Exec,
) -> (HashMap<u64, usize>, bool) {
    assert!(preds.len() <= 64, "predicate space capped at 64 bits");
    let mut evidence: HashMap<u64, usize> = HashMap::new();
    let mut complete = true;
    'scan: for i in 0..r.n_rows() {
        for j in 0..r.n_rows() {
            if i == j {
                continue;
            }
            if !exec.tick_rows(1) {
                complete = false;
                break 'scan;
            }
            stats.pairs_evaluated += 1;
            let mut bits = 0u64;
            for (k, p) in preds.iter().enumerate() {
                if p.eval(r, i, j) {
                    bits |= 1 << k;
                }
            }
            *evidence.entry(bits).or_default() += 1;
        }
    }
    stats.n_evidence_sets = evidence.len();
    (evidence, complete)
}

/// Blocked evidence-set construction: group rows into distinct-tuple
/// classes first, evaluate predicates once per ordered class pair, and
/// account each result with the class-product multiplicity. An evidence
/// bitset is a pure function of the two tuples' values, so rows within a
/// class are interchangeable and the multiset equals [`evidence_sets`]'s
/// exactly — in `O(d²·|P|)` for `d` distinct tuples instead of
/// `O(n²·|P|)`. This is the default path of [`discover_bounded`].
///
/// Budgeted like [`evidence_sets_bounded`]: every *represented* ordered
/// pair costs one engine row tick (`Σ = n(n−1)` when complete, matching
/// the naive scan). Ticks are charged block-by-block — one block per left
/// class, granted as a serial prefix so the grant is identical at any
/// thread count — then blocks are evaluated in parallel and merged in
/// class order. An incomplete multiset under-constrains covers, so
/// callers must validate candidate DCs before emitting them.
pub fn evidence_sets_blocked(
    r: &Relation,
    preds: &[Predicate],
    stats: &mut FastDcStats,
    exec: &Exec,
) -> (HashMap<u64, usize>, bool) {
    assert!(preds.len() <= 64, "predicate space capped at 64 bits");
    let mut span = exec.span("dc.evidence");
    let mut classes: Vec<Vec<usize>> = r.group_by(r.all_attrs()).into_values().collect();
    for c in &mut classes {
        c.sort_unstable();
    }
    classes.sort_unstable();
    // Serial prefix grant: block b covers the intra pairs of class b plus
    // both orientations against every later class.
    let mut granted = 0usize;
    let mut complete = true;
    for (b, c1) in classes.iter().enumerate() {
        let s1 = c1.len();
        let later: usize = classes[b + 1..].iter().map(Vec::len).sum();
        let cost = s1 * (s1 - 1) + 2 * s1 * later;
        if !exec.tick_rows(cost as u64) {
            complete = false;
            break;
        }
        granted = b + 1;
    }
    let blocks: Vec<usize> = (0..granted).collect();
    let results = pool::map(exec.threads(), &blocks, |_, &b| {
        if exec.interrupted() {
            return None;
        }
        let bits = |i: usize, j: usize| -> u64 {
            let mut bits = 0u64;
            for (k, p) in preds.iter().enumerate() {
                if p.eval(r, i, j) {
                    bits |= 1 << k;
                }
            }
            bits
        };
        let c1 = &classes[b];
        let rep1 = c1[0];
        let s1 = c1.len();
        let mut out: Vec<(u64, usize)> = Vec::new();
        if s1 > 1 {
            // All intra-class ordered pairs relate identical tuples and
            // share one evidence set.
            out.push((bits(rep1, c1[1]), s1 * (s1 - 1)));
        }
        for c2 in &classes[b + 1..] {
            let mult = s1 * c2.len();
            out.push((bits(rep1, c2[0]), mult));
            out.push((bits(c2[0], rep1), mult));
        }
        Some(out)
    });
    let mut evidence: HashMap<u64, usize> = HashMap::new();
    for block in results {
        let Some(entries) = block else {
            // Deadline/cancel hit mid-batch; everything merged so far came
            // from fully evaluated blocks, so it stays.
            complete = false;
            break;
        };
        for (bits, mult) in entries {
            stats.pairs_evaluated += mult;
            *evidence.entry(bits).or_default() += mult;
        }
    }
    stats.n_evidence_sets = evidence.len();
    span.attr("blocks", granted as u64);
    span.attr("evidence_sets", evidence.len() as u64);
    (evidence, complete)
}

/// BFASTDC-style evidence-set construction: instead of evaluating every
/// predicate generically per pair, group the predicates by attribute,
/// compare each pair's attribute values *once*, and set all of that
/// attribute's predicate bits from the single comparison outcome — the
/// bitwise-reuse idea of Pena & de Almeida (§4.3.4). Produces exactly the
/// same evidence sets as [`evidence_sets`] (tested), several times faster
/// on wide operator sets (ablation bench).
pub fn evidence_sets_grouped(
    r: &Relation,
    preds: &[Predicate],
    stats: &mut FastDcStats,
) -> HashMap<u64, usize> {
    use deptree_core::Operand;
    assert!(preds.len() <= 64, "predicate space capped at 64 bits");
    // Per attribute: (bit, op) lists for symmetric same-attribute
    // predicates; anything else falls back to generic evaluation.
    let mut by_attr: HashMap<AttrId, Vec<(usize, CmpOp)>> = HashMap::new();
    let mut generic: Vec<(usize, &Predicate)> = Vec::new();
    for (k, p) in preds.iter().enumerate() {
        match (&p.left, &p.right) {
            (Operand::First(a), Operand::Second(b)) if a == b => {
                by_attr.entry(*a).or_default().push((k, p.op));
            }
            _ => generic.push((k, p)),
        }
    }
    let attrs: Vec<(AttrId, Vec<(usize, CmpOp)>)> = by_attr.into_iter().collect();
    let mut evidence: HashMap<u64, usize> = HashMap::new();
    for i in 0..r.n_rows() {
        for j in 0..r.n_rows() {
            if i == j {
                continue;
            }
            stats.pairs_evaluated += 1;
            let mut bits = 0u64;
            for (attr, ops) in &attrs {
                let (vi, vj) = (r.value(i, *attr), r.value(j, *attr));
                if vi.is_null() || vj.is_null() {
                    // Match CmpOp::eval's null semantics predicate-wise.
                    for &(k, op) in ops {
                        if op.eval(vi, vj) {
                            bits |= 1 << k;
                        }
                    }
                    continue;
                }
                let ord = vi.numeric_cmp(vj);
                for &(k, op) in ops {
                    let sat = match (op, ord) {
                        (CmpOp::Eq, std::cmp::Ordering::Equal)
                        | (CmpOp::Leq, std::cmp::Ordering::Equal)
                        | (CmpOp::Geq, std::cmp::Ordering::Equal) => true,
                        (CmpOp::Neq, o) => o != std::cmp::Ordering::Equal,
                        (CmpOp::Lt | CmpOp::Leq, std::cmp::Ordering::Less) => true,
                        (CmpOp::Gt | CmpOp::Geq, std::cmp::Ordering::Greater) => true,
                        _ => false,
                    };
                    if sat {
                        bits |= 1 << k;
                    }
                }
            }
            for (k, p) in &generic {
                if p.eval(r, i, j) {
                    bits |= 1 << k;
                }
            }
            *evidence.entry(bits).or_default() += 1;
        }
    }
    stats.n_evidence_sets = evidence.len();
    evidence
}

/// The result of a FASTDC run.
#[derive(Debug)]
pub struct FastDcResult {
    /// Minimal valid DCs.
    pub dcs: Vec<Dc>,
    /// Run statistics.
    pub stats: FastDcStats,
}

/// Run FASTDC: a predicate set `P` forms a valid DC `¬(⋀ P)` iff no
/// evidence set contains all of `P` — equivalently, `P` hits the
/// *complement* of every evidence set. Minimal valid DCs are therefore
/// minimal hitting sets of the complemented evidence sets.
///
/// With `approx_epsilon > 0` (A-FASTDC), evidence sets whose total
/// multiplicity is within an `ε` fraction of all pairs may be left uncovered.
pub fn discover(r: &Relation, cfg: &DcConfig) -> FastDcResult {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Run FASTDC under `exec`'s budget.
///
/// Anytime contract: when the evidence scan was cut short, candidate DCs
/// are validated pair-by-pair (itself budgeted) before being emitted, so
/// a partial result contains only DCs that hold exactly on `r`; the
/// A-FASTDC approximate mode degrades to exact validation in that case.
/// Completeness and minimality are forfeit on exhaustion.
pub fn discover_bounded(r: &Relation, cfg: &DcConfig, exec: &Exec) -> Outcome<FastDcResult> {
    let preds = predicate_space(r);
    let mut stats = FastDcStats {
        n_predicates: preds.len(),
        ..Default::default()
    };
    let (evidence, evidence_complete) = evidence_sets_blocked(r, &preds, &mut stats, exec);
    let full: u64 = if preds.len() == 64 {
        u64::MAX
    } else {
        (1u64 << preds.len()) - 1
    };

    // A-FASTDC: drop the least-frequent evidence sets up to the ε budget.
    let total_pairs: usize = evidence.values().sum();
    let budget = (cfg.approx_epsilon * total_pairs as f64).floor() as usize;
    let mut sets: Vec<(u64, usize)> = evidence.into_iter().collect();
    // Tie-break equal counts by bits: the ε-drop filter below keeps a
    // prefix of this order, so hash-order ties would make A-FASTDC drop
    // a different evidence set on every run.
    sets.sort_by_key(|&(bits, count)| (count, bits));
    let mut dropped = 0usize;
    let complements: Vec<u64> = sets
        .iter()
        .filter(|&&(_, count)| {
            if dropped + count <= budget {
                dropped += count;
                false
            } else {
                true
            }
        })
        .map(|&(bits, _)| full & !bits)
        .collect();

    let (covers, _) = minimal_hitting_sets_bounded(&complements, preds.len(), exec);
    let mut dcs = Vec::new();
    for cover in covers {
        if cover.count_ones() as usize > cfg.max_predicates || cover == 0 {
            continue;
        }
        let chosen: Vec<Predicate> = (0..preds.len())
            .filter(|&k| cover & (1 << k) != 0)
            .map(|k| preds[k].clone())
            .collect();
        // Skip trivially unsatisfiable conjunctions (e.g. tα.A = tβ.A ∧
        // tα.A ≠ tβ.A): they are valid DCs but vacuous.
        if is_contradictory(&chosen) {
            continue;
        }
        // With a truncated evidence scan the cover is only a candidate:
        // validate before emitting so partial results stay sound.
        if !evidence_complete && !matches!(validate_bounded(r, &chosen, exec), Some(true)) {
            continue;
        }
        dcs.push(Dc::new(r.schema(), chosen));
    }
    exec.finish(FastDcResult { dcs, stats })
}

/// Does `¬(⋀ preds)` hold on every ordered tuple pair? `None` when the
/// budget died before the scan finished.
fn validate_bounded(r: &Relation, preds: &[Predicate], exec: &Exec) -> Option<bool> {
    for i in 0..r.n_rows() {
        for j in 0..r.n_rows() {
            if i == j {
                continue;
            }
            if !exec.tick_rows(1) {
                return None;
            }
            if preds.iter().all(|p| p.eval(r, i, j)) {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// Hydra-style discovery (Bleifuß et al., §4.3.4): avoid building the
/// complete evidence multiset up front. Phase 1 computes evidence only for
/// a deterministic sample of tuple pairs and derives *preliminary* DCs;
/// phase 2 scans for pairs violating any preliminary DC, feeds their
/// evidence back, and repeats until no candidate is violated.
///
/// At the fixpoint the output equals exact FASTDC's (tested): a candidate
/// surviving validation hits every evidence-set complement, and any
/// globally-minimal DC must be minimal for the collected subfamily too.
/// The win is that the expensive minimal-cover search runs on far fewer
/// distinct evidence sets when the data is regular.
pub fn discover_hydra(r: &Relation, cfg: &DcConfig, sample_stride: usize) -> FastDcResult {
    assert!(sample_stride >= 1, "stride must be positive");
    let preds = predicate_space(r);
    let mut stats = FastDcStats {
        n_predicates: preds.len(),
        ..Default::default()
    };
    let full: u64 = if preds.len() == 64 {
        u64::MAX
    } else {
        (1u64 << preds.len()) - 1
    };
    let pair_bits = |i: usize, j: usize, stats: &mut FastDcStats| -> u64 {
        stats.pairs_evaluated += 1;
        let mut bits = 0u64;
        for (k, p) in preds.iter().enumerate() {
            if p.eval(r, i, j) {
                bits |= 1 << k;
            }
        }
        bits
    };

    // Phase 1: sampled evidence.
    let mut family: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut counter = 0usize;
    for i in 0..r.n_rows() {
        for j in 0..r.n_rows() {
            if i == j {
                continue;
            }
            counter += 1;
            if counter.is_multiple_of(sample_stride) {
                family.insert(pair_bits(i, j, &mut stats));
            }
        }
    }

    // Phase 2: iterate candidate generation + validation.
    let mut covers: Vec<u64>;
    loop {
        let complements: Vec<u64> = family.iter().map(|&bits| full & !bits).collect();
        covers = minimal_hitting_sets(&complements, preds.len());
        // Validate every candidate against every pair; collect evidence of
        // violating pairs.
        let mut grew = false;
        for i in 0..r.n_rows() {
            for j in 0..r.n_rows() {
                if i == j {
                    continue;
                }
                // Cheap pre-check: compute bits lazily only if some cover
                // might be violated — here we always need the bits.
                let bits = pair_bits(i, j, &mut stats);
                if covers.iter().any(|&c| c & !bits == 0) && family.insert(bits) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    stats.n_evidence_sets = family.len();

    let mut dcs = Vec::new();
    for cover in covers {
        if cover == 0 || cover.count_ones() as usize > cfg.max_predicates {
            continue;
        }
        let chosen: Vec<Predicate> = (0..preds.len())
            .filter(|&k| cover & (1 << k) != 0)
            .map(|k| preds[k].clone())
            .collect();
        if is_contradictory(&chosen) {
            continue;
        }
        dcs.push(Dc::new(r.schema(), chosen));
    }
    FastDcResult { dcs, stats }
}

/// Is the conjunction unsatisfiable for symmetric same-attribute
/// predicates (the only kind [`predicate_space`] builds)?
fn is_contradictory(preds: &[Predicate]) -> bool {
    use deptree_core::Operand;
    let mut by_attr: HashMap<AttrId, Vec<CmpOp>> = HashMap::new();
    for p in preds {
        if let (Operand::First(a), Operand::Second(b)) = (&p.left, &p.right) {
            if a == b {
                by_attr.entry(*a).or_default().push(p.op);
            }
        }
    }
    for ops in by_attr.values() {
        // A pair's comparison outcome on one attribute is <, = or >.
        // The conjunction is satisfiable iff some outcome satisfies all ops.
        let satisfiable = ["lt", "eq", "gt"].iter().any(|&o| {
            ops.iter().all(|op| {
                matches!(
                    (o, op),
                    ("lt", CmpOp::Lt | CmpOp::Leq | CmpOp::Neq)
                        | ("eq", CmpOp::Eq | CmpOp::Leq | CmpOp::Geq)
                        | ("gt", CmpOp::Gt | CmpOp::Geq | CmpOp::Neq)
                )
            })
        });
        if !satisfiable {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r7;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn predicate_space_shape() {
        let r = hotels_r7();
        let preds = predicate_space(&r);
        // 4 numeric attributes × 6 operators.
        assert_eq!(preds.len(), 24);
    }

    #[test]
    fn all_discovered_dcs_hold() {
        let r = hotels_r7();
        let result = discover(&r, &DcConfig::default());
        assert!(!result.dcs.is_empty());
        for dc in &result.dcs {
            assert!(dc.holds(&r), "{dc}");
        }
    }

    #[test]
    fn finds_the_papers_dc1_shape() {
        // dc1: ¬(tα.subtotal < tβ.subtotal ∧ tα.taxes > tβ.taxes) holds on
        // r7 and involves 2 predicates: FASTDC must find it (or a DC
        // implying it, but with max_predicates 2 the exact one appears).
        let r = hotels_r7();
        let s = r.schema();
        let result = discover(
            &r,
            &DcConfig {
                max_predicates: 2,
                approx_epsilon: 0.0,
            },
        );
        let target = Dc::new(
            s,
            vec![
                Predicate::across(s.id("subtotal"), CmpOp::Lt, s.id("subtotal")),
                Predicate::across(s.id("taxes"), CmpOp::Gt, s.id("taxes")),
            ],
        );
        assert!(
            result
                .dcs
                .iter()
                .any(|dc| dc.to_string() == target.to_string()),
            "{:?}",
            result.dcs.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn minimality_no_dc_contains_another() {
        let r = hotels_r7();
        let result = discover(&r, &DcConfig::default());
        for a in &result.dcs {
            for b in &result.dcs {
                if a.to_string() == b.to_string() {
                    continue;
                }
                let a_in_b = a
                    .predicates()
                    .iter()
                    .all(|p| b.predicates().iter().any(|q| q == p));
                assert!(!a_in_b, "{a} subsumes {b}");
            }
        }
    }

    #[test]
    fn approximate_mode_tolerates_outliers() {
        // A relation satisfying "a < b ⇒ c < d" except for one outlier
        // pair; exact FASTDC loses the 2-predicate DC, A-FASTDC keeps it.
        let mut b = RelationBuilder::new()
            .attr("x", ValueType::Numeric)
            .attr("y", ValueType::Numeric);
        for i in 0..20 {
            b = b.row(vec![i.into(), (i * 10).into()]);
        }
        b = b.row(vec![100.into(), 0.into()]); // outlier breaks monotonicity
        let r = b.build().unwrap();
        let s = r.schema();
        let target = Dc::new(
            s,
            vec![
                Predicate::across(s.id("x"), CmpOp::Lt, s.id("x")),
                Predicate::across(s.id("y"), CmpOp::Geq, s.id("y")),
            ],
        );
        assert!(!target.holds(&r));
        let exact = discover(
            &r,
            &DcConfig {
                max_predicates: 2,
                approx_epsilon: 0.0,
            },
        );
        assert!(!exact
            .dcs
            .iter()
            .any(|dc| dc.to_string() == target.to_string()));
        let approx = discover(
            &r,
            &DcConfig {
                max_predicates: 2,
                approx_epsilon: 0.15,
            },
        );
        assert!(
            approx
                .dcs
                .iter()
                .any(|dc| dc.to_string() == target.to_string()),
            "{:?}",
            approx.dcs.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn contradiction_filter() {
        let r = hotels_r7();
        let s = r.schema();
        let contradictory = vec![
            Predicate::across(s.id("taxes"), CmpOp::Eq, s.id("taxes")),
            Predicate::across(s.id("taxes"), CmpOp::Neq, s.id("taxes")),
        ];
        assert!(is_contradictory(&contradictory));
        let fine = vec![
            Predicate::across(s.id("taxes"), CmpOp::Leq, s.id("taxes")),
            Predicate::across(s.id("taxes"), CmpOp::Neq, s.id("taxes")),
        ];
        assert!(!is_contradictory(&fine));
    }

    #[test]
    fn grouped_evidence_equals_naive() {
        use deptree_synth::{categorical, CategoricalConfig};
        let cfg = CategoricalConfig {
            n_rows: 40,
            n_key_attrs: 2,
            n_dep_attrs: 1,
            domain: 5,
            error_rate: 0.1,
            seed: 5,
        };
        let relations = [
            hotels_r7(),
            categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed)).relation,
        ];
        for r in relations {
            let preds = predicate_space(&r);
            let mut s1 = FastDcStats::default();
            let mut s2 = FastDcStats::default();
            let naive = evidence_sets(&r, &preds, &mut s1);
            let grouped = evidence_sets_grouped(&r, &preds, &mut s2);
            assert_eq!(naive, grouped);
            assert_eq!(s1.pairs_evaluated, s2.pairs_evaluated);
        }
    }

    #[test]
    fn blocked_evidence_equals_naive() {
        use deptree_synth::{categorical, CategoricalConfig};
        // Small-domain synthetics have many duplicate tuples, exercising
        // the multiplicity accounting; a duplicated-row instance makes the
        // intra-class branch explicit.
        let cfg = CategoricalConfig {
            n_rows: 40,
            n_key_attrs: 2,
            n_dep_attrs: 1,
            domain: 3,
            error_rate: 0.1,
            seed: 9,
        };
        let mut b = RelationBuilder::new()
            .attr("x", ValueType::Numeric)
            .attr("y", ValueType::Numeric);
        for i in 0..12 {
            b = b.row(vec![(i % 3).into(), (i % 2).into()]);
        }
        let relations = [
            hotels_r7(),
            categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed)).relation,
            b.build().unwrap(),
        ];
        for r in relations {
            let preds = predicate_space(&r);
            let mut s1 = FastDcStats::default();
            let mut s2 = FastDcStats::default();
            let naive = evidence_sets(&r, &preds, &mut s1);
            let (blocked, complete) =
                evidence_sets_blocked(&r, &preds, &mut s2, &Exec::unbounded());
            assert!(complete);
            assert_eq!(naive, blocked);
            assert_eq!(s1.pairs_evaluated, s2.pairs_evaluated);
        }
    }

    #[test]
    fn hydra_matches_exact_fastdc() {
        let mut b = RelationBuilder::new()
            .attr("x", ValueType::Numeric)
            .attr("y", ValueType::Numeric);
        for i in 0..15 {
            b = b.row(vec![i.into(), ((i * 7) % 11).into()]);
        }
        let r = b.build().unwrap();
        let cfg = DcConfig {
            max_predicates: 2,
            approx_epsilon: 0.0,
        };
        let exact = discover(&r, &cfg);
        for stride in [1usize, 3, 10, 50] {
            let hydra = discover_hydra(&r, &cfg, stride);
            let e: std::collections::BTreeSet<String> =
                exact.dcs.iter().map(|d| d.to_string()).collect();
            let h: std::collections::BTreeSet<String> =
                hydra.dcs.iter().map(|d| d.to_string()).collect();
            assert_eq!(e, h, "stride {stride}");
        }
        // And on the paper instance.
        let r7 = hotels_r7();
        let exact7 = discover(&r7, &cfg);
        let hydra7 = discover_hydra(&r7, &cfg, 4);
        let e: std::collections::BTreeSet<String> =
            exact7.dcs.iter().map(|d| d.to_string()).collect();
        let h: std::collections::BTreeSet<String> =
            hydra7.dcs.iter().map(|d| d.to_string()).collect();
        assert_eq!(e, h);
    }

    #[test]
    fn stats_populated() {
        let r = hotels_r7();
        let result = discover(&r, &DcConfig::default());
        assert_eq!(result.stats.n_predicates, 24);
        assert_eq!(result.stats.pairs_evaluated, 12); // 4×3 ordered pairs
        assert!(result.stats.n_evidence_sets >= 1);
    }
}
