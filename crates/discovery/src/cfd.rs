//! CFD discovery (§2.5.3): CFDMiner for constant CFDs, a CTANE-style
//! level-wise search for general CFDs, and the Golab et al. greedy
//! algorithm for near-optimal tableaux of a given embedded FD.

use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::{Cfd, Dependency, Fd, Pattern, PatternCell};
use deptree_relation::{AttrSet, Relation, Value};

/// Configuration shared by the discovery entry points.
#[derive(Debug, Clone)]
pub struct CfdConfig {
    /// Minimum support: number of tuples the condition must cover.
    pub min_support: usize,
    /// Maximum LHS size.
    pub max_lhs: usize,
}

impl Default for CfdConfig {
    fn default() -> Self {
        CfdConfig {
            min_support: 2,
            max_lhs: 2,
        }
    }
}

/// CFDMiner: mine *constant* CFDs `(X = a̅ → A = b)` with support ≥
/// `min_support` — frequent LHS value combinations whose RHS value is
/// constant within their cover, reported with minimal LHS (the
/// free/closed-itemset connection of Fan et al., specialised to pattern
/// mining over attribute sets).
pub fn cfdminer(r: &Relation, cfg: &CfdConfig) -> Vec<Cfd> {
    let mut out = Vec::new();
    // found[(lhs_set, rhs)] = LHS value patterns already covered by a
    // smaller LHS (minimality).
    let mut found: Vec<(AttrSet, deptree_relation::AttrId, Vec<Value>)> = Vec::new();
    for lhs in crate::mvd_subsets(r.all_attrs(), cfg.max_lhs) {
        for rows in r.group_by(lhs).values() {
            if rows.len() < cfg.min_support {
                continue;
            }
            let lhs_vals = r.project_row(rows[0], lhs);
            for rhs in r.schema().ids() {
                if lhs.contains(rhs) {
                    continue;
                }
                let first = r.value(rows[0], rhs);
                if !rows.iter().all(|&t| r.value(t, rhs) == first) {
                    continue;
                }
                // Minimality: a sub-LHS already emits a constant CFD whose
                // pattern this one specializes (project the stored values).
                let redundant = found.iter().any(|(l, a, vals)| {
                    *a == rhs && l.is_proper_subset(lhs) && {
                        // The stored pattern's values must match ours on l.
                        let ours: Vec<&Value> = l
                            .iter()
                            .filter_map(|attr| {
                                let idx = lhs.iter().position(|x| x == attr)?;
                                lhs_vals.get(idx)
                            })
                            .collect();
                        ours.iter().zip(vals).all(|(o, v)| *o == v)
                    }
                });
                if redundant {
                    continue;
                }
                let mut pattern = Pattern::new();
                for (attr, v) in lhs.iter().zip(&lhs_vals) {
                    pattern = pattern.with_const(attr, v.clone());
                }
                pattern = pattern.with_const(rhs, first.clone());
                out.push(Cfd::new(r.schema(), lhs, AttrSet::single(rhs), pattern));
                found.push((lhs, rhs, lhs_vals.clone()));
            }
        }
    }
    out
}

/// CTANE-lite: level-wise discovery of general (variable-pattern) CFDs.
///
/// Patterns are drawn from `{_, constant}` per LHS attribute with the
/// constants taken from the attribute's active domain; the RHS is a
/// variable. A candidate is emitted when it holds, covers at least
/// `min_support` tuples, and no generalization (fewer constants or fewer
/// LHS attributes) was already emitted — the CTANE minimality order.
pub fn ctane(r: &Relation, cfg: &CfdConfig) -> Vec<Cfd> {
    ctane_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`ctane`]: one node tick per pattern candidate, row ticks for
/// each support/validity scan. CFDs are emitted only after `holds`, so
/// partial results are sound.
///
/// The support/validity scans for one embedded FD's pattern space run
/// concurrently on the engine pool (budget reserved for the whole space
/// up front, so the evaluated prefix is thread-count-independent); the
/// generalization filter replays serially in the CTANE level order, which
/// keeps the emitted tableau identical to the serial walk.
pub fn ctane_bounded(r: &Relation, cfg: &CfdConfig, exec: &Exec) -> Outcome<Vec<Cfd>> {
    let threads = exec.threads();
    let row_cost = 2 * r.n_rows() as u64;
    let mut out: Vec<Cfd> = Vec::new();
    'search: for lhs in crate::mvd_subsets(r.all_attrs(), cfg.max_lhs) {
        for rhs in r.schema().ids() {
            if lhs.contains(rhs) {
                continue;
            }
            let rhs_set = AttrSet::single(rhs);
            // Pattern space: each LHS attribute is `_` or one of its
            // active-domain constants. Enumerate level-wise by number of
            // constants so generalizations are seen first.
            let lhs_attrs = lhs.to_vec();
            let domains: Vec<Vec<Value>> = lhs_attrs
                .iter()
                .map(|&a| {
                    let mut vals: Vec<Value> = r
                        .group_by(AttrSet::single(a))
                        .into_keys()
                        .filter_map(|mut k| k.pop())
                        .collect();
                    vals.sort();
                    vals
                })
                .collect();
            let mut patterns: Vec<Vec<Option<Value>>> = vec![vec![None; lhs_attrs.len()]];
            for (i, dom) in domains.iter().enumerate() {
                let mut next = Vec::new();
                for p in &patterns {
                    next.push(p.clone());
                    for v in dom {
                        let mut q = p.clone();
                        q[i] = Some(v.clone());
                        next.push(q);
                    }
                }
                patterns = next;
            }
            patterns.sort_by_key(|p| p.iter().flatten().count());
            let want = patterns.len() as u64;
            let prefix = exec.try_reserve_batch(want, row_cost) as usize;
            let batch = &patterns[..prefix];
            let verdicts = pool::map(threads, batch, |_, p| {
                if exec.interrupted() {
                    // Deadline/cancellation only; deterministic budgets
                    // never cut the granted batch.
                    return None;
                }
                let mut pattern = Pattern::all_any(lhs.union(rhs_set));
                for (i, cell) in p.iter().enumerate() {
                    if let Some(v) = cell {
                        pattern = pattern.with_const(lhs_attrs[i], v.clone());
                    }
                }
                let cand = Cfd::new(r.schema(), lhs, rhs_set, pattern);
                (cand.matching_rows(r).len() >= cfg.min_support && cand.holds(r)).then_some(cand)
            });
            for cand in verdicts.into_iter().flatten() {
                // Minimality against already-emitted generalizations;
                // candidates arrive in constant-count order, so a
                // generalization is always merged before its
                // specializations — exactly the serial CTANE order.
                let redundant = out.iter().any(|prev| generalizes(prev, &cand));
                if !redundant {
                    out.push(cand);
                }
            }
            if prefix < patterns.len() {
                break 'search;
            }
        }
    }
    exec.finish(out)
}

/// Does `a` generalize `b` (same RHS, LHS ⊆, and every constant of `a`
/// appears in `b`)? A generalization holding makes the specialization
/// redundant.
fn generalizes(a: &Cfd, b: &Cfd) -> bool {
    if a.rhs() != b.rhs() || !a.lhs().is_subset(b.lhs()) {
        return false;
    }
    a.pattern().cells().all(|(attr, cell)| match cell {
        PatternCell::Any => {
            // b may bind attr to anything only if attr ∈ b's lhs with Any,
            // or not in b at all (impossible since lhs ⊆). A constant in b
            // under a variable in a is a specialization: fine.
            b.lhs().contains(attr) || b.rhs().contains(attr)
        }
        PatternCell::Const(v) => b.pattern().cell(attr) == &PatternCell::Const(v.clone()),
    })
}

/// Golab et al.: greedy near-optimal tableau for a *given* embedded FD.
///
/// Returns pattern rows (constant conditions on the FD's LHS) such that
/// each row's CFD holds, greedily maximizing marginal tuple coverage —
/// the classic set-cover surrogate for the NP-complete optimal-tableau
/// problem. Stops when `target_coverage` (fraction of tuples) is reached
/// or no valid row remains.
pub fn greedy_tableau(r: &Relation, fd: &Fd, target_coverage: f64) -> Vec<Cfd> {
    let groups = r.group_by(fd.lhs());
    // Valid candidate rows: LHS value combinations whose group satisfies
    // the FD locally.
    let mut candidates: Vec<(Vec<Value>, Vec<usize>)> = groups
        .into_iter()
        .filter(|(_, rows)| {
            let first = r.project_row(rows[0], fd.rhs());
            rows.iter().all(|&t| r.project_row(t, fd.rhs()) == first)
        })
        .collect();
    candidates.sort_by_key(|(_, rows)| std::cmp::Reverse(rows.len()));
    let target = (target_coverage * r.n_rows() as f64).ceil() as usize;
    let mut covered = 0usize;
    let mut tableau = Vec::new();
    for (vals, rows) in candidates {
        if covered >= target {
            break;
        }
        let mut pattern = Pattern::all_any(fd.lhs().union(fd.rhs()));
        for (attr, v) in fd.lhs().iter().zip(&vals) {
            pattern = pattern.with_const(attr, v.clone());
        }
        tableau.push(Cfd::new(r.schema(), fd.lhs(), fd.rhs(), pattern));
        covered += rows.len();
    }
    tableau
}

/// Package a greedy tableau as a first-class [`deptree_core::CfdTableau`];
/// `None` when no valid row exists.
pub fn greedy_cfd_tableau(
    r: &Relation,
    fd: &Fd,
    target_coverage: f64,
) -> Option<deptree_core::CfdTableau> {
    let rows = greedy_tableau(r, fd, target_coverage);
    (!rows.is_empty()).then(|| deptree_core::CfdTableau::new(rows))
}

/// Coverage (fraction of tuples matched by at least one tableau row).
pub fn tableau_coverage(r: &Relation, tableau: &[Cfd]) -> f64 {
    if r.n_rows() == 0 {
        return 0.0;
    }
    let mut covered = vec![false; r.n_rows()];
    for cfd in tableau {
        for row in cfd.matching_rows(r) {
            covered[row] = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / r.n_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::{hotels_r5, hotels_r6};

    #[test]
    fn cfdminer_finds_jackson_rule() {
        // region = "Jackson" → address is constant over its 2-tuple cover.
        let r = hotels_r5();
        let found = cfdminer(
            &r,
            &CfdConfig {
                min_support: 2,
                max_lhs: 1,
            },
        );
        assert!(found.iter().all(|c| c.is_constant()));
        assert!(found.iter().all(|c| c.holds(&r)), "{found:?}");
        let s = r.schema();
        assert!(found.iter().any(|c| {
            c.lhs() == AttrSet::single(s.id("region"))
                && c.rhs() == AttrSet::single(s.id("address"))
        }));
    }

    #[test]
    fn cfdminer_minimality() {
        let r = hotels_r6();
        let found = cfdminer(
            &r,
            &CfdConfig {
                min_support: 2,
                max_lhs: 2,
            },
        );
        for c in &found {
            assert!(c.holds(&r), "{c}");
        }
        // No 2-attribute LHS rule whose 1-attribute projection was also
        // emitted with matching constants.
        for c in found.iter().filter(|c| c.lhs().len() == 2) {
            for a in c.lhs().iter() {
                let sub = c.lhs().remove(a);
                let dominated = found.iter().any(|d| {
                    d.lhs() == sub
                        && d.rhs() == c.rhs()
                        && sub
                            .iter()
                            .all(|x| d.pattern().cell(x) == c.pattern().cell(x))
                        && d.pattern().cell(c.rhs().min().expect("single rhs"))
                            == c.pattern().cell(c.rhs().min().expect("single rhs"))
                });
                assert!(!dominated, "{c} dominated by a smaller rule");
            }
        }
    }

    #[test]
    fn ctane_finds_conditional_rule_invisible_globally() {
        // On r6, name → zip fails globally (NC in two regions) but holds
        // under source = s2. CTANE must surface a conditioned variant.
        let r = hotels_r6();
        let s = r.schema();
        let found = ctane(
            &r,
            &CfdConfig {
                min_support: 2,
                max_lhs: 2,
            },
        );
        for c in &found {
            assert!(c.holds(&r), "{c}");
        }
        let zip = AttrSet::single(s.id("zip"));
        let conditional = found.iter().any(|c| {
            c.rhs() == zip
                && c.lhs().contains(s.id("name"))
                && c.pattern().cells().any(|(_, cell)| cell.is_const())
        });
        assert!(conditional, "no conditional name→zip rule found");
    }

    #[test]
    fn ctane_emits_plain_fd_when_it_holds() {
        // street → zip holds globally on r6: the all-variable pattern must
        // be reported, and no specialization of it.
        let r = hotels_r6();
        let s = r.schema();
        let found = ctane(
            &r,
            &CfdConfig {
                min_support: 2,
                max_lhs: 1,
            },
        );
        let street = AttrSet::single(s.id("street"));
        let zip = AttrSet::single(s.id("zip"));
        let plain: Vec<&Cfd> = found
            .iter()
            .filter(|c| c.lhs() == street && c.rhs() == zip)
            .collect();
        assert_eq!(plain.len(), 1, "{plain:?}");
        assert!(!plain[0].pattern().cells().any(|(_, c)| c.is_const()));
    }

    #[test]
    fn greedy_tableau_covers_clean_part() {
        // name → address fails on r5 only through the El Paso group? No:
        // name "Hyatt" covers all 4 rows with 2 addresses → invalid
        // globally. Use address → region: group t1,t2 is clean, t3,t4 is
        // not.
        let r = hotels_r5();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        let tableau = greedy_tableau(&r, &fd, 1.0);
        assert_eq!(tableau.len(), 1); // only the Jackson address is clean
        assert!(tableau.iter().all(|c| c.holds(&r)));
        assert!((tableau_coverage(&r, &tableau) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_tableau_packages_into_type() {
        let r = hotels_r5();
        let fd = Fd::parse(r.schema(), "address -> region").unwrap();
        let tableau = greedy_cfd_tableau(&r, &fd, 1.0).unwrap();
        assert!(tableau.holds(&r));
        assert!((tableau.coverage(&r) - 0.5).abs() < 1e-12);
        // An FD with no clean group yields no tableau.
        let hopeless = Fd::parse(r.schema(), "name -> rate").unwrap();
        assert!(greedy_cfd_tableau(&r, &hopeless, 1.0).is_none());
    }

    #[test]
    fn greedy_tableau_respects_target() {
        let r = hotels_r6();
        let fd = Fd::parse(r.schema(), "street -> zip").unwrap();
        let full = greedy_tableau(&r, &fd, 1.0);
        let half = greedy_tableau(&r, &fd, 0.4);
        assert!(half.len() <= full.len());
        assert!(tableau_coverage(&r, &half) >= 0.4);
        assert!(tableau_coverage(&r, &full) > 0.9);
    }
}
