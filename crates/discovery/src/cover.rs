//! Minimal-hitting-set search shared by FastFD (difference sets) and
//! FASTDC (evidence-set complements): both reduce "find all minimal valid
//! dependencies" to "find all minimal sets hitting every set in a family".

use deptree_core::engine::Exec;

/// Find all *minimal* subsets of `0..universe` (as bitsets) that intersect
/// every set in `family`. Sets in `family` are bitsets over the same
/// universe. The empty family yields the empty hitting set.
///
/// This is the depth-first search both FastFD and FASTDC deploy, with the
/// classic orderings: branch on elements of the first uncovered set,
/// ordered by how many uncovered sets they hit.
pub fn minimal_hitting_sets(family: &[u64], universe: usize) -> Vec<u64> {
    minimal_hitting_sets_bounded(family, universe, &Exec::unbounded()).0
}

/// Budgeted [`minimal_hitting_sets`]: each DFS node costs one engine tick.
/// Returns the covers found plus a completeness flag. Every returned set
/// genuinely hits the whole family even when the search was cut short —
/// an incomplete run can only *miss* covers (and therefore report sets
/// that a missed smaller cover would have shadowed).
pub fn minimal_hitting_sets_bounded(
    family: &[u64],
    universe: usize,
    exec: &Exec,
) -> (Vec<u64>, bool) {
    assert!(universe <= 64, "hitting-set universe capped at 64");
    // Reduce to inclusion-minimal family members: hitting a subset implies
    // hitting its supersets.
    let mut minimal_family: Vec<u64> = Vec::new();
    // The (count_ones, value) key is canonical: callers feed families out
    // of hash maps, and under a node budget the DFS visit order decides
    // which covers make it out before the cutoff — popcount-only sorting
    // left ties in hash order (and could let duplicates slip past dedup,
    // which only removes adjacent repeats).
    let mut sorted: Vec<u64> = family.to_vec();
    sorted.sort_by_key(|s| (s.count_ones(), *s));
    sorted.dedup();
    for &s in &sorted {
        // Keep s only if no already-kept set is a subset of it.
        if !minimal_family.iter().any(|&m| m & !s == 0) {
            minimal_family.push(s);
        }
    }
    if minimal_family.contains(&0) {
        // An empty set can never be hit.
        return (Vec::new(), true);
    }
    let mut out: Vec<u64> = Vec::new();
    let complete = dfs(&minimal_family, 0u64, &mut out, exec);
    // The DFS can emit non-minimal sets via different branch orders;
    // filter to the minimal antichain.
    out.sort_by_key(|s| s.count_ones());
    let mut result: Vec<u64> = Vec::new();
    for s in out {
        if !result.iter().any(|&m| m & !s == 0) {
            result.push(s);
        }
    }
    result.sort();
    (result, complete)
}

/// Returns false when the budget cut the search short.
fn dfs(family: &[u64], chosen: u64, out: &mut Vec<u64>, exec: &Exec) -> bool {
    if !exec.tick_node() {
        return false;
    }
    // First set not yet hit.
    let Some(&uncovered) = family.iter().find(|&&s| s & chosen == 0) else {
        out.push(chosen);
        return true;
    };
    // Branch on each element of the uncovered set; order by coverage of
    // remaining sets (descending) to find small covers early.
    let mut elems: Vec<u32> = (0..64).filter(|&b| uncovered & (1 << b) != 0).collect();
    elems.sort_by_key(|&b| {
        std::cmp::Reverse(
            family
                .iter()
                .filter(|&&s| s & chosen == 0 && s & (1 << b) != 0)
                .count(),
        )
    });
    for b in elems {
        let next = chosen | (1 << b);
        // Cheap local pruning: an already-chosen element whose hit sets
        // are all also hit by the rest of `next` makes `next` non-minimal;
        // a strict subset will be found on another branch.
        let redundant = (0..64).filter(|&c| chosen & (1 << c) != 0).any(|c| {
            let without = next & !(1 << c);
            family
                .iter()
                .filter(|&&s| s & (1 << c) != 0)
                .all(|&s| s & without != 0)
        });
        if redundant {
            continue;
        }
        if !dfs(family, next, out, exec) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[u32]) -> u64 {
        bits.iter().fold(0u64, |acc, &b| acc | (1 << b))
    }

    #[test]
    fn single_set_yields_singletons() {
        let hs = minimal_hitting_sets(&[set(&[0, 2, 5])], 6);
        assert_eq!(hs, vec![set(&[0]), set(&[2]), set(&[5])]);
    }

    #[test]
    fn disjoint_sets_need_one_from_each() {
        let hs = minimal_hitting_sets(&[set(&[0, 1]), set(&[2, 3])], 4);
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert_eq!(h.count_ones(), 2);
        }
        assert!(hs.contains(&set(&[0, 2])));
        assert!(hs.contains(&set(&[1, 3])));
    }

    #[test]
    fn shared_element_dominates() {
        // {0,1}, {0,2}: {0} hits both; {1,2} is the other minimal cover.
        let hs = minimal_hitting_sets(&[set(&[0, 1]), set(&[0, 2])], 3);
        assert!(hs.contains(&set(&[0])));
        assert!(hs.contains(&set(&[1, 2])));
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn supersets_in_family_are_ignored() {
        let a = minimal_hitting_sets(&[set(&[0, 1]), set(&[0, 1, 2, 3])], 4);
        let b = minimal_hitting_sets(&[set(&[0, 1])], 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_family_has_empty_cover() {
        assert_eq!(minimal_hitting_sets(&[], 4), vec![0]);
    }

    #[test]
    fn unhittable_family() {
        assert!(minimal_hitting_sets(&[0u64], 4).is_empty());
    }

    #[test]
    fn all_outputs_hit_everything_and_are_minimal() {
        let family = [set(&[0, 1, 2]), set(&[1, 3]), set(&[2, 3]), set(&[0, 3])];
        let hs = minimal_hitting_sets(&family, 4);
        assert!(!hs.is_empty());
        for &h in &hs {
            assert!(family.iter().all(|&s| s & h != 0), "{h:b} misses a set");
            for b in 0..4 {
                if h & (1 << b) != 0 {
                    let smaller = h & !(1 << b);
                    assert!(
                        family.iter().any(|&s| s & smaller == 0),
                        "{h:b} not minimal"
                    );
                }
            }
        }
        // And the antichain property.
        for &a in &hs {
            for &b in &hs {
                assert!(a == b || a & b != a, "antichain violated");
            }
        }
    }
}
