//! Condition mining shared by the conditional extensions (CDDs, CMDs):
//! frequent categorical constants select the subsets conditional rules
//! bind to, and a rule is *interesting* only when its unconditioned form
//! fails globally.

use deptree_core::{Cdd, Cmd, Condition, Dependency, Md};
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation, Value, ValueType};

/// Frequent `(attribute, constant)` conditions over categorical/text
/// attributes, with at least `min_support` matching rows.
pub fn frequent_conditions(r: &Relation, min_support: usize) -> Vec<(AttrId, Value)> {
    let mut out = Vec::new();
    for (id, attr) in r.schema().iter() {
        if attr.ty == ValueType::Numeric {
            continue;
        }
        for (key, rows) in r.group_by(AttrSet::single(id)) {
            if rows.len() >= min_support {
                if let Some(v) = key.into_iter().next() {
                    out.push((id, v));
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

/// Configuration for the conditional discoveries.
#[derive(Debug, Clone)]
pub struct ConditionalConfig {
    /// Minimum rows a condition must cover.
    pub min_support: usize,
    /// Candidate distance thresholds per attribute.
    pub thresholds_per_attr: usize,
}

impl Default for ConditionalConfig {
    fn default() -> Self {
        ConditionalConfig {
            min_support: 2,
            thresholds_per_attr: 3,
        }
    }
}

/// CDD discovery (Kwashie et al., §3.3.5): for each frequent condition,
/// find single-atom DDs that hold *within* the conditioned subset but not
/// globally, and bind them to the condition.
pub fn discover_cdds(r: &Relation, cfg: &ConditionalConfig) -> Vec<Cdd> {
    let mut out = Vec::new();
    for (cond_attr, value) in frequent_conditions(r, cfg.min_support) {
        let condition = Condition::always().and(cond_attr, value);
        let subset_rows: Vec<usize> = (0..r.n_rows())
            .filter(|&row| condition.matches(r, row))
            .collect();
        if subset_rows.len() < cfg.min_support || subset_rows.len() == r.n_rows() {
            continue;
        }
        let subset = r.select_rows(&subset_rows);
        let dd_cfg = crate::dd::DdConfig {
            thresholds_per_attr: cfg.thresholds_per_attr,
            min_support: 1,
            max_lhs: 1,
        };
        for dd in crate::dd::discover(&subset, &dd_cfg) {
            // Interesting only when the DD fails on the full relation
            // (otherwise the unconditioned DD suffices), and the condition
            // attribute itself appears on neither side (rules *about* the
            // condition column are vacuous inside its scope).
            if dd.holds(r)
                || dd.lhs().iter().any(|a| a.attr == cond_attr)
                || dd.rhs().iter().any(|a| a.attr == cond_attr)
            {
                continue;
            }
            let cdd = Cdd::new(r.schema(), condition.clone(), dd);
            debug_assert!(cdd.holds(r), "{cdd}");
            out.push(cdd);
        }
    }
    out
}

/// CMD discovery (Wang et al., §3.7.5): conditions under which a matching
/// rule reaches full confidence that it lacks globally.
pub fn discover_cmds(r: &Relation, rhs: AttrSet, cfg: &ConditionalConfig) -> Vec<Cmd> {
    let schema = r.schema();
    let mut out = Vec::new();
    for (cond_attr, value) in frequent_conditions(r, cfg.min_support) {
        if rhs.contains(cond_attr) {
            continue;
        }
        let condition = Condition::always().and(cond_attr, value);
        let rows: Vec<usize> = (0..r.n_rows())
            .filter(|&row| condition.matches(r, row))
            .collect();
        if rows.len() < cfg.min_support || rows.len() == r.n_rows() {
            continue;
        }
        for lhs_attr in schema.ids() {
            if lhs_attr == cond_attr || rhs.contains(lhs_attr) {
                continue;
            }
            let metric = Metric::default_for(schema.ty(lhs_attr));
            for t in crate::dd::candidate_thresholds(r, lhs_attr, &metric, cfg.thresholds_per_attr)
            {
                let md = Md::new(schema, vec![(lhs_attr, metric.clone(), t)], rhs);
                if md.holds(r) {
                    continue; // unconditioned MD suffices
                }
                let cmd = Cmd::new(schema, condition.clone(), md);
                if cmd.holds(r) {
                    out.push(cmd);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_metrics::DistRange;
    use deptree_relation::examples::hotels_r6;

    #[test]
    fn frequent_conditions_respect_support() {
        let r = hotels_r6();
        let s = r.schema();
        let conds = frequent_conditions(&r, 2);
        // source s1 (3 rows), source s2 (3 rows), name NC (3), street
        // "12th St." (2), region "San Jose" (3), zip 95102 (3), New York ×2…
        assert!(conds.contains(&(s.id("source"), Value::str("s1"))));
        assert!(conds.contains(&(s.id("region"), Value::str("San Jose"))));
        // Singleton values excluded.
        assert!(!conds.contains(&(s.id("name"), Value::str("WD"))));
    }

    #[test]
    fn discovered_cdds_hold_and_add_value() {
        let r = hotels_r6();
        let found = discover_cdds(&r, &ConditionalConfig::default());
        for cdd in &found {
            assert!(cdd.holds(&r), "{cdd}");
            // The embedded DD must fail globally (value-add criterion).
            assert!(!cdd.dd().holds(&r), "{cdd} adds nothing");
            assert!(!cdd.condition().is_always());
        }
    }

    #[test]
    fn discovered_cmds_recover_the_source_condition() {
        // name≈0 → zip fails globally on r6 (NC spans two regions) but
        // holds within source s2: a CMD with that condition must surface.
        let r = hotels_r6();
        let s = r.schema();
        let found = discover_cmds(
            &r,
            AttrSet::single(s.id("zip")),
            &ConditionalConfig::default(),
        );
        for cmd in &found {
            assert!(cmd.holds(&r), "{cmd}");
            assert!(!cmd.md().holds(&r), "{cmd} adds nothing");
        }
        assert!(
            found.iter().any(|cmd| {
                cmd.condition().atoms() == [(s.id("source"), Value::str("s2"))]
                    && cmd.md().lhs().iter().any(|(a, _, _)| *a == s.id("name"))
            }),
            "{:?}",
            found.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cdd_respects_distrange_semantics() {
        // Smoke: the returned CDDs carry ≤-ranges produced by DD discovery.
        let r = hotels_r6();
        for cdd in discover_cdds(&r, &ConditionalConfig::default())
            .iter()
            .take(5)
        {
            for atom in cdd.dd().lhs() {
                assert!(atom.range.implies(&DistRange::any()));
            }
        }
    }
}
