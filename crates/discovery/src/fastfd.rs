//! FastFD (Wyss et al.): FD discovery from *difference sets* — the
//! attribute sets on which tuple pairs disagree — via depth-first search
//! for minimal covers. The dual strategy to TANE's lattice walk: FastFD
//! scales with tuples-squared but not with the attribute lattice, so the
//! two cross over on wide-vs-long relations (an ablation bench).

use crate::cover::minimal_hitting_sets_bounded;
use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::{Dependency, Fd};
use deptree_relation::{AttrSet, Relation, StrippedPartition};
use std::collections::HashSet;

/// Statistics from a run.
#[derive(Debug, Clone, Default)]
pub struct FastFdStats {
    /// Distinct difference sets found.
    pub difference_sets: usize,
    /// Tuple pairs compared.
    pub pairs_compared: usize,
}

/// Result of a FastFD run.
#[derive(Debug)]
pub struct FastFdResult {
    /// Minimal non-trivial FDs with single-attribute RHS.
    pub fds: Vec<Fd>,
    /// Run statistics.
    pub stats: FastFdStats,
}

/// Compute the distinct non-empty difference sets of `r`.
///
/// Following the FastFD paper, pairs are drawn from stripped partitions of
/// single attributes (pairs differing on *every* attribute contribute the
/// full set, which never constrains any minimal cover and is skipped via
/// the agree-set route): we enumerate pairs that agree on at least one
/// attribute, plus a sample of fully-disagreeing pairs which contribute
/// the universe set.
pub fn difference_sets(r: &Relation, stats: &mut FastFdStats) -> Vec<AttrSet> {
    difference_sets_bounded(r, stats, &Exec::unbounded()).0
}

/// Budgeted [`difference_sets`]: each tuple pair costs one engine row
/// tick. Returns the sets found plus a completeness flag; an incomplete
/// collection under-constrains covers, so callers must verify candidate
/// FDs before emitting them.
///
/// The pairwise value comparisons — the quadratic heart of FastFD — run
/// on the work-stealing pool, one task per partition class. The row
/// budget is *reserved* class-by-class in canonical scan order before the
/// parallel phase, so the set of pairs compared (and hence the anytime
/// result under an exhausted budget) is identical at every thread count.
pub fn difference_sets_bounded(
    r: &Relation,
    stats: &mut FastFdStats,
    exec: &Exec,
) -> (Vec<AttrSet>, bool) {
    let all = r.all_attrs();
    let threads = exec.threads();
    let mut seen: HashSet<AttrSet> = HashSet::new();
    let mut complete = true;
    // Pairs agreeing somewhere: walk each attribute's partition classes.
    let mut visited_pairs: HashSet<(usize, usize)> = HashSet::new();
    'scan: for a in r.schema().ids() {
        let p = StrippedPartition::from_column(r, a);
        // Reserve row budget per class in scan order; a short grant cuts
        // the last class to a pair-prefix, exactly where the serial
        // tick-per-pair loop would have stopped.
        let mut jobs: Vec<(Vec<usize>, usize)> = Vec::new();
        let mut truncated = false;
        for class in p.classes() {
            let want = (class.len() * (class.len() - 1) / 2) as u64;
            let granted = exec.try_reserve_rows(want) as usize;
            if granted > 0 {
                jobs.push((class.to_vec(), granted));
            }
            if (granted as u64) < want {
                truncated = true;
                break;
            }
        }
        // Pure phase: compare the granted pairs concurrently. A pair the
        // scan already visited through an earlier attribute is compared
        // redundantly here and discarded in the merge below — wasted
        // work, never a different answer.
        let batches = pool::map(threads, &jobs, |_, (class, limit)| {
            let mut out: Vec<((usize, usize), AttrSet)> = Vec::with_capacity(*limit);
            'pairs: for (i, &t1) in class.iter().enumerate() {
                for &t2 in class.iter().skip(i + 1) {
                    if out.len() == *limit {
                        break 'pairs;
                    }
                    // Amortized deadline/cancel check: deterministic
                    // budgets never cut a granted job, but wall-clock
                    // expiry must not wait for the whole class.
                    if out.len().is_multiple_of(64) && exec.interrupted() {
                        break 'pairs;
                    }
                    let diff: AttrSet = all
                        .iter()
                        .filter(|&b| r.value(t1, b) != r.value(t2, b))
                        .collect();
                    out.push(((t1, t2), diff));
                }
            }
            out
        });
        // Serial merge in class order: dedup against pairs from earlier
        // attributes and record the fresh difference sets.
        for ((t1, t2), diff) in batches.into_iter().flatten() {
            if !visited_pairs.insert((t1, t2)) {
                continue;
            }
            stats.pairs_compared += 1;
            if !diff.is_empty() {
                seen.insert(diff);
            }
        }
        if truncated || exec.interrupted() {
            // A short row grant or a mid-batch deadline/cancellation both
            // leave the pair scan partial: downstream covers must verify.
            complete = false;
            break 'scan;
        }
    }
    // Pairs agreeing nowhere have difference set = all attributes; one
    // representative suffices (it is a superset of everything anyway).
    // Detect cheaply: if not every pair was visited, such pairs exist.
    let n = r.n_rows();
    if n >= 2 && visited_pairs.len() < n * (n - 1) / 2 {
        seen.insert(all);
    }
    stats.difference_sets = seen.len();
    let mut v: Vec<AttrSet> = seen.into_iter().collect();
    v.sort();
    (v, complete)
}

/// Run FastFD on `r` to completion (no resource limits).
pub fn discover(r: &Relation) -> FastFdResult {
    discover_bounded(r, &Exec::unbounded()).result
}

/// Run FastFD on `r` under `exec`'s budget.
///
/// Anytime contract: when the difference-set scan was cut short the
/// hitting-set covers it implies are *not* trustworthy (missing
/// difference sets mean missing constraints), so every candidate FD is
/// re-verified against the relation before being emitted. A partial
/// result therefore contains only FDs that hold; completeness — and,
/// when the cover search itself was truncated, minimality — is forfeit.
pub fn discover_bounded(r: &Relation, exec: &Exec) -> Outcome<FastFdResult> {
    let mut stats = FastFdStats::default();
    let mut diff_span = exec.span("fastfd.difference_sets");
    let (diffs, diffs_complete) = difference_sets_bounded(r, &mut stats, exec);
    diff_span.attr("sets", diffs.len() as u64);
    diff_span.attr("pairs", stats.pairs_compared as u64);
    drop(diff_span);
    let mut cover_span = exec.span("fastfd.covers");
    let mut fds = Vec::new();
    'emit: for rhs in r.schema().ids() {
        // FDs X → rhs: X must intersect every difference set containing
        // rhs, using only attributes ≠ rhs.
        let relevant: Vec<u64> = diffs
            .iter()
            .filter(|d| d.contains(rhs))
            .map(|d| d.remove(rhs).bits())
            .collect();
        if relevant.contains(&0) {
            // Some pair differs ONLY on rhs: no FD with this RHS exists.
            continue;
        }
        let (covers, _) = minimal_hitting_sets_bounded(&relevant, r.n_attrs(), exec);
        for cover in covers {
            let lhs = AttrSet::from_bits(cover);
            let fd = Fd::new(r.schema(), lhs, AttrSet::single(rhs));
            // With a truncated pair scan the cover is only a candidate:
            // verify before emitting so partial results stay sound.
            if diffs_complete || fd.holds(r) {
                fds.push(fd);
            }
            if !exec.tick() {
                break 'emit;
            }
        }
    }
    fds.sort_by_key(|fd| (fd.lhs().len(), fd.lhs(), fd.rhs()));
    cover_span.attr("fds", fds.len() as u64);
    drop(cover_span);
    exec.finish(FastFdResult { fds, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tane::{self, TaneConfig};
    use deptree_core::Dependency;
    use deptree_relation::examples::{hotels_r1, hotels_r5, hotels_r6};
    use deptree_synth::{categorical, CategoricalConfig};

    #[test]
    fn sound_and_minimal_on_r5() {
        let r = hotels_r5();
        let result = discover(&r);
        assert!(!result.fds.is_empty());
        for fd in &result.fds {
            assert!(fd.holds(&r), "{fd}");
            for a in fd.lhs().iter() {
                let smaller = Fd::new(r.schema(), fd.lhs().remove(a), fd.rhs());
                assert!(!smaller.holds(&r), "{fd} not minimal");
            }
        }
    }

    #[test]
    fn agrees_with_tane() {
        // The two canonical algorithms must produce identical minimal
        // covers (restricted to TANE's depth bound).
        for r in [hotels_r1(), hotels_r5(), hotels_r6()] {
            let t = tane::discover(
                &r,
                &TaneConfig {
                    max_lhs: r.n_attrs(),
                    max_error: 0.0,
                },
            );
            let f = discover(&r);
            let ts: HashSet<String> = t.fds.iter().map(|fd| fd.to_string()).collect();
            let fs: HashSet<String> = f.fds.iter().map(|fd| fd.to_string()).collect();
            assert_eq!(ts, fs, "TANE and FastFD disagree on {} attrs", r.n_attrs());
        }
    }

    #[test]
    fn agrees_with_tane_on_synthetic() {
        let cfg = CategoricalConfig {
            n_rows: 120,
            n_key_attrs: 2,
            n_dep_attrs: 2,
            domain: 8,
            error_rate: 0.05,
            seed: 5,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let t = tane::discover(
            &data.relation,
            &TaneConfig {
                max_lhs: 4,
                max_error: 0.0,
            },
        );
        let f = discover(&data.relation);
        let ts: HashSet<String> = t.fds.iter().map(|fd| fd.to_string()).collect();
        let fs: HashSet<String> = f.fds.iter().map(|fd| fd.to_string()).collect();
        assert_eq!(ts, fs);
    }

    #[test]
    fn no_fd_when_rhs_varies_alone() {
        // r5: t3 and t4 differ only on region ⇒ nothing determines region
        // …except that they differ on region only; check the guard.
        let r = hotels_r5();
        let result = discover(&r);
        assert!(
            !result
                .fds
                .iter()
                .any(|fd| fd.rhs() == AttrSet::single(r.schema().id("region"))),
            "{:?}",
            result.fds
        );
    }

    #[test]
    fn bounded_run_verifies_partial_covers() {
        use deptree_core::engine::Budget;
        let cfg = CategoricalConfig {
            n_rows: 150,
            n_key_attrs: 2,
            n_dep_attrs: 3,
            domain: 6,
            error_rate: 0.1,
            seed: 11,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        // Row budget far below the pair count truncates the scan; the
        // partial result must still be sound.
        let exec = Exec::new(Budget::new().with_max_rows(50));
        let out = discover_bounded(r, &exec);
        assert!(!out.complete);
        for fd in &out.result.fds {
            assert!(fd.holds(r), "{fd} unsound under row budget");
        }
        // Determinism for a fixed budget.
        let again = discover_bounded(r, &Exec::new(Budget::new().with_max_rows(50)));
        let names = |fds: &[Fd]| fds.iter().map(|f| f.to_string()).collect::<Vec<_>>();
        assert_eq!(names(&out.result.fds), names(&again.result.fds));
    }

    #[test]
    fn difference_set_stats_populated() {
        let r = hotels_r5();
        let mut stats = FastFdStats::default();
        let diffs = difference_sets(&r, &mut stats);
        assert_eq!(stats.difference_sets, diffs.len());
        assert!(stats.pairs_compared >= 2);
        // Every reported set is a genuine difference set of some pair.
        for d in &diffs {
            assert!(!d.is_empty());
        }
    }
}
