//! CORDS (Ilyas et al.): sample-based discovery of soft functional
//! dependencies and correlations, for query-optimizer statistics (§2.1.3).
//!
//! The defining property benchmarked by the ablation suite: the sample
//! size — and therefore the cost — is essentially independent of the
//! relation size.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Fd, Sfd};
use deptree_relation::{AttrId, AttrSet, Relation, Value};
use std::collections::HashMap;

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct CordsConfig {
    /// Rows sampled (systematic sampling keeps the generator dependency
    /// out of the hot path). CORDS' headline: a few thousand suffice
    /// regardless of table size.
    pub sample_size: usize,
    /// Minimum strength `|dom(X)| / |dom(X,Y)|` for an SFD (§2.1.1).
    pub min_strength: f64,
    /// Chi-square significance threshold for flagging a correlation
    /// (CORDS' robust chi-square analysis). 0 disables the filter.
    pub chi2_threshold: f64,
    /// Cap on contingency-table categories per column (CORDS buckets
    /// domains for robustness).
    pub max_categories: usize,
}

impl Default for CordsConfig {
    fn default() -> Self {
        CordsConfig {
            sample_size: 2000,
            min_strength: 0.9,
            chi2_threshold: 0.0,
            max_categories: 20,
        }
    }
}

/// A column pair CORDS flags as correlated (for joint statistics).
#[derive(Debug, Clone)]
pub struct Correlation {
    /// First column.
    pub a: AttrId,
    /// Second column.
    pub b: AttrId,
    /// The chi-square statistic over the bucketized contingency table.
    pub chi2: f64,
}

/// CORDS output: soft FDs plus correlated column pairs.
#[derive(Debug)]
pub struct CordsResult {
    /// Discovered SFDs (single-attribute sides, as in CORDS).
    pub sfds: Vec<Sfd>,
    /// Correlated pairs with their chi-square statistic.
    pub correlations: Vec<Correlation>,
    /// Number of rows actually sampled.
    pub sampled_rows: usize,
}

fn systematic_sample(r: &Relation, k: usize) -> Vec<usize> {
    let n = r.n_rows();
    if n <= k {
        return (0..n).collect();
    }
    let step = n as f64 / k as f64;
    (0..k).map(|i| (i as f64 * step) as usize).collect()
}

fn bucket(v: &Value, max: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish() % max as u64
}

/// Chi-square statistic of independence over the bucketized contingency
/// table of columns `a`, `b` restricted to `rows`.
pub fn chi_square(r: &Relation, rows: &[usize], a: AttrId, b: AttrId, max_cat: usize) -> f64 {
    let mut joint: HashMap<(u64, u64), f64> = HashMap::new();
    let mut ma: HashMap<u64, f64> = HashMap::new();
    let mut mb: HashMap<u64, f64> = HashMap::new();
    let n = rows.len() as f64;
    for &row in rows {
        let ba = bucket(r.value(row, a), max_cat);
        let bb = bucket(r.value(row, b), max_cat);
        *joint.entry((ba, bb)).or_default() += 1.0;
        *ma.entry(ba).or_default() += 1.0;
        *mb.entry(bb).or_default() += 1.0;
    }
    let mut chi2 = 0.0;
    for (&(ba, bb), &obs) in &joint {
        let expected = ma[&ba] * mb[&bb] / n;
        chi2 += (obs - expected).powi(2) / expected;
    }
    // Unobserved cells contribute their expectation.
    for (&ba, &ca) in &ma {
        for (&bb, &cb) in &mb {
            if !joint.contains_key(&(ba, bb)) {
                chi2 += ca * cb / n;
            }
        }
    }
    chi2
}

/// Run CORDS over all ordered column pairs.
pub fn discover(r: &Relation, cfg: &CordsConfig) -> CordsResult {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per column pair, row ticks for
/// the per-pair sample scans. Soft FDs and correlations are emitted only
/// after their own pair's statistics are fully computed, so partial
/// results are sound.
pub fn discover_bounded(r: &Relation, cfg: &CordsConfig, exec: &Exec) -> Outcome<CordsResult> {
    let rows = systematic_sample(r, cfg.sample_size);
    let sample = r.select_rows(&rows);
    let local_rows: Vec<usize> = (0..sample.n_rows()).collect();
    let mut sfds = Vec::new();
    let mut correlations = Vec::new();
    'search: for a in sample.schema().ids() {
        for b in sample.schema().ids() {
            if a == b {
                continue;
            }
            if !exec.tick_node() || !exec.tick_rows(sample.n_rows() as u64) {
                break 'search;
            }
            // Strength on the sample (§2.1.1).
            let dom_a = sample.distinct_count(AttrSet::single(a));
            let dom_ab = sample.distinct_count(AttrSet::from_ids([a, b]));
            let strength = if dom_ab == 0 {
                1.0
            } else {
                dom_a as f64 / dom_ab as f64
            };
            if strength >= cfg.min_strength {
                let fd = Fd::new(r.schema(), AttrSet::single(a), AttrSet::single(b));
                sfds.push(Sfd::new(fd, cfg.min_strength));
            }
            if a < b {
                let chi2 = chi_square(&sample, &local_rows, a, b, cfg.max_categories);
                if chi2 > cfg.chi2_threshold && cfg.chi2_threshold > 0.0 {
                    correlations.push(Correlation { a, b, chi2 });
                }
            }
        }
    }
    exec.finish(CordsResult {
        sfds,
        correlations,
        sampled_rows: rows.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_synth::{categorical, CategoricalConfig};

    fn planted(n_rows: usize, error: f64, seed: u64) -> categorical::PlantedRelation {
        let cfg = CategoricalConfig {
            n_rows,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 30,
            error_rate: error,
            seed,
        };
        categorical::generate(&cfg, &mut deptree_synth::rng(seed))
    }

    #[test]
    fn finds_planted_soft_fd() {
        // Note the strength measure is *domain*-based (§2.1.1): every
        // dirty cell mints a fresh (X, Y) combination, so even a little
        // noise erodes strength fast — hence the mild 0.1% rate here.
        let data = planted(3000, 0.001, 4);
        let result = discover(
            &data.relation,
            &CordsConfig {
                min_strength: 0.8,
                ..Default::default()
            },
        );
        // K0 → D0 should surface as a soft FD despite the noise.
        let found = result.sfds.iter().any(|s| {
            s.embedded().lhs() == AttrSet::single(AttrId(0))
                && s.embedded().rhs() == AttrSet::single(AttrId(1))
        });
        assert!(found, "{:?}", result.sfds.len());
        // And each reported SFD keeps most of its strength on the full
        // data (sampling can disagree slightly; verify on the instance).
        for s in &result.sfds {
            assert!(
                s.strength(&data.relation) >= 0.7,
                "{s}: {}",
                s.strength(&data.relation)
            );
        }
    }

    #[test]
    fn reported_sfds_hold_with_threshold() {
        let data = planted(2000, 0.0, 8);
        let result = discover(&data.relation, &CordsConfig::default());
        for s in &result.sfds {
            assert!(s.holds(&data.relation), "{s}");
        }
    }

    #[test]
    fn sample_size_independent_of_table() {
        let small = planted(1_000, 0.0, 1);
        let large = planted(20_000, 0.0, 1);
        let cfg = CordsConfig::default();
        let rs = discover(&small.relation, &cfg);
        let rl = discover(&large.relation, &cfg);
        assert!(rs.sampled_rows <= cfg.sample_size);
        assert_eq!(rl.sampled_rows, cfg.sample_size);
    }

    #[test]
    fn chi_square_separates_correlated_from_independent() {
        let data = planted(3000, 0.0, 6);
        let r = &data.relation;
        let rows: Vec<usize> = (0..r.n_rows()).collect();
        // K0 and D0 are functionally related → large chi2.
        let dep = chi_square(r, &rows, AttrId(0), AttrId(1), 20);
        // Two independent uniform columns from different seeds: build one.
        let cfg = CategoricalConfig {
            n_rows: 3000,
            n_key_attrs: 2,
            n_dep_attrs: 0,
            domain: 30,
            error_rate: 0.0,
            seed: 99,
        };
        let ind = categorical::generate(&cfg, &mut deptree_synth::rng(99));
        let rows2: Vec<usize> = (0..ind.relation.n_rows()).collect();
        let indep = chi_square(&ind.relation, &rows2, AttrId(0), AttrId(1), 20);
        assert!(
            dep > indep * 3.0,
            "correlated {dep} should dwarf independent {indep}"
        );
    }
}
