//! MFD verification and threshold discovery (Koudas et al., §3.1.3).
//!
//! The key step is *verification*: per equal-`X` group, compute the
//! diameter on the dependent attribute. Exact verification is `O(n²)` in
//! the group size; the pivot approximation from the paper bounds the
//! diameter within a factor 2 in linear time (an ablation bench compares
//! the two).

use deptree_core::engine::{Exec, Outcome};
use deptree_core::Mfd;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation};

/// Exact diameter of `rows` on `attr` under `metric` — `O(k²)`.
pub fn exact_diameter(r: &Relation, rows: &[usize], attr: AttrId, metric: &Metric) -> f64 {
    let mut max = 0.0f64;
    for (i, &a) in rows.iter().enumerate() {
        for &b in rows.iter().skip(i + 1) {
            max = max.max(metric.dist(r.value(a, attr), r.value(b, attr)));
        }
    }
    max
}

/// Pivot-based diameter approximation — `O(k)`: the true diameter `D`
/// satisfies `M ≤ D ≤ 2·M` where `M` is the maximum distance to the first
/// row (triangle inequality). Returns `M`.
pub fn pivot_radius(r: &Relation, rows: &[usize], attr: AttrId, metric: &Metric) -> f64 {
    let Some((&pivot, rest)) = rows.split_first() else {
        return 0.0;
    };
    rest.iter()
        .map(|&b| metric.dist(r.value(pivot, attr), r.value(b, attr)))
        .fold(0.0f64, f64::max)
}

/// Verification verdict for a candidate MFD under the pivot scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxVerdict {
    /// Every group's pivot radius ≤ δ/2: the MFD certainly holds.
    Holds,
    /// Some group's pivot radius > δ: the MFD certainly fails.
    Fails,
    /// In between: exact verification needed.
    Unknown,
}

/// Approximately verify `lhs →^δ attr` using pivot radii only.
pub fn approx_verify(
    r: &Relation,
    lhs: AttrSet,
    attr: AttrId,
    metric: &Metric,
    delta: f64,
) -> ApproxVerdict {
    let mut all_certain_hold = true;
    for rows in r.group_by(lhs).values() {
        let m = pivot_radius(r, rows, attr, metric);
        if m > delta {
            return ApproxVerdict::Fails; // D ≥ M > δ
        }
        if 2.0 * m > delta {
            all_certain_hold = false; // D could be up to 2M > δ
        }
    }
    if all_certain_hold {
        ApproxVerdict::Holds
    } else {
        ApproxVerdict::Unknown
    }
}

/// The smallest `δ` for which `lhs →^δ attr` holds: the maximum group
/// diameter. Discovery proposes this threshold (§3.1.3).
pub fn minimal_delta(r: &Relation, lhs: AttrSet, attr: AttrId, metric: &Metric) -> f64 {
    r.group_by(lhs)
        .values()
        .map(|rows| exact_diameter(r, rows, attr, metric))
        .fold(0.0f64, f64::max)
}

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct MfdConfig {
    /// Only report MFDs whose minimal δ is at most this cap (a huge δ
    /// means "no metric relationship worth declaring").
    pub max_delta: f64,
    /// Maximum LHS size.
    pub max_lhs: usize,
}

impl Default for MfdConfig {
    fn default() -> Self {
        MfdConfig {
            max_delta: 10.0,
            max_lhs: 2,
        }
    }
}

/// Discover MFDs with minimal thresholds: for every small LHS set and
/// dependent attribute (with its type's default metric), propose
/// `lhs →^δmin attr` when `δmin ≤ max_delta` and the LHS is minimal.
pub fn discover(r: &Relation, cfg: &MfdConfig) -> Vec<(Mfd, f64)> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per candidate, row ticks for the
/// per-group diameter scans. Each emitted MFD carries its fully-computed
/// minimal threshold, so partial results are sound.
pub fn discover_bounded(r: &Relation, cfg: &MfdConfig, exec: &Exec) -> Outcome<Vec<(Mfd, f64)>> {
    let mut out: Vec<(Mfd, f64)> = Vec::new();
    let mut found: Vec<(AttrSet, AttrId)> = Vec::new();
    let all = r.all_attrs();
    let sets = crate::mvd_subsets(all, cfg.max_lhs);
    'search: for lhs in sets {
        for attr in r.schema().ids() {
            if lhs.contains(attr) {
                continue;
            }
            if found.iter().any(|(l, a)| l.is_subset(lhs) && *a == attr) {
                continue;
            }
            if !exec.tick_node() || !exec.tick_rows(r.n_rows() as u64) {
                break 'search;
            }
            let metric = Metric::default_for(r.schema().ty(attr));
            let delta = minimal_delta(r, lhs, attr, &metric);
            if delta <= cfg.max_delta {
                found.push((lhs, attr));
                out.push((
                    Mfd::new(r.schema(), lhs, vec![(attr, metric, delta)]),
                    delta,
                ));
            }
        }
    }
    exec.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::{hotels_r1, hotels_r6};

    #[test]
    fn minimal_delta_on_r1_regions() {
        // address → region: groups {t1,t2} (diameter 0), {t3,t4}
        // ("Boston" vs "Chicago, MA": edit distance 10), {t5,t6}
        // ("Chicago" vs "Chicago, IL": 4), {t7}, {t8}.
        let r = hotels_r1();
        let s = r.schema();
        let d = minimal_delta(
            &r,
            AttrSet::single(s.id("address")),
            s.id("region"),
            &Metric::Levenshtein,
        );
        assert_eq!(d, 10.0);
    }

    #[test]
    fn discovered_mfds_hold_with_their_delta() {
        let r = hotels_r6();
        for (mfd, _) in discover(
            &r,
            &MfdConfig {
                max_delta: 50.0,
                max_lhs: 2,
            },
        ) {
            assert!(mfd.holds(&r), "{mfd}");
        }
    }

    #[test]
    fn pivot_bounds_diameter() {
        let r = hotels_r6();
        let s = r.schema();
        let rows: Vec<usize> = (0..r.n_rows()).collect();
        for attr in [s.id("price"), s.id("name"), s.id("address")] {
            let metric = Metric::default_for(s.ty(attr));
            let d = exact_diameter(&r, &rows, attr, &metric);
            let m = pivot_radius(&r, &rows, attr, &metric);
            assert!(m <= d + 1e-9, "radius {m} > diameter {d}");
            assert!(d <= 2.0 * m + 1e-9, "diameter {d} > 2×radius {m}");
        }
    }

    #[test]
    fn approx_verify_consistent_with_exact() {
        let r = hotels_r1();
        let s = r.schema();
        let lhs = AttrSet::single(s.id("address"));
        let attr = s.id("region");
        let metric = Metric::Levenshtein;
        for delta in [0.0, 3.0, 4.0, 8.0, 9.0, 16.0, 20.0] {
            let exact = minimal_delta(&r, lhs, attr, &metric) <= delta;
            match approx_verify(&r, lhs, attr, &metric, delta) {
                ApproxVerdict::Holds => assert!(exact, "δ={delta}"),
                ApproxVerdict::Fails => assert!(!exact, "δ={delta}"),
                ApproxVerdict::Unknown => {}
            }
        }
    }

    #[test]
    fn empty_group_edge_cases() {
        let r = hotels_r1();
        let s = r.schema();
        assert_eq!(
            pivot_radius(&r, &[], s.id("region"), &Metric::Levenshtein),
            0.0
        );
        assert_eq!(
            exact_diameter(&r, &[3], s.id("region"), &Metric::Levenshtein),
            0.0
        );
    }
}
