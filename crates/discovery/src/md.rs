//! Matching-dependency discovery (Song–Chen, §3.7.3): support/confidence
//! search over the similarity predicate space, relative candidate keys,
//! and the greedy concise matching-key cover.

use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::Md;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation};
use std::collections::HashSet;

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct MdConfig {
    /// Minimum support (fraction of pairs that are LHS-similar).
    pub min_support: f64,
    /// Minimum confidence (fraction of LHS-similar pairs already
    /// identified on the RHS).
    pub min_confidence: f64,
    /// Candidate thresholds per attribute (distance-distribution
    /// quantiles, as for DDs).
    pub thresholds_per_attr: usize,
    /// Maximum LHS atoms.
    pub max_lhs: usize,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            min_support: 0.01,
            min_confidence: 0.95,
            thresholds_per_attr: 3,
            max_lhs: 2,
        }
    }
}

/// A discovered MD with its measured quality.
#[derive(Debug, Clone)]
pub struct ScoredMd {
    /// The dependency.
    pub md: Md,
    /// Pair support.
    pub support: f64,
    /// Confidence.
    pub confidence: f64,
}

/// Discover MDs `X≈ → rhs⇌` meeting the support/confidence bars, keeping
/// only *relative candidate keys*: LHS sets minimal in the sense that
/// dropping any atom (or loosening it to the next threshold) violates the
/// confidence bar.
pub fn discover(r: &Relation, rhs: AttrSet, cfg: &MdConfig) -> Vec<ScoredMd> {
    discover_bounded(r, rhs, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick plus a linear row charge per
/// threshold combination (scoring is index-based, not a pair scan). MDs
/// are emitted only after clearing both bars, so partial results are
/// sound.
///
/// Combinations of one LHS attribute set are scored in parallel via
/// `pool::map` (scoring is pure), with budget *reservation* up front and a
/// serial in-order merge replaying the domination pruning — output is
/// identical at any thread count, and equal to [`discover_naive`].
pub fn discover_bounded(
    r: &Relation,
    rhs: AttrSet,
    cfg: &MdConfig,
    exec: &Exec,
) -> Outcome<Vec<ScoredMd>> {
    let schema = r.schema();
    let candidates: Vec<AttrId> = schema.ids().filter(|a| !rhs.contains(*a)).collect();
    let mut out: Vec<ScoredMd> = Vec::new();
    let mut span = exec.span("md.discover");
    let mut lhs_sets = 0u64;
    'search: for lhs_set in crate::mvd_subsets(candidates.iter().copied().collect(), cfg.max_lhs) {
        lhs_sets += 1;
        let lhs_attrs = lhs_set.to_vec();
        let combos = threshold_combos(r, &lhs_attrs, cfg);
        let n = r.n_rows() as u64;
        let granted = exec.try_reserve_batch(combos.len() as u64, n.max(1)) as usize;
        let scored: Vec<Option<ScoredMd>> =
            pool::map(exec.threads(), &combos[..granted], |_, combo| {
                if exec.interrupted() {
                    return None;
                }
                let lhs: Vec<(AttrId, Metric, f64)> = lhs_attrs
                    .iter()
                    .zip(combo)
                    .map(|(&a, &t)| (a, Metric::default_for(schema.ty(a)), t))
                    .collect();
                let md = Md::new(schema, lhs, rhs);
                let (support, confidence) = md.support_confidence(r);
                Some(ScoredMd {
                    md,
                    support,
                    confidence,
                })
            });
        for smd in scored {
            let Some(smd) = smd else { break 'search };
            merge_scored(&mut out, smd, cfg);
        }
        if granted < combos.len() {
            break 'search;
        }
    }
    out.sort_by(|a, b| b.support.total_cmp(&a.support));
    span.attr("lhs_sets", lhs_sets);
    span.attr("emitted", out.len() as u64);
    drop(span);
    exec.finish(out)
}

/// Reference serial implementation scoring every combination with the
/// full `O(n²)` pair scan; kept as the differential-test and benchmark
/// baseline for [`discover`].
pub fn discover_naive(r: &Relation, rhs: AttrSet, cfg: &MdConfig) -> Vec<ScoredMd> {
    let schema = r.schema();
    let candidates: Vec<AttrId> = schema.ids().filter(|a| !rhs.contains(*a)).collect();
    let mut out: Vec<ScoredMd> = Vec::new();
    for lhs_set in crate::mvd_subsets(candidates.iter().copied().collect(), cfg.max_lhs) {
        let lhs_attrs = lhs_set.to_vec();
        for combo in &threshold_combos(r, &lhs_attrs, cfg) {
            let lhs: Vec<(AttrId, Metric, f64)> = lhs_attrs
                .iter()
                .zip(combo)
                .map(|(&a, &t)| (a, Metric::default_for(schema.ty(a)), t))
                .collect();
            let md = Md::new(schema, lhs, rhs);
            let (support, confidence) = md.support_confidence_naive(r);
            merge_scored(
                &mut out,
                ScoredMd {
                    md,
                    support,
                    confidence,
                },
                cfg,
            );
        }
    }
    out.sort_by(|a, b| b.support.total_cmp(&a.support));
    out
}

/// Threshold combinations (cartesian product of per-attribute candidate
/// thresholds) for one LHS attribute set.
fn threshold_combos(r: &Relation, lhs_attrs: &[AttrId], cfg: &MdConfig) -> Vec<Vec<f64>> {
    let schema = r.schema();
    let thresholds: Vec<Vec<f64>> = lhs_attrs
        .iter()
        .map(|&a| {
            crate::dd::candidate_thresholds(
                r,
                a,
                &Metric::default_for(schema.ty(a)),
                cfg.thresholds_per_attr,
            )
        })
        .collect();
    let mut combos: Vec<Vec<f64>> = vec![vec![]];
    for t in &thresholds {
        let mut next = Vec::new();
        for c in &combos {
            for &v in t {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        combos = next;
    }
    combos
}

/// Serial merge step: keep `smd` only if it clears the bars and is not
/// dominated; evict rules it dominates (RCK-style minimality — an MD
/// whose LHS uses a subset of attributes with looser-or-equal thresholds
/// matches strictly more pairs, making the tighter rule redundant).
fn merge_scored(out: &mut Vec<ScoredMd>, smd: ScoredMd, cfg: &MdConfig) {
    if smd.support < cfg.min_support || smd.confidence < cfg.min_confidence {
        return;
    }
    if out.iter().any(|prev| dominates(&prev.md, &smd.md)) {
        return;
    }
    out.retain(|prev| !dominates(&smd.md, &prev.md));
    out.push(smd);
}

/// `a` dominates `b` when `a`'s LHS attributes ⊆ `b`'s with thresholds ≥
/// (looser): every pair `b` matches, `a` matches too, so `b` is redundant.
fn dominates(a: &Md, b: &Md) -> bool {
    a.lhs().iter().all(|(attr_a, _, t_a)| {
        b.lhs()
            .iter()
            .any(|(attr_b, _, t_b)| attr_a == attr_b && t_a >= t_b)
    }) && a.lhs().len() <= b.lhs().len()
        && a.rhs() == b.rhs()
}

/// Greedy concise matching-key cover (Song–Chen \[90\]): pick the fewest
/// MDs so that the fraction of true duplicate pairs (given by `same`)
/// matched by at least one MD reaches `target_recall`.
pub fn concise_matching_keys(
    r: &Relation,
    candidates: &[ScoredMd],
    same: &dyn Fn(usize, usize) -> bool,
    target_recall: f64,
) -> Vec<ScoredMd> {
    // One O(1)-memory counting pass fixes the recall target; duplicate
    // pairs are never materialized.  Gains stream each candidate's
    // LHS-similar pairs out of its similarity index, so an MD's cost is
    // proportional to its match count, not to n².
    let mut total_dups = 0usize;
    for (i, j) in r.row_pairs() {
        if same(i, j) {
            total_dups += 1;
        }
    }
    if total_dups == 0 {
        return Vec::new();
    }
    let target = (target_recall * total_dups as f64).ceil() as usize;
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    let mut picked = Vec::new();
    let mut remaining: Vec<&ScoredMd> = candidates.iter().collect();
    while covered.len() < target && !remaining.is_empty() {
        // Greedy: the MD covering the most uncovered duplicate pairs.
        let (best_idx, best_gain) = remaining
            .iter()
            .enumerate()
            .map(|(idx, smd)| {
                let mut gain = 0usize;
                smd.md.for_each_matching(r, |i, j| {
                    if same(i, j) && !covered.contains(&(i, j)) {
                        gain += 1;
                    }
                    true
                });
                (idx, gain)
            })
            .max_by_key(|&(_, gain)| gain)
            .unwrap_or((0, 0));
        if best_gain == 0 {
            break;
        }
        let chosen = remaining.remove(best_idx);
        chosen.md.for_each_matching(r, |i, j| {
            if same(i, j) {
                covered.insert((i, j));
            }
            true
        });
        picked.push(chosen.clone());
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r6;
    use deptree_synth::{entities, EntitiesConfig};

    #[test]
    fn discovers_md1_shape_on_r6() {
        // §3.7.1's md1: street≈, region≈ → zip⇌. On r6, even single-attr
        // street similarity suffices; the discovered set must contain a
        // street-based MD with full confidence.
        let r = hotels_r6();
        let s = r.schema();
        let rhs = AttrSet::single(s.id("zip"));
        let found = discover(&r, rhs, &MdConfig::default());
        assert!(!found.is_empty());
        for smd in &found {
            assert!(smd.confidence >= 0.95);
            assert!(smd.md.holds(&r) || smd.confidence < 1.0);
        }
        assert!(found
            .iter()
            .any(|smd| smd.md.lhs().iter().any(|(a, _, _)| *a == s.id("street"))));
    }

    #[test]
    fn indexed_discovery_matches_naive() {
        let r = hotels_r6();
        let s = r.schema();
        let rhs = AttrSet::single(s.id("zip"));
        let cfg = MdConfig::default();
        let fast = discover(&r, rhs, &cfg);
        let naive = discover_naive(&r, rhs, &cfg);
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(&naive) {
            assert_eq!(a.md, b.md);
            assert_eq!(a.support, b.support);
            assert_eq!(a.confidence, b.confidence);
        }
    }

    #[test]
    fn domination_keeps_loosest_rules() {
        let r = hotels_r6();
        let s = r.schema();
        let found = discover(&r, AttrSet::single(s.id("zip")), &MdConfig::default());
        for a in &found {
            for b in &found {
                if !std::ptr::eq(a, b) {
                    assert!(!dominates(&a.md, &b.md), "{} dominates {}", a.md, b.md);
                }
            }
        }
    }

    #[test]
    fn concise_keys_reach_recall_on_synthetic_entities() {
        let cfg = EntitiesConfig {
            n_entities: 40,
            max_duplicates: 3,
            variety: 0.6,
            error_rate: 0.0,
            seed: 21,
        };
        let data = entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let s = r.schema();
        let rhs = AttrSet::single(s.id("zip"));
        let candidates = discover(
            r,
            rhs,
            &MdConfig {
                min_support: 0.001,
                min_confidence: 0.9,
                thresholds_per_attr: 3,
                max_lhs: 1,
            },
        );
        assert!(!candidates.is_empty());
        let cluster = data.cluster.clone();
        let same = move |i: usize, j: usize| cluster[i] == cluster[j];
        let keys = concise_matching_keys(r, &candidates, &same, 0.8);
        assert!(!keys.is_empty());
        // Measure achieved recall.
        let dup: Vec<(usize, usize)> = r
            .row_pairs()
            .filter(|&(i, j)| data.cluster[i] == data.cluster[j])
            .collect();
        let matched = dup
            .iter()
            .filter(|&&(i, j)| keys.iter().any(|k| k.md.lhs_similar(r, i, j)))
            .count();
        assert!(
            matched as f64 / dup.len() as f64 >= 0.8,
            "recall {} with {} keys",
            matched as f64 / dup.len() as f64,
            keys.len()
        );
        // Conciseness: fewer keys than candidates.
        assert!(keys.len() <= candidates.len());
    }
}
