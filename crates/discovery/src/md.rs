//! Matching-dependency discovery (Song–Chen, §3.7.3): support/confidence
//! search over the similarity predicate space, relative candidate keys,
//! and the greedy concise matching-key cover.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::Md;
use deptree_metrics::Metric;
use deptree_relation::{AttrId, AttrSet, Relation};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct MdConfig {
    /// Minimum support (fraction of pairs that are LHS-similar).
    pub min_support: f64,
    /// Minimum confidence (fraction of LHS-similar pairs already
    /// identified on the RHS).
    pub min_confidence: f64,
    /// Candidate thresholds per attribute (distance-distribution
    /// quantiles, as for DDs).
    pub thresholds_per_attr: usize,
    /// Maximum LHS atoms.
    pub max_lhs: usize,
}

impl Default for MdConfig {
    fn default() -> Self {
        MdConfig {
            min_support: 0.01,
            min_confidence: 0.95,
            thresholds_per_attr: 3,
            max_lhs: 2,
        }
    }
}

/// A discovered MD with its measured quality.
#[derive(Debug, Clone)]
pub struct ScoredMd {
    /// The dependency.
    pub md: Md,
    /// Pair support.
    pub support: f64,
    /// Confidence.
    pub confidence: f64,
}

/// Discover MDs `X≈ → rhs⇌` meeting the support/confidence bars, keeping
/// only *relative candidate keys*: LHS sets minimal in the sense that
/// dropping any atom (or loosening it to the next threshold) violates the
/// confidence bar.
pub fn discover(r: &Relation, rhs: AttrSet, cfg: &MdConfig) -> Vec<ScoredMd> {
    discover_bounded(r, rhs, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per threshold combination, row
/// ticks for each support/confidence pair scan. MDs are emitted only
/// after clearing both bars, so partial results are sound.
pub fn discover_bounded(
    r: &Relation,
    rhs: AttrSet,
    cfg: &MdConfig,
    exec: &Exec,
) -> Outcome<Vec<ScoredMd>> {
    let schema = r.schema();
    let candidates: Vec<AttrId> = schema.ids().filter(|a| !rhs.contains(*a)).collect();
    let mut out: Vec<ScoredMd> = Vec::new();
    'search: for lhs_set in crate::mvd_subsets(candidates.iter().copied().collect(), cfg.max_lhs) {
        let lhs_attrs = lhs_set.to_vec();
        // Threshold combinations.
        let thresholds: Vec<Vec<f64>> = lhs_attrs
            .iter()
            .map(|&a| {
                crate::dd::candidate_thresholds(
                    r,
                    a,
                    &Metric::default_for(schema.ty(a)),
                    cfg.thresholds_per_attr,
                )
            })
            .collect();
        let mut combos: Vec<Vec<f64>> = vec![vec![]];
        for t in &thresholds {
            let mut next = Vec::new();
            for c in &combos {
                for &v in t {
                    let mut c2 = c.clone();
                    c2.push(v);
                    next.push(c2);
                }
            }
            combos = next;
        }
        for combo in combos {
            let n = r.n_rows() as u64;
            if !exec.tick_node() || !exec.tick_rows(n * n.saturating_sub(1) / 2) {
                break 'search;
            }
            let lhs: Vec<(AttrId, Metric, f64)> = lhs_attrs
                .iter()
                .zip(&combo)
                .map(|(&a, &t)| (a, Metric::default_for(schema.ty(a)), t))
                .collect();
            let md = Md::new(schema, lhs, rhs);
            let (support, confidence) = md.support_confidence(r);
            if support >= cfg.min_support && confidence >= cfg.min_confidence {
                // RCK-style minimality: an already-found MD whose LHS uses
                // a subset of attributes with looser-or-equal thresholds
                // dominates this one (same rule, more matches).
                let dominated = out.iter().any(|prev| dominates(&prev.md, &md));
                if !dominated {
                    out.retain(|prev| !dominates(&md, &prev.md));
                    out.push(ScoredMd {
                        md,
                        support,
                        confidence,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| b.support.total_cmp(&a.support));
    exec.finish(out)
}

/// `a` dominates `b` when `a`'s LHS attributes ⊆ `b`'s with thresholds ≥
/// (looser): every pair `b` matches, `a` matches too, so `b` is redundant.
fn dominates(a: &Md, b: &Md) -> bool {
    a.lhs().iter().all(|(attr_a, _, t_a)| {
        b.lhs()
            .iter()
            .any(|(attr_b, _, t_b)| attr_a == attr_b && t_a >= t_b)
    }) && a.lhs().len() <= b.lhs().len()
        && a.rhs() == b.rhs()
}

/// Greedy concise matching-key cover (Song–Chen \[90\]): pick the fewest
/// MDs so that the fraction of true duplicate pairs (given by `same`)
/// matched by at least one MD reaches `target_recall`.
pub fn concise_matching_keys(
    r: &Relation,
    candidates: &[ScoredMd],
    same: &dyn Fn(usize, usize) -> bool,
    target_recall: f64,
) -> Vec<ScoredMd> {
    let dup_pairs: Vec<(usize, usize)> = r.row_pairs().filter(|&(i, j)| same(i, j)).collect();
    if dup_pairs.is_empty() {
        return Vec::new();
    }
    let target = (target_recall * dup_pairs.len() as f64).ceil() as usize;
    let mut covered = vec![false; dup_pairs.len()];
    let mut n_covered = 0usize;
    let mut picked = Vec::new();
    let mut remaining: Vec<&ScoredMd> = candidates.iter().collect();
    while n_covered < target && !remaining.is_empty() {
        // Greedy: the MD covering the most uncovered duplicate pairs.
        let (best_idx, best_gain) = remaining
            .iter()
            .enumerate()
            .map(|(idx, smd)| {
                let gain = dup_pairs
                    .iter()
                    .enumerate()
                    .filter(|(k, &(i, j))| !covered[*k] && smd.md.lhs_similar(r, i, j))
                    .count();
                (idx, gain)
            })
            .max_by_key(|&(_, gain)| gain)
            .unwrap_or((0, 0));
        if best_gain == 0 {
            break;
        }
        let chosen = remaining.remove(best_idx);
        for (k, &(i, j)) in dup_pairs.iter().enumerate() {
            if !covered[k] && chosen.md.lhs_similar(r, i, j) {
                covered[k] = true;
                n_covered += 1;
            }
        }
        picked.push(chosen.clone());
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r6;
    use deptree_synth::{entities, EntitiesConfig};

    #[test]
    fn discovers_md1_shape_on_r6() {
        // §3.7.1's md1: street≈, region≈ → zip⇌. On r6, even single-attr
        // street similarity suffices; the discovered set must contain a
        // street-based MD with full confidence.
        let r = hotels_r6();
        let s = r.schema();
        let rhs = AttrSet::single(s.id("zip"));
        let found = discover(&r, rhs, &MdConfig::default());
        assert!(!found.is_empty());
        for smd in &found {
            assert!(smd.confidence >= 0.95);
            assert!(smd.md.holds(&r) || smd.confidence < 1.0);
        }
        assert!(found
            .iter()
            .any(|smd| smd.md.lhs().iter().any(|(a, _, _)| *a == s.id("street"))));
    }

    #[test]
    fn domination_keeps_loosest_rules() {
        let r = hotels_r6();
        let s = r.schema();
        let found = discover(&r, AttrSet::single(s.id("zip")), &MdConfig::default());
        for a in &found {
            for b in &found {
                if !std::ptr::eq(a, b) {
                    assert!(!dominates(&a.md, &b.md), "{} dominates {}", a.md, b.md);
                }
            }
        }
    }

    #[test]
    fn concise_keys_reach_recall_on_synthetic_entities() {
        let cfg = EntitiesConfig {
            n_entities: 40,
            max_duplicates: 3,
            variety: 0.6,
            error_rate: 0.0,
            seed: 21,
        };
        let data = entities::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let s = r.schema();
        let rhs = AttrSet::single(s.id("zip"));
        let candidates = discover(
            r,
            rhs,
            &MdConfig {
                min_support: 0.001,
                min_confidence: 0.9,
                thresholds_per_attr: 3,
                max_lhs: 1,
            },
        );
        assert!(!candidates.is_empty());
        let cluster = data.cluster.clone();
        let same = move |i: usize, j: usize| cluster[i] == cluster[j];
        let keys = concise_matching_keys(r, &candidates, &same, 0.8);
        assert!(!keys.is_empty());
        // Measure achieved recall.
        let dup: Vec<(usize, usize)> = r
            .row_pairs()
            .filter(|&(i, j)| data.cluster[i] == data.cluster[j])
            .collect();
        let matched = dup
            .iter()
            .filter(|&&(i, j)| keys.iter().any(|k| k.md.lhs_similar(r, i, j)))
            .count();
        assert!(
            matched as f64 / dup.len() as f64 >= 0.8,
            "recall {} with {} keys",
            matched as f64 / dup.len() as f64,
            keys.len()
        );
        // Conciseness: fewer keys than candidates.
        assert!(keys.len() <= candidates.len());
    }
}
