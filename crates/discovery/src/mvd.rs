//! MVD discovery (Savnik–Flach): level-wise search of the hypothesis
//! space with augmentation-based pruning (§2.6.3).

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dependency, Mvd};
use deptree_relation::{AttrSet, Relation};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct MvdConfig {
    /// Maximum size of the determinant set `X`.
    pub max_x: usize,
    /// Maximum size of the dependent set `Y` (its complement is
    /// unbounded).
    pub max_y: usize,
}

impl Default for MvdConfig {
    fn default() -> Self {
        MvdConfig { max_x: 2, max_y: 2 }
    }
}

/// Discover non-trivial MVDs `X ↠ Y` holding in `r`, top-down from the
/// most general determinants (small `X`), pruning by the augmentation
/// axiom: once `X ↠ Y` holds, every `X' ⊇ X` also satisfies `X' ↠ Y \ X'`,
/// so only the minimal `X` per `Y` is reported.
///
/// `Y` candidates are deduplicated against their complement (`X ↠ Y` and
/// `X ↠ Z` are the same constraint): only the variant whose smallest
/// member is smaller than the complement's is enumerated.
pub fn discover(r: &Relation, cfg: &MvdConfig) -> Vec<Mvd> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per `(X, Y)` candidate, row ticks
/// for the validation scan. MVDs are emitted only after `holds`, so
/// partial results are sound.
pub fn discover_bounded(r: &Relation, cfg: &MvdConfig, exec: &Exec) -> Outcome<Vec<Mvd>> {
    let all = r.all_attrs();
    let n = r.n_attrs();
    let mut found: Vec<Mvd> = Vec::new();
    // Enumerate X by increasing size, starting from the empty determinant
    // (∅ ↠ Y: the relation is a cross product of π_Y and π_Z).
    let x_sets = std::iter::once(AttrSet::empty()).chain(subsets_up_to(all, cfg.max_x.min(n)));
    'search: for x in x_sets {
        let rest = all.difference(x);
        if rest.len() < 2 {
            continue; // Y or Z would be empty → trivial.
        }
        for y in subsets_up_to(rest, cfg.max_y.min(rest.len() - 1)) {
            if y.is_empty() {
                continue;
            }
            let z = rest.difference(y);
            if z.is_empty() {
                continue; // trivial: Y = R − X.
            }
            // Complement symmetry: keep the lexicographically smaller side
            // when both fit the size bound.
            if z.len() <= cfg.max_y && z < y {
                continue;
            }
            // Augmentation pruning: a found MVD with X' ⊆ X and the same Y
            // implies this one.
            if found.iter().any(|m| m.x().is_subset(x) && m.y() == y) {
                continue;
            }
            if !exec.tick_node() || !exec.tick_rows(r.n_rows() as u64) {
                break 'search;
            }
            let mvd = Mvd::new(r.schema(), x, y);
            if mvd.holds(r) {
                found.push(mvd);
            }
        }
    }
    exec.finish(found)
}

/// All subsets of `universe` with `1 ≤ |S| ≤ k`, ordered by size then bits.
pub(crate) fn subsets_up_to(universe: AttrSet, k: usize) -> Vec<AttrSet> {
    let attrs = universe.to_vec();
    let mut out: Vec<AttrSet> = Vec::new();
    let total = 1usize << attrs.len();
    for mask in 1..total {
        if (mask as u32).count_ones() as usize <= k {
            let set: AttrSet = attrs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &a)| a)
                .collect();
            out.push(set);
        }
    }
    out.sort_by_key(|s| (s.len(), *s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r5;
    use deptree_relation::{RelationBuilder, ValueType};

    #[test]
    fn discovers_mvd1_on_r5() {
        // §2.6.1: address, rate ↠ region holds in r5.
        let r = hotels_r5();
        let s = r.schema();
        let found = discover(&r, &MvdConfig::default());
        let target_x = AttrSet::from_ids([s.id("address"), s.id("rate")]);
        let region = AttrSet::single(s.id("region"));
        assert!(
            found
                .iter()
                .any(|m| m.x().is_subset(target_x) && (m.y() == region || m.z(&r) == region)),
            "{found:?}"
        );
    }

    #[test]
    fn all_discovered_hold() {
        let r = hotels_r5();
        for m in discover(&r, &MvdConfig::default()) {
            assert!(m.holds(&r), "{m}");
        }
    }

    #[test]
    fn classic_course_example() {
        let r = RelationBuilder::new()
            .attr("course", ValueType::Categorical)
            .attr("teacher", ValueType::Categorical)
            .attr("book", ValueType::Categorical)
            .row(vec!["db".into(), "ann".into(), "codd".into()])
            .row(vec!["db".into(), "ann".into(), "date".into()])
            .row(vec!["db".into(), "bob".into(), "codd".into()])
            .row(vec!["db".into(), "bob".into(), "date".into()])
            .row(vec!["os".into(), "eve".into(), "tan".into()])
            .build()
            .unwrap();
        let s = r.schema();
        let found = discover(&r, &MvdConfig::default());
        let course = AttrSet::single(s.id("course"));
        let teacher = AttrSet::single(s.id("teacher"));
        assert!(found
            .iter()
            .any(|m| m.x() == course && (m.y() == teacher || m.z(&r) == teacher)));
    }

    #[test]
    fn x_minimality_via_augmentation_pruning() {
        let r = hotels_r5();
        let found = discover(&r, &MvdConfig { max_x: 3, max_y: 1 });
        for m in &found {
            for a in m.x().iter() {
                let smaller = Mvd::new(r.schema(), m.x().remove(a), m.y());
                // If the smaller determinant also works with the same Y,
                // the bigger one should have been pruned.
                if smaller.holds(&r) && smaller.y() == m.y() {
                    panic!("{m} not X-minimal");
                }
            }
        }
    }

    #[test]
    fn subset_enumeration() {
        let u = AttrSet::full(4);
        let s1 = subsets_up_to(u, 1);
        assert_eq!(s1.len(), 4);
        let s2 = subsets_up_to(u, 2);
        assert_eq!(s2.len(), 4 + 6);
        assert!(s2.windows(2).all(|w| w[0].len() <= w[1].len()));
    }
}
