//! NUD discovery: the minimal weight `k` for each candidate `X →ₖ Y` is
//! just the maximum fan-out, making NUDs the cheapest notation to fit —
//! the derivation cost the survey's query-optimization application (§2.4.3)
//! relies on.

use deptree_core::engine::{pool, Exec, Outcome};
use deptree_core::Nud;
use deptree_relation::{AttrSet, Relation};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct NudConfig {
    /// Maximum LHS size.
    pub max_lhs: usize,
    /// Only report NUDs whose minimal `k` is at most this (large `k`
    /// carries no cardinality information).
    pub max_k: usize,
}

impl Default for NudConfig {
    fn default() -> Self {
        NudConfig {
            max_lhs: 2,
            max_k: 5,
        }
    }
}

/// Discover NUDs with their *minimal* weight: for each LHS set and RHS
/// attribute, `k = max_fanout`. LHS-minimality: a superset LHS can only
/// have smaller-or-equal fan-out, so supersets are reported only when they
/// strictly lower `k`.
pub fn discover(r: &Relation, cfg: &NudConfig) -> Vec<Nud> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: one node tick per candidate, one row tick per
/// row scanned. NUDs are emitted with their verified minimal weight, so
/// partial results are sound.
///
/// The fan-out scans — pure in the candidate — run concurrently on the
/// engine pool over the budget-reserved candidate prefix; the dominance
/// filter then replays serially in enumeration order, so the result is
/// identical at every thread count.
pub fn discover_bounded(r: &Relation, cfg: &NudConfig, exec: &Exec) -> Outcome<Vec<Nud>> {
    let threads = exec.threads();
    let row_cost = r.n_rows() as u64;
    let candidates: Vec<(AttrSet, AttrSet)> = crate::mvd_subsets(r.all_attrs(), cfg.max_lhs)
        .into_iter()
        .flat_map(|lhs| {
            r.schema()
                .ids()
                .filter(move |&rhs| !lhs.contains(rhs))
                .map(move |rhs| (lhs, AttrSet::single(rhs)))
        })
        .collect();
    let want = candidates.len() as u64;
    let prefix = exec.try_reserve_batch(want, row_cost) as usize;
    let batch = &candidates[..prefix];
    let fanouts = pool::map(threads, batch, |_, &(lhs, rhs)| {
        if exec.interrupted() {
            // Deadline/cancellation only; deterministic budgets never cut
            // the granted batch. No fake weight is ever merged.
            return None;
        }
        Some(Nud::new(r.schema(), lhs, rhs, 1).max_fanout(r).max(1))
    });
    let mut out: Vec<Nud> = Vec::new();
    for (&(lhs, rhs), k) in batch.iter().zip(fanouts) {
        let Some(k) = k else { continue };
        if k > cfg.max_k {
            continue;
        }
        // Keep only if no reported subset-LHS NUD has k' ≤ k.
        let dominated = out
            .iter()
            .any(|n| n.rhs() == rhs && n.lhs().is_subset(lhs) && n.k() <= k);
        if !dominated {
            out.push(Nud::new(r.schema(), lhs, rhs, k));
        }
    }
    exec.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r5;

    #[test]
    fn finds_nud1_with_minimal_k() {
        // §2.4.1: address →₂ region.
        let r = hotels_r5();
        let s = r.schema();
        let found = discover(&r, &NudConfig::default());
        let target = found.iter().find(|n| {
            n.lhs() == AttrSet::single(s.id("address"))
                && n.rhs() == AttrSet::single(s.id("region"))
        });
        assert_eq!(target.map(Nud::k), Some(2));
    }

    #[test]
    fn all_hold_and_are_tight() {
        let r = hotels_r5();
        for nud in discover(&r, &NudConfig::default()) {
            assert!(nud.holds(&r), "{nud}");
            if nud.k() > 1 {
                let tighter = Nud::new(r.schema(), nud.lhs(), nud.rhs(), nud.k() - 1);
                assert!(!tighter.holds(&r), "{nud} k not minimal");
            }
        }
    }

    #[test]
    fn max_k_filter() {
        let r = hotels_r5();
        let found = discover(
            &r,
            &NudConfig {
                max_lhs: 1,
                max_k: 1,
            },
        );
        assert!(found.iter().all(|n| n.k() == 1));
    }

    #[test]
    fn superset_lhs_only_when_strictly_better() {
        let r = hotels_r5();
        let found = discover(
            &r,
            &NudConfig {
                max_lhs: 2,
                max_k: 10,
            },
        );
        for n in found.iter().filter(|n| n.lhs().len() == 2) {
            for a in n.lhs().iter() {
                let sub = n.lhs().remove(a);
                let dominated = found
                    .iter()
                    .any(|m| m.lhs() == sub && m.rhs() == n.rhs() && m.k() <= n.k());
                assert!(!dominated, "{n} dominated");
            }
        }
    }
}
