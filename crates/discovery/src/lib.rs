//! Discovery algorithms for the dependency family (survey aspect (c)).
//!
//! One module per algorithm family, mirroring Table 2's discovery column:
//!
//! | Module | Algorithm(s) | Paper refs |
//! |---|---|---|
//! | [`tane`] | TANE: level-wise lattice + stripped partitions; exact FDs and AFDs | \[53, 54\] |
//! | [`fastfd`] | FastFD: difference sets + DFS minimal covers | \[112\] |
//! | [`cords`] | CORDS: sampling, strength, chi-square correlation | \[55\] |
//! | [`pfd`] | per-value counting, single-table and multi-source merge | \[104\] |
//! | [`cfd`] | CFDMiner (constant CFDs), CTANE-lite (general CFDs), greedy near-optimal tableau | \[35, 36, 49\] |
//! | [`mvd`] | level-wise MVD search with augmentation pruning | \[82\] |
//! | [`mfd`] | per-group diameter verification, exact O(n²) + pivot approximation | \[64\] |
//! | [`dd`] | distance-distribution thresholds + interval-lattice DD search | \[86, 88, 89\] |
//! | [`md`] | similarity predicate space, support/confidence MDs, relative candidate keys | \[85, 87, 90\] |
//! | [`od`] | FASTOD-lite: sorted-partition OD validation over direction combinations | \[67, 99\] |
//! | [`dc`] | FASTDC: predicate space, evidence sets, minimal covers; A-FASTDC | \[19, 78\] |
//! | [`sd`] | SD confidence + the exact quadratic CSD tableau DP (the Fig. 3 polynomial case) | \[48\] |
//! | [`ned`] | RHS-given beam search for neighborhood predicates | \[4\] |
//! | [`ffd`] | small-to-large FFD mining with pairwise μ_EQ checks | \[109\] |
//! | [`nud`] | minimal-weight NUD fitting | \[22, 50\] |
//! | [`ecfd`] | built-in-predicate condition mining | \[114\] |
//! | [`conditional`] | CDD and CMD discovery over frequent conditions | \[66, 110\] |
//! | [`cd`] | pay-as-you-go incremental CD discovery | \[92\] |
//! | [`pacman`] | PAC template instantiation + monitoring | \[63\] |
//! | [`schemes`] | FHD hierarchies, AMVD approximate schemes, OFD validation | \[27, 52, 59, 75\] |
//!
//! Every algorithm returns dependencies that *hold* (soundness is tested
//! per module); minimality is enforced where the original algorithm
//! guarantees it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cd;
pub mod cfd;
pub mod conditional;
pub mod cords;
mod cover;
pub mod dc;
pub mod dd;
pub mod ecfd;
pub mod fastfd;
pub mod ffd;
pub mod md;
pub mod mfd;
pub mod mvd;
pub mod ned;
pub mod nud;
pub mod od;
pub mod pacman;
pub mod pfd;
pub mod schemes;
pub mod sd;
pub mod tane;

pub(crate) use mvd::subsets_up_to as mvd_subsets;
