//! Differential-dependency discovery (Song–Chen, §3.3.3): determine
//! distance thresholds from the data's distance distribution, then search
//! the interval lattice for minimal DDs with subsumption pruning.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Dd, DiffAtom};
use deptree_metrics::{DistRange, Metric};
use deptree_relation::{AttrId, Relation};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct DdConfig {
    /// How many candidate thresholds to derive per attribute from the
    /// pairwise-distance distribution (the "parameter-free determination"
    /// of \[88, 89\] uses distribution quantiles; we take `k` evenly
    /// spaced quantiles of the observed distances).
    pub thresholds_per_attr: usize,
    /// Minimum number of LHS-compatible pairs for a DD to be interesting.
    pub min_support: usize,
    /// Maximum LHS atoms.
    pub max_lhs: usize,
}

impl Default for DdConfig {
    fn default() -> Self {
        DdConfig {
            thresholds_per_attr: 4,
            min_support: 2,
            max_lhs: 2,
        }
    }
}

/// Row cap for threshold derivation: relations larger than this use a
/// deterministic strided sample of rows, bounding the distance
/// distribution pass at `O(SAMPLE²)` instead of `O(n²)`. The sample is a
/// pure function of `n_rows`, so every discovery path (naive or indexed)
/// derives identical thresholds.
const THRESHOLD_SAMPLE_ROWS: usize = 512;

/// Candidate thresholds for `attr`: distinct quantiles of the observed
/// pairwise distances (the data-driven threshold determination step).
/// On relations above [`THRESHOLD_SAMPLE_ROWS`] rows the distribution is
/// taken over a deterministic strided row sample.
pub fn candidate_thresholds(r: &Relation, attr: AttrId, metric: &Metric, k: usize) -> Vec<f64> {
    let n = r.n_rows();
    let sample: Vec<usize> = if n <= THRESHOLD_SAMPLE_ROWS {
        (0..n).collect()
    } else {
        let stride = n / THRESHOLD_SAMPLE_ROWS;
        (0..THRESHOLD_SAMPLE_ROWS).map(|i| i * stride).collect()
    };
    let mut dists: Vec<f64> = Vec::new();
    for (si, &i) in sample.iter().enumerate() {
        for &j in &sample[si + 1..] {
            let d = metric.dist(r.value(i, attr), r.value(j, attr));
            if d.is_finite() {
                dists.push(d);
            }
        }
    }
    if dists.is_empty() {
        return vec![0.0];
    }
    dists.sort_by(f64::total_cmp);
    let mut out: Vec<f64> = (1..=k)
        .map(|q| dists[(q * (dists.len() - 1)) / k])
        .collect();
    out.insert(0, 0.0);
    out.dedup();
    out
}

/// Discover minimal DDs of the form
/// `A₁(≤τ₁), … → B(≤σ)` — "similar LHS implies similar RHS" — where each
/// `τ` is a candidate threshold and `σ` is the *tightest* RHS bound valid
/// for that LHS (computed, not enumerated). A DD is pruned when a
/// discovered DD subsumes it: looser LHS (accepts more pairs) and tighter
/// or equal RHS.
pub fn discover(r: &Relation, cfg: &DdConfig) -> Vec<Dd> {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Budgeted [`discover`]: the row budget is charged up front per LHS
/// combo (one tick per candidate pair the index will enumerate) and one
/// node tick is charged per (LHS-combo, RHS) emission. The RHS bound of
/// every emitted DD was computed from a *complete* candidate scan (the
/// whole combo is dropped if its scan cannot be afforded), so partial
/// results are sound.
///
/// Scoring runs one scan per LHS combo over the candidates of the most
/// selective [`deptree_core::pairs::best_index`] for the combo's atoms,
/// accumulating support plus the max RHS distance for *every* non-LHS
/// attribute simultaneously (support depends only on the LHS, so it is
/// shared). Output is identical to [`discover_naive`].
pub fn discover_bounded(r: &Relation, cfg: &DdConfig, exec: &Exec) -> Outcome<Vec<Dd>> {
    let schema = r.schema();
    let attrs: Vec<AttrId> = schema.ids().collect();
    let metrics: Vec<Metric> = attrs
        .iter()
        .map(|&a| Metric::default_for(schema.ty(a)))
        .collect();
    let thresholds: Vec<Vec<f64>> = attrs
        .iter()
        .map(|&a| candidate_thresholds(r, a, &metrics[a.0], cfg.thresholds_per_attr))
        .collect();

    let mut out: Vec<Dd> = Vec::new();
    // LHS: single attributes and pairs (bounded by max_lhs).
    'search: for lhs_set in crate::mvd_subsets(r.all_attrs(), cfg.max_lhs) {
        let lhs_attrs = lhs_set.to_vec();
        // Threshold combinations for the LHS attributes.
        let mut combos: Vec<Vec<f64>> = vec![vec![]];
        for &a in &lhs_attrs {
            let mut next = Vec::new();
            for c in &combos {
                for &t in &thresholds[a.0] {
                    let mut c2 = c.clone();
                    c2.push(t);
                    next.push(c2);
                }
            }
            combos = next;
        }
        let rhs_attrs: Vec<AttrId> = attrs
            .iter()
            .copied()
            .filter(|&a| !lhs_set.contains(a))
            .collect();
        for combo in combos {
            let lhs: Vec<DiffAtom> = lhs_attrs
                .iter()
                .zip(&combo)
                .map(|(&a, &t)| DiffAtom::at_most(a, metrics[a.0].clone(), t))
                .collect();
            let lhs_atoms: Vec<deptree_core::pairs::MetricAtom> = lhs_attrs
                .iter()
                .zip(&combo)
                .map(|(&a, &t)| (a, metrics[a.0].clone(), t))
                .collect();
            let idx = deptree_core::pairs::best_index(r, &lhs_atoms);
            if !exec.tick_rows(idx.n_candidates()) {
                // A bound computed from a partial scan would be unsound;
                // drop the whole combo and stop.
                break 'search;
            }
            // Tightest valid RHS bound per attribute: max RHS distance
            // over LHS-compatible pairs, accumulated in one pass.
            let mut support = 0usize;
            let mut max_rhs: Vec<f64> = vec![0.0; rhs_attrs.len()];
            idx.for_each_candidate(|i, j| {
                if lhs.iter().all(|atom| atom.compatible(r, i, j)) {
                    support += 1;
                    for (k, &b) in rhs_attrs.iter().enumerate() {
                        let d = metrics[b.0].dist(r.value(i, b), r.value(j, b));
                        max_rhs[k] = max_rhs[k].max(d);
                    }
                }
                true
            });
            for (k, &rhs_attr) in rhs_attrs.iter().enumerate() {
                if !exec.tick_node() {
                    break 'search;
                }
                if support < cfg.min_support || !max_rhs[k].is_finite() {
                    continue;
                }
                let cand = Dd::new(
                    schema,
                    lhs.clone(),
                    vec![DiffAtom::new(
                        rhs_attr,
                        metrics[rhs_attr.0].clone(),
                        DistRange::at_most(max_rhs[k]),
                    )],
                );
                if !out.iter().any(|prev| subsumes(prev, &cand)) {
                    out.retain(|prev| !subsumes(&cand, prev));
                    out.push(cand);
                }
            }
        }
    }
    exec.finish(out)
}

/// Reference full-scan discovery: same search order, thresholds, and
/// subsumption pruning as [`discover`], but every (LHS-combo, RHS)
/// candidate is scored with an `O(n²)` pair scan. Kept as the
/// differential-test and benchmark baseline for the indexed path.
pub fn discover_naive(r: &Relation, cfg: &DdConfig) -> Vec<Dd> {
    let schema = r.schema();
    let attrs: Vec<AttrId> = schema.ids().collect();
    let metrics: Vec<Metric> = attrs
        .iter()
        .map(|&a| Metric::default_for(schema.ty(a)))
        .collect();
    let thresholds: Vec<Vec<f64>> = attrs
        .iter()
        .map(|&a| candidate_thresholds(r, a, &metrics[a.0], cfg.thresholds_per_attr))
        .collect();

    let mut out: Vec<Dd> = Vec::new();
    for lhs_set in crate::mvd_subsets(r.all_attrs(), cfg.max_lhs) {
        let lhs_attrs = lhs_set.to_vec();
        let mut combos: Vec<Vec<f64>> = vec![vec![]];
        for &a in &lhs_attrs {
            let mut next = Vec::new();
            for c in &combos {
                for &t in &thresholds[a.0] {
                    let mut c2 = c.clone();
                    c2.push(t);
                    next.push(c2);
                }
            }
            combos = next;
        }
        for combo in combos {
            let lhs: Vec<DiffAtom> = lhs_attrs
                .iter()
                .zip(&combo)
                .map(|(&a, &t)| DiffAtom::at_most(a, metrics[a.0].clone(), t))
                .collect();
            for &rhs_attr in &attrs {
                if lhs_set.contains(rhs_attr) {
                    continue;
                }
                let mut support = 0usize;
                let mut max_rhs: f64 = 0.0;
                for (i, j) in r.row_pairs() {
                    if lhs.iter().all(|atom| atom.compatible(r, i, j)) {
                        support += 1;
                        let d =
                            metrics[rhs_attr.0].dist(r.value(i, rhs_attr), r.value(j, rhs_attr));
                        max_rhs = max_rhs.max(d);
                    }
                }
                if support < cfg.min_support || !max_rhs.is_finite() {
                    continue;
                }
                let cand = Dd::new(
                    schema,
                    lhs.clone(),
                    vec![DiffAtom::new(
                        rhs_attr,
                        metrics[rhs_attr.0].clone(),
                        DistRange::at_most(max_rhs),
                    )],
                );
                if !out.iter().any(|prev| subsumes(prev, &cand)) {
                    out.retain(|prev| !subsumes(&cand, prev));
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// Does `a` subsume `b`: same attributes, every `b`-LHS atom implies the
/// corresponding `a`-LHS atom is looser (accepts at least those pairs),
/// and `a`'s RHS is at least as tight?
fn subsumes(a: &Dd, b: &Dd) -> bool {
    if a.lhs().len() != b.lhs().len() || a.rhs().len() != b.rhs().len() {
        return false;
    }
    let lhs_looser = b.lhs().iter().all(|atom_b| {
        a.lhs()
            .iter()
            .any(|atom_a| atom_a.attr == atom_b.attr && atom_a.subsumes(atom_b))
    });
    let rhs_tighter = a.rhs().iter().all(|atom_a| {
        b.rhs()
            .iter()
            .any(|atom_b| atom_a.attr == atom_b.attr && atom_b.subsumes(atom_a))
    });
    lhs_looser && rhs_tighter
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r6;

    #[test]
    fn thresholds_from_distribution() {
        let r = hotels_r6();
        let price = r.schema().id("price");
        let ts = candidate_thresholds(&r, price, &Metric::AbsDiff, 4);
        assert!(ts.len() >= 2);
        assert_eq!(ts[0], 0.0);
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        // Quantiles must be observed distances.
        let max_price_dist = 499.0 - 299.0;
        assert!(*ts.last().expect("non-empty") <= max_price_dist);
    }

    #[test]
    fn all_discovered_dds_hold() {
        let r = hotels_r6();
        let found = discover(&r, &DdConfig::default());
        assert!(!found.is_empty());
        for dd in &found {
            assert!(dd.holds(&r), "{dd}");
        }
    }

    #[test]
    fn rhs_bounds_are_tight() {
        // Shrinking any RHS bound must break the DD (tightness of the
        // computed σ).
        let r = hotels_r6();
        let found = discover(
            &r,
            &DdConfig {
                max_lhs: 1,
                ..Default::default()
            },
        );
        for dd in found.iter().take(10) {
            let atom = &dd.rhs()[0];
            let sigma = atom.range.max();
            if sigma == 0.0 {
                continue;
            }
            let tighter = Dd::new(
                r.schema(),
                dd.lhs().to_vec(),
                vec![DiffAtom::at_most(
                    atom.attr,
                    atom.metric.clone(),
                    (sigma - 1.0).max(0.0),
                )],
            );
            assert!(!tighter.holds(&r), "σ not tight for {dd}");
        }
    }

    #[test]
    fn indexed_discovery_matches_naive() {
        let r = hotels_r6();
        let cfgs = [
            DdConfig::default(),
            DdConfig {
                thresholds_per_attr: 3,
                min_support: 1,
                max_lhs: 1,
            },
        ];
        for cfg in &cfgs {
            let fast = discover(&r, cfg);
            let slow = discover_naive(&r, cfg);
            let render = |v: &[Dd]| v.iter().map(|d| d.to_string()).collect::<Vec<_>>();
            assert_eq!(render(&fast), render(&slow));
        }
    }

    #[test]
    fn subsumption_removes_dominated_rules() {
        let r = hotels_r6();
        let found = discover(&r, &DdConfig::default());
        for a in &found {
            for b in &found {
                if !std::ptr::eq(a, b) {
                    assert!(!subsumes(a, b), "{a} subsumes {b} but both reported");
                }
            }
        }
    }

    #[test]
    fn name_similarity_implies_price_similarity() {
        // On r6, tuples with identical names (distance ≤ 0 on name) have
        // price distance ≤ 1 (NC: 299/300/300). Expect a DD reflecting a
        // small RHS bound for the tight name LHS.
        let r = hotels_r6();
        let s = r.schema();
        let found = discover(
            &r,
            &DdConfig {
                max_lhs: 1,
                ..Default::default()
            },
        );
        let tight = found.iter().find(|dd| {
            dd.lhs().len() == 1
                && dd.lhs()[0].attr == s.id("name")
                && dd.lhs()[0].range.max() == 0.0
                && dd.rhs()[0].attr == s.id("price")
        });
        if let Some(dd) = tight {
            assert!(dd.rhs()[0].range.max() <= 1.0, "{dd}");
        }
        // At minimum, some name → price DD must exist.
        assert!(found
            .iter()
            .any(|dd| dd.lhs()[0].attr == s.id("name") && dd.rhs()[0].attr == s.id("price")));
    }
}
