//! TANE (Huhtala et al.): level-wise FD discovery with stripped
//! partitions. The canonical lattice algorithm most later discovery
//! methods extend (CTANE, PFD mining, FFD mining, …).
//!
//! This implementation is the repo's flagship *parallel* lattice walk:
//! each level's candidate nodes are evaluated concurrently on the
//! work-stealing pool (`deptree_core::engine::pool`) against a shared
//! [`PartitionCache`], with node/row budget *reserved* per batch so the
//! emitted dependency set — including the anytime prefix under an
//! exhausted budget — is bit-identical at every thread count (see
//! `Exec::try_reserve_nodes`). Candidate verdicts are merged in canonical
//! lattice order, and the final FD list is sorted, so output order never
//! depends on scheduling.

use deptree_core::engine::{obs, pool, Exec, Outcome};
use deptree_core::Fd;
use deptree_relation::{AttrSet, PartitionCache, Relation};
use std::collections::{HashMap, HashSet};

/// Configuration for [`discover`].
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum size of the determinant set (lattice depth). TANE's lattice
    /// is exponential in this; the Fig. 3 scaling bench sweeps it.
    pub max_lhs: usize,
    /// Maximum `g3` error: `0.0` discovers exact FDs, a positive value
    /// discovers AFDs (`g3 ≤ ε`), exactly TANE's approximate mode.
    pub max_error: f64,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            max_lhs: 5,
            max_error: 0.0,
        }
    }
}

/// Statistics from a run, for the scaling experiments.
#[derive(Debug, Clone, Default)]
pub struct TaneStats {
    /// Lattice nodes visited.
    pub nodes_visited: usize,
    /// Partition products computed (lattice nodes materialized).
    pub partition_products: usize,
    /// FDs emitted.
    pub fds_found: usize,
    /// Partition-cache hits over the whole run.
    pub cache_hits: u64,
    /// Partition-cache misses over the whole run.
    pub cache_misses: u64,
}

/// The result of a TANE run.
#[derive(Debug)]
pub struct TaneResult {
    /// Minimal non-trivial dependencies `X → A` (single-attribute RHS),
    /// each with `g3 ≤ max_error`.
    pub fds: Vec<Fd>,
    /// Run statistics.
    pub stats: TaneStats,
}

/// Run TANE on `r` to completion (no resource limits). Thread count comes
/// from the `DEPTREE_THREADS` environment default.
pub fn discover(r: &Relation, cfg: &TaneConfig) -> TaneResult {
    discover_bounded(r, cfg, &Exec::unbounded()).result
}

/// Run TANE on `r` under `exec`'s budget, with `exec.threads()` workers
/// and a run-private partition cache (capacity = the budget's
/// partition-memory cap, when set).
///
/// Anytime contract: every FD in the result holds on `r` (with
/// `g3 ≤ max_error` in approximate mode) even when the run was stopped
/// early — FDs are only emitted after their partition check passes. What
/// an exhausted run forfeits is *completeness*: unvisited lattice nodes
/// may hide further (and, for FDs whose minimality pruning depended on
/// them, smaller) dependencies. Under node/row budgets the anytime prefix
/// is additionally *deterministic across thread counts*; deadline and
/// memory budgets cut off at a timing-dependent point by nature.
pub fn discover_bounded(r: &Relation, cfg: &TaneConfig, exec: &Exec) -> Outcome<TaneResult> {
    let cache = match exec.budget().max_partition_bytes {
        Some(cap) => PartitionCache::with_capacity_bytes(cap),
        None => PartitionCache::new(),
    };
    discover_with_cache(r, cfg, exec, &cache)
}

/// [`discover_bounded`] against a caller-provided [`PartitionCache`],
/// sharing interned partitions with other discovery runs over the same
/// relation (the CLI's `profile` pipelines do this). The cache must only
/// hold partitions of `r`.
pub fn discover_with_cache(
    r: &Relation,
    cfg: &TaneConfig,
    exec: &Exec,
    cache: &PartitionCache,
) -> Outcome<TaneResult> {
    let n_attrs = r.n_attrs();
    let all = r.all_attrs();
    let approx = cfg.max_error > 0.0;
    let threads = exec.threads();
    let mut stats = TaneStats::default();
    let mut fds = Vec::new();
    let cache_hits0 = cache.hits();
    let cache_misses0 = cache.misses();
    let cache_evictions0 = cache.evictions();
    let radix_products0 = cache.radix_products();
    let hash_products0 = cache.hash_products();

    // Materialize the base partitions (π_∅ is implicit in the cache).
    let mut base_span = exec.span("tane.base_partitions");
    base_span.attr("attrs", n_attrs as u64);
    for a in r.schema().ids() {
        let (p, delta) = cache.get_or_compute(r, AttrSet::single(a));
        exec.free_partition(delta.evicted_bytes);
        obs::engine_metrics()
            .cache_inserted_bytes
            .add(delta.inserted_bytes);
        if delta.inserted_bytes > 0 {
            exec.alloc_partition(delta.inserted_bytes);
        }
        exec.tick_rows(r.n_rows() as u64);
        drop(p);
    }
    drop(base_span);

    // C+ candidate RHS sets per node.
    let mut cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
    cplus.insert(AttrSet::empty(), all);

    // Level 1: singletons.
    let mut level: Vec<AttrSet> = r.schema().ids().map(AttrSet::single).collect();
    for &x in &level {
        cplus.insert(x, all);
    }
    // The previous level's node sets, releasable after the next one is
    // generated (singletons are kept for approximate checks).
    let mut prev_level: Vec<AttrSet> = Vec::new();

    let mut depth = 1usize;
    'search: while !level.is_empty() && depth <= cfg.max_lhs.saturating_add(1).min(n_attrs) {
        let mut level_span = exec.span("tane.level");
        level_span.attr("level", depth as u64);
        level_span.attr("candidates", level.len() as u64);
        // compute_dependencies: reserve the level's node budget up front,
        // evaluate the granted prefix in parallel, merge in lattice order.
        let granted = exec.try_reserve_nodes(level.len() as u64) as usize;
        level_span.attr("granted", granted as u64);
        let batch = &level[..granted];
        let verdicts: Vec<(AttrSet, AttrSet)> = pool::map(threads, batch, |_, &x| {
            if exec.interrupted() {
                // Deadline/cancellation fired mid-batch: stop evaluating.
                // (Deterministic budgets — nodes/rows/memory — never abort
                // the granted batch; it runs to completion so the output
                // is identical at every thread count.)
                return (AttrSet::empty(), AttrSet::empty());
            }
            // C+(X) = ∩_{A ∈ X} C+(X \ {A}) — reads only previous-level
            // entries, all inserted before this batch was dispatched.
            let mut cx = all;
            for a in x.iter() {
                match cplus.get(&x.remove(a)) {
                    Some(&c) => cx = cx.intersect(c),
                    None => cx = AttrSet::empty(),
                }
            }
            let mut valid = AttrSet::empty();
            for a in x.intersect(cx).iter() {
                let lhs = x.remove(a);
                let (px, _) = cache.get_or_compute(r, lhs);
                let holds = if approx {
                    let (pa, _) = cache.get_or_compute(r, AttrSet::single(a));
                    px.g3_error(&pa) <= cfg.max_error
                } else {
                    let (pxa, _) = cache.get_or_compute(r, x);
                    px.refines(&pxa)
                };
                if holds {
                    valid = valid.insert(a);
                }
            }
            (cx, valid)
        });
        for (&x, &(cx0, valid)) in batch.iter().zip(&verdicts) {
            stats.nodes_visited += 1;
            let mut cx = cx0;
            for a in x.intersect(cx0).iter() {
                if valid.contains(a) {
                    fds.push(Fd::new(r.schema(), x.remove(a), AttrSet::single(a)));
                    cx = cx.remove(a);
                    // Remove all B ∈ R \ X from C+(X): no FD with a larger
                    // RHS candidate through this node stays minimal.
                    if !approx {
                        cx = cx.difference(all.difference(x));
                    }
                }
            }
            cplus.insert(x, cx);
        }
        if granted < level.len() {
            break 'search;
        }

        // prune
        let mut survivors = Vec::with_capacity(level.len());
        for &x in &level {
            let cx = cplus.get(&x).copied().unwrap_or_default();
            if cx.is_empty() {
                continue;
            }
            // Key pruning: if X is a (super)key, emit X → A for remaining
            // candidates outside X and stop expanding.
            if !approx && cache.get_or_compute(r, x).0.error() == 0 {
                if x.len() <= cfg.max_lhs {
                    for a in cx.difference(x).iter() {
                        // TANE's minimality condition for key-derived FDs:
                        // A ∈ C+((X ∪ {A}) \ {B}) for every B ∈ X.
                        // Never-generated nodes have their C+ computed on
                        // demand via C+(X) = ∩_B C+(X \ {B}), per the TANE
                        // paper's deletion fallback.
                        let minimal = x
                            .iter()
                            .all(|b| cplus_of(x.insert(a).remove(b), &mut cplus, all).contains(a));
                        if minimal {
                            fds.push(Fd::new(r.schema(), x, AttrSet::single(a)));
                        }
                    }
                }
                continue;
            }
            survivors.push(x);
        }
        level = survivors;

        // generate_next_level: join nodes sharing a (|X|−1)-prefix. The
        // union list is assembled serially (cheap bitset algebra), the
        // partition products are computed in parallel through the shared
        // cache, and budget charges replay serially in canonical order so
        // row/memory exhaustion cuts at the same union at every thread
        // count.
        let mut unions: Vec<AttrSet> = Vec::new();
        let mut seen: HashSet<AttrSet> = HashSet::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let union = level[i].union(level[j]);
                if union.len() != depth + 1 || !seen.insert(union) {
                    continue;
                }
                // All |X|−1 subsets must survive in the current (pruned)
                // level for the node to be generable — children of pruned
                // nodes are implied or hopeless (standard TANE test).
                let all_parents = union.iter().all(|c| level.contains(&union.remove(c)));
                if all_parents {
                    unions.push(union);
                }
            }
        }
        let mut product_span = exec.span("tane.products");
        product_span.attr("level", depth as u64);
        product_span.attr("products", unions.len() as u64);
        let deltas = pool::map(threads, &unions, |_, &u| {
            if exec.interrupted() {
                // Deadline/cancellation mid-generation: stop computing
                // partition products; the serial replay below sees the
                // sticky exhaustion on its first tick and winds down.
                // (Deterministic budgets never abort here — see the
                // compute_dependencies batch above.)
                return deptree_relation::CacheDelta::default();
            }
            cache.get_or_compute(r, u).1
        });
        let mut next: Vec<AttrSet> = Vec::with_capacity(unions.len());
        let m = obs::engine_metrics();
        for (&union, delta) in unions.iter().zip(&deltas) {
            stats.partition_products += 1;
            exec.free_partition(delta.evicted_bytes);
            m.cache_evicted_bytes.add(delta.evicted_bytes);
            m.cache_inserted_bytes.add(delta.inserted_bytes);
            let live = exec.tick_rows(r.n_rows() as u64)
                && (delta.inserted_bytes == 0 || exec.alloc_partition(delta.inserted_bytes));
            cplus.entry(union).or_insert(all);
            next.push(union);
            if !live {
                // Memory/row budget hit while materializing the next
                // level: stop generating, process nothing further.
                next.clear();
                break 'search;
            }
        }
        drop(product_span);

        // Release partitions of the level before last — the next level no
        // longer needs them as parents (keep singletons for approximate
        // checks and cross-run sharing).
        for &s in prev_level.iter().filter(|s| s.len() > 1) {
            exec.free_partition(cache.remove(s));
        }
        prev_level = std::mem::take(&mut level);
        level = next;
        depth += 1;
    }

    fds.sort_by_key(|fd| (fd.lhs().len(), fd.lhs(), fd.rhs()));
    stats.fds_found = fds.len();
    stats.cache_hits = cache.hits().saturating_sub(cache_hits0);
    stats.cache_misses = cache.misses().saturating_sub(cache_misses0);
    // Publish the run's cache traffic to the global registry — the cache
    // itself lives in `relation`, below the engine, so callers surface its
    // counters.
    let m = obs::engine_metrics();
    m.cache_hits.add(stats.cache_hits);
    m.cache_misses.add(stats.cache_misses);
    m.cache_evictions
        .add(cache.evictions().saturating_sub(cache_evictions0));
    m.partition_product_radix
        .add(cache.radix_products().saturating_sub(radix_products0));
    m.partition_product_hash
        .add(cache.hash_products().saturating_sub(hash_products0));
    exec.finish(TaneResult { fds, stats })
}

/// Look up `C+(set)`, computing it on demand through the TANE recurrence
/// `C+(X) = ∩_{B∈X} C+(X \ {B})` (with `C+(∅)` = all attributes) when the
/// node was never generated; memoizes the result.
fn cplus_of(set: AttrSet, cplus: &mut HashMap<AttrSet, AttrSet>, all: AttrSet) -> AttrSet {
    if let Some(&c) = cplus.get(&set) {
        return c;
    }
    if set.is_empty() {
        return all;
    }
    let mut c = all;
    for b in set.iter() {
        c = c.intersect(cplus_of(set.remove(b), cplus, all));
    }
    cplus.insert(set, c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::{hotels_r5, hotels_r7};
    use deptree_relation::AttrId;
    use deptree_synth::{categorical, CategoricalConfig};

    #[test]
    fn discovers_planted_fds() {
        let cfg = CategoricalConfig {
            n_rows: 300,
            n_key_attrs: 2,
            n_dep_attrs: 2,
            domain: 40,
            error_rate: 0.0,
            seed: 1,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let result = discover(&data.relation, &TaneConfig::default());
        for &(lhs, rhs) in &data.planted_fds {
            let found = result.fds.iter().any(|fd| {
                fd.lhs().is_subset(AttrSet::single(lhs)) && fd.rhs() == AttrSet::single(rhs)
            });
            assert!(found, "planted {lhs} -> {rhs} missing: {:?}", result.fds);
        }
    }

    #[test]
    fn all_results_hold_and_are_minimal() {
        let r = hotels_r5();
        let result = discover(&r, &TaneConfig::default());
        for fd in &result.fds {
            assert!(fd.holds(&r), "{fd} does not hold");
            assert!(!fd.is_trivial(), "{fd} is trivial");
            // Minimality: no proper subset of the LHS also works.
            for a in fd.lhs().iter() {
                let smaller = Fd::new(r.schema(), fd.lhs().remove(a), fd.rhs());
                assert!(!smaller.holds(&r), "{fd} not minimal ({smaller} holds)");
            }
        }
    }

    #[test]
    fn r7_numeric_keys() {
        // In r7 every attribute is a key (all values distinct), so every
        // A → B with single attributes is found.
        let r = hotels_r7();
        let result = discover(&r, &TaneConfig::default());
        // 4 attributes, each determines the 3 others: 12 single-attr FDs.
        assert_eq!(result.fds.len(), 12);
        assert!(result.fds.iter().all(|fd| fd.lhs().len() == 1));
    }

    #[test]
    fn approximate_mode_tolerates_noise() {
        let cfg = CategoricalConfig {
            n_rows: 400,
            n_key_attrs: 1,
            n_dep_attrs: 1,
            domain: 30,
            error_rate: 0.02,
            seed: 2,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        // Exact discovery misses the planted FD…
        let exact = discover(&data.relation, &TaneConfig::default());
        let planted = |fds: &[Fd]| {
            fds.iter().any(|fd| {
                fd.lhs() == AttrSet::single(AttrId(0)) && fd.rhs() == AttrSet::single(AttrId(1))
            })
        };
        assert!(!planted(&exact.fds));
        // …approximate discovery recovers it.
        let approx = discover(
            &data.relation,
            &TaneConfig {
                max_error: 0.05,
                ..Default::default()
            },
        );
        assert!(planted(&approx.fds), "{:?}", approx.fds);
    }

    #[test]
    fn lattice_depth_bound_respected() {
        let r = hotels_r5();
        let shallow = discover(
            &r,
            &TaneConfig {
                max_lhs: 1,
                max_error: 0.0,
            },
        );
        assert!(shallow.fds.iter().all(|fd| fd.lhs().len() <= 1));
        assert!(shallow.stats.nodes_visited <= r.n_attrs() * 2);
    }

    #[test]
    fn bounded_run_is_sound_and_deterministic() {
        use deptree_core::engine::Budget;
        let cfg = CategoricalConfig {
            n_rows: 200,
            n_key_attrs: 3,
            n_dep_attrs: 3,
            domain: 8,
            error_rate: 0.0,
            seed: 7,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let full = discover(r, &TaneConfig::default());
        // A node budget far below the full lattice forces a partial run.
        let budget = Budget::new().with_max_nodes(4);
        let partial = discover_bounded(r, &TaneConfig::default(), &Exec::new(budget.clone()));
        assert!(!partial.complete);
        assert!(partial.result.fds.len() < full.fds.len());
        // Sound: every FD in the partial result holds.
        for fd in &partial.result.fds {
            assert!(fd.holds(r), "{fd} unsound under budget");
        }
        // Deterministic: a second identical run returns the same FDs.
        let again = discover_bounded(r, &TaneConfig::default(), &Exec::new(budget));
        let names = |fds: &[Fd]| fds.iter().map(|f| f.to_string()).collect::<Vec<_>>();
        assert_eq!(names(&partial.result.fds), names(&again.result.fds));
    }

    #[test]
    fn memory_budget_stops_lattice_growth() {
        use deptree_core::engine::{Budget, BudgetKind};
        let r = hotels_r5();
        let exec = Exec::new(Budget::new().with_max_partition_bytes(1));
        let out = discover_bounded(&r, &TaneConfig::default(), &exec);
        assert!(!out.complete);
        assert!(matches!(
            out.exhausted,
            Some(BudgetKind::Memory | BudgetKind::Rows)
        ));
        for fd in &out.result.fds {
            assert!(fd.holds(&r));
        }
    }

    #[test]
    fn unbounded_exec_reports_complete() {
        let r = hotels_r5();
        let out = discover_bounded(&r, &TaneConfig::default(), &Exec::unbounded());
        assert!(out.complete);
        assert_eq!(out.exhausted, None);
        assert!(out.stats.nodes_visited > 0);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let cfg = CategoricalConfig {
            n_rows: 250,
            n_key_attrs: 2,
            n_dep_attrs: 3,
            domain: 6,
            error_rate: 0.05,
            seed: 13,
        };
        let data = categorical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let r = &data.relation;
        let names = |res: &TaneResult| res.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>();
        let serial = discover_bounded(
            r,
            &TaneConfig::default(),
            &Exec::unbounded().with_threads(1),
        );
        for threads in [2, 4, 8] {
            let par = discover_bounded(
                r,
                &TaneConfig::default(),
                &Exec::unbounded().with_threads(threads),
            );
            assert_eq!(
                names(&serial.result),
                names(&par.result),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shared_cache_reuses_partitions_across_runs() {
        let r = hotels_r5();
        let cache = PartitionCache::new();
        let first = discover_with_cache(&r, &TaneConfig::default(), &Exec::unbounded(), &cache);
        let warm = discover_with_cache(&r, &TaneConfig::default(), &Exec::unbounded(), &cache);
        let names = |res: &TaneResult| res.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>();
        assert_eq!(names(&first.result), names(&warm.result));
        // The warm run found every partition it asked for in the cache...
        // except the intermediates the first run released level-by-level.
        assert!(warm.result.stats.cache_hits > 0);
        assert!(warm.result.stats.cache_misses <= first.result.stats.cache_misses);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(hotels_r5().schema().clone()).unwrap();
        let result = discover(&r, &TaneConfig::default());
        // Everything holds vacuously; TANE still terminates cleanly.
        assert!(result.fds.iter().all(|fd| fd.holds(&r)));
    }
}
