//! Sequential-dependency discovery (Golab et al., §4.4.3) and the CSD
//! tableau construction — the survey's highlighted *polynomial-time*
//! discovery problem (Fig. 3): an exact dynamic program quadratic in the
//! number of candidate intervals.

use deptree_core::engine::{Exec, Outcome};
use deptree_core::{Csd, CsdRow, Interval, Sd};
use deptree_relation::{AttrId, AttrSet, Relation};

/// Suggest a gap interval for `on → target` from the observed consecutive
/// gaps: the `[q_lo, q_hi]` quantile band. Returns `None` if fewer than
/// two applicable gaps exist.
pub fn suggest_gap(
    r: &Relation,
    on: AttrId,
    target: AttrId,
    q_lo: f64,
    q_hi: f64,
) -> Option<Interval> {
    let sd_probe = Sd::new(r.schema(), on, target, Interval::all());
    let mut gaps: Vec<f64> = sd_probe
        .consecutive_gaps(r)
        .into_iter()
        .map(|(_, _, g)| g)
        .collect();
    if gaps.len() < 2 {
        return None;
    }
    gaps.sort_by(f64::total_cmp);
    let idx = |q: f64| ((q * (gaps.len() - 1) as f64).round() as usize).min(gaps.len() - 1);
    Some(Interval::new(gaps[idx(q_lo)], gaps[idx(q_hi)]))
}

/// Discover an SD `on →g target` whose suggested gap band reaches the
/// required confidence; `None` when the data is too irregular.
pub fn discover_sd(r: &Relation, on: AttrId, target: AttrId, min_confidence: f64) -> Option<Sd> {
    let gap = suggest_gap(r, on, target, 0.05, 0.95)?;
    let sd = Sd::new(r.schema(), on, target, gap);
    (sd.confidence(r) >= min_confidence).then_some(sd)
}

/// One candidate position in the CSD tableau DP: the sequence sorted by
/// `X`, with per-position gap values.
#[derive(Debug, Clone)]
struct GapSeq {
    /// `x[i]` = ordering-attribute value at sorted position `i`.
    x: Vec<f64>,
    /// `gap[i]` = signed target difference between positions `i` and
    /// `i+1` (length `x.len() − 1`).
    gap: Vec<f64>,
}

fn gap_sequence(r: &Relation, on: AttrId, target: AttrId) -> GapSeq {
    let order = r.sorted_rows(AttrSet::single(on));
    let mut x = Vec::new();
    let mut ys = Vec::new();
    for &row in &order {
        if let (Some(xv), Some(yv)) = (r.value(row, on).as_f64(), r.value(row, target).as_f64()) {
            // Equal-X duplicates collapse to their first occurrence,
            // matching Sd::consecutive_gaps' tie skipping.
            if x.last() != Some(&xv) {
                x.push(xv);
                ys.push(yv);
            }
        }
    }
    let gap = ys.windows(2).map(|w| w[1] - w[0]).collect();
    GapSeq { x, gap }
}

/// The exact CSD tableau DP (Golab et al.): given the gap constraint `g`,
/// choose disjoint `X`-intervals, each of which must satisfy `g` with
/// confidence ≥ `min_confidence` over the steps it spans, maximizing the
/// total number of covered steps. Runs in `O(m²)` for `m` candidate
/// positions — the Fig. 3 polynomial-time discovery case.
pub fn csd_tableau(
    r: &Relation,
    on: AttrId,
    target: AttrId,
    g: Interval,
    min_confidence: f64,
) -> Csd {
    csd_tableau_bounded(r, on, target, g, min_confidence, &Exec::unbounded()).result
}

/// Budgeted [`csd_tableau`]: each DP window check costs one node tick.
/// On exhaustion the DP stops at the last completed position and
/// reconstructs from there — every emitted tableau row still satisfies
/// the gap constraint with the required confidence over its scope, so a
/// partial tableau is sound (merely sub-optimal in coverage).
pub fn csd_tableau_bounded(
    r: &Relation,
    on: AttrId,
    target: AttrId,
    g: Interval,
    min_confidence: f64,
    exec: &Exec,
) -> Outcome<Csd> {
    let seq = gap_sequence(r, on, target);
    let m = seq.gap.len();
    if m == 0 {
        return exec.finish(Csd::new(
            r.schema(),
            on,
            target,
            vec![CsdRow {
                scope: Interval::all(),
                gap: g,
            }],
        ));
    }
    // ok_prefix[i..j]: #steps in g within window — O(1) via prefix sums.
    let mut prefix_ok = vec![0usize; m + 1];
    for (i, &gp) in seq.gap.iter().enumerate() {
        prefix_ok[i + 1] = prefix_ok[i] + usize::from(g.contains(gp));
    }
    let window_gain = |i: usize, j: usize| -> Option<usize> {
        // Steps i..=j (inclusive); confidence over the window.
        let len = j - i + 1;
        let ok = prefix_ok[j + 1] - prefix_ok[i];
        (ok as f64 / len as f64 >= min_confidence).then_some(ok)
    };
    // dp[j] = best covered-ok-steps using steps < j; choice[j] records the
    // chosen window ending at j−1 (or None for "skip step j−1").
    let mut dp = vec![0usize; m + 1];
    let mut choice: Vec<Option<usize>> = vec![None; m + 1];
    let mut completed = 0usize;
    'dp: for j in 1..=m {
        dp[j] = dp[j - 1];
        for i in 0..j {
            if !exec.tick_node() {
                break 'dp;
            }
            if let Some(gain) = window_gain(i, j - 1) {
                if dp[i] + gain > dp[j] {
                    dp[j] = dp[i] + gain;
                    choice[j] = Some(i);
                }
            }
        }
        completed = j;
    }
    // Reconstruct the chosen windows (from the last completed DP
    // position when the budget cut the table short).
    let mut rows = Vec::new();
    let mut j = completed;
    while j > 0 {
        match choice[j] {
            Some(i) => {
                rows.push(CsdRow {
                    scope: Interval::new(seq.x[i], seq.x[j]),
                    gap: g,
                });
                j = i;
            }
            None => j -= 1,
        }
    }
    rows.reverse();
    if rows.is_empty() {
        rows.push(CsdRow {
            scope: Interval::new(0.0, 0.0),
            gap: g,
        });
    }
    exec.finish(Csd::new(r.schema(), on, target, rows))
}

/// The DP's objective value: total in-gap steps covered by the tableau —
/// exposed so the quadratic-scaling bench can validate optimality claims.
pub fn tableau_covered_steps(r: &Relation, csd: &Csd) -> usize {
    let seq = gap_sequence(r, csd.on(), csd.target());
    let mut covered = 0usize;
    for (i, &gp) in seq.gap.iter().enumerate() {
        let in_scope = csd.tableau().iter().any(|row| {
            row.scope.contains(seq.x[i]) && row.scope.contains(seq.x[i + 1]) && row.gap.contains(gp)
        });
        if in_scope {
            covered += 1;
        }
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::Dependency;
    use deptree_relation::examples::hotels_r7;
    use deptree_synth::{numerical, SequenceConfig};

    #[test]
    fn suggest_gap_on_r7() {
        // Gaps on subtotal: 180, 170, 160 → the quantile band covers them.
        let r = hotels_r7();
        let s = r.schema();
        let g = suggest_gap(&r, s.id("nights"), s.id("subtotal"), 0.0, 1.0).unwrap();
        assert_eq!(g, Interval::new(160.0, 180.0));
        let sd = discover_sd(&r, s.id("nights"), s.id("subtotal"), 0.9).unwrap();
        assert!(sd.holds(&r) || sd.confidence(&r) >= 0.9);
    }

    #[test]
    fn clean_sequence_single_tableau_row() {
        let cfg = SequenceConfig {
            n_rows: 120,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.0,
            seed: 31,
        };
        let data = numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let csd = csd_tableau(
            &data.relation,
            s.id("seq"),
            s.id("y"),
            Interval::new(9.0, 11.0),
            1.0,
        );
        assert_eq!(csd.tableau().len(), 1);
        assert!(csd.holds(&data.relation));
        assert_eq!(tableau_covered_steps(&data.relation, &csd), 119);
    }

    #[test]
    fn two_regime_sequence_yields_period_rows() {
        // Regime A: gaps in [1, 2]; regime B: gaps in [10, 12]. With the
        // gap constraint [1, 2], the DP should carve out (at least) the
        // first regime and exclude the second.
        let cfg = SequenceConfig {
            n_rows: 100,
            regimes: vec![(1.0, 2.0), (10.0, 12.0)],
            spike_rate: 0.0,
            seed: 37,
        };
        let data = numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let csd = csd_tableau(
            &data.relation,
            s.id("seq"),
            s.id("y"),
            Interval::new(1.0, 2.0),
            1.0,
        );
        assert!(csd.holds(&data.relation), "{csd}");
        // All 50 in-regime-A steps covered: steps 0..=49 draw from
        // regime A (the generator switches regimes at step 50, i.e. the
        // gap leaving position 51).
        assert_eq!(tableau_covered_steps(&data.relation, &csd), 50);
        // Scope stays inside regime A's reach (x positions 1..=51).
        for row in csd.tableau() {
            assert!(row.scope.hi() <= 51.0, "{:?}", row.scope);
        }
    }

    #[test]
    fn dp_tolerates_spikes_with_confidence_slack() {
        let cfg = SequenceConfig {
            n_rows: 100,
            regimes: vec![(9.0, 11.0)],
            spike_rate: 0.05,
            seed: 41,
        };
        let data = numerical::generate(&cfg, &mut deptree_synth::rng(cfg.seed));
        let s = data.relation.schema();
        let strict = csd_tableau(
            &data.relation,
            s.id("seq"),
            s.id("y"),
            Interval::new(9.0, 11.0),
            1.0,
        );
        let slack = csd_tableau(
            &data.relation,
            s.id("seq"),
            s.id("y"),
            Interval::new(9.0, 11.0),
            0.9,
        );
        // Slack merges windows across isolated spikes: fewer, longer rows
        // covering at least as many good steps.
        assert!(slack.tableau().len() <= strict.tableau().len());
        assert!(
            tableau_covered_steps(&data.relation, &slack)
                >= tableau_covered_steps(&data.relation, &strict)
        );
    }

    /// The DP's optimality, checked against brute force on tiny inputs:
    /// enumerate every set of disjoint windows whose confidence clears the
    /// bar and compare total covered in-gap steps.
    #[test]
    fn dp_is_optimal_on_small_sequences() {
        use deptree_relation::{RelationBuilder, ValueType};
        // Several hand-built gap patterns around the band [1, 2].
        let patterns: [&[i64]; 4] = [
            &[1, 2, 9, 1, 1, 9, 2],
            &[9, 9, 1, 1, 1, 9, 9, 1],
            &[1, 1, 1, 1],
            &[9, 9, 9],
        ];
        for (pi, gaps) in patterns.iter().enumerate() {
            let mut b = RelationBuilder::new()
                .attr("x", ValueType::Numeric)
                .attr("y", ValueType::Numeric);
            let mut y = 0i64;
            for (i, &g) in std::iter::once(&0).chain(gaps.iter()).enumerate() {
                y += g;
                b = b.row(vec![(i as i64 + 1).into(), y.into()]);
            }
            let r = b.build().unwrap();
            let s = r.schema();
            let band = Interval::new(1.0, 2.0);
            for conf in [1.0, 0.6] {
                let csd = csd_tableau(&r, s.id("x"), s.id("y"), band, conf);
                let dp_value = tableau_covered_steps(&r, &csd);
                let best = brute_force_best(gaps, band, conf);
                assert_eq!(dp_value, best, "pattern {pi}, confidence {conf}");
            }
        }
    }

    /// Exhaustive search over all sets of disjoint windows.
    fn brute_force_best(gaps: &[i64], band: Interval, min_conf: f64) -> usize {
        fn rec(gaps: &[i64], band: Interval, min_conf: f64, start: usize) -> usize {
            if start >= gaps.len() {
                return 0;
            }
            // Option 1: skip step `start`.
            let mut best = rec(gaps, band, min_conf, start + 1);
            // Option 2: a window [start, end].
            for end in start..gaps.len() {
                let window = &gaps[start..=end];
                let ok = window.iter().filter(|&&g| band.contains(g as f64)).count();
                if ok as f64 / window.len() as f64 >= min_conf {
                    best = best.max(ok + rec(gaps, band, min_conf, end + 1));
                }
            }
            best
        }
        rec(gaps, band, min_conf, 0)
    }

    #[test]
    fn degenerate_inputs() {
        let r = hotels_r7();
        let s = r.schema();
        // Two rows → one gap → suggest works; single row → None.
        let single = r.select_rows(&[0]);
        assert!(suggest_gap(&single, s.id("nights"), s.id("subtotal"), 0.0, 1.0).is_none());
        let csd = csd_tableau(
            &single,
            s.id("nights"),
            s.id("subtotal"),
            Interval::all(),
            1.0,
        );
        assert!(csd.holds(&single));
    }
}
