//! Server-side metrics: request accounting, shed/drain counters and the
//! `/metrics` exposition.
//!
//! All series live in the engine's global registry
//! ([`deptree_core::engine::obs::registry`]), so one scrape covers the
//! HTTP layer and the engine internals (cache traffic, pool stealing,
//! budget exhaustions) alike. Handles are resolved once at first use;
//! the per-request cost is atomic adds plus one registry lock to intern
//! the `(route, status)` counter — negligible next to a discovery run.

use deptree_core::engine::obs::{self, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

use crate::admission::ShedReason;

/// Pre-registered handles for the serve-layer series.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Request latency from frame parse to response hand-off, seconds.
    pub latency: Arc<Histogram>,
    /// Requests currently executing: incremented when a parsed request
    /// enters the handler, decremented when the handler returns (the
    /// listener's panic barrier guarantees the decrement), so the gauge
    /// is live between scrapes instead of a scrape-time snapshot.
    pub inflight: Arc<Gauge>,
    /// Connections admitted past admission control.
    pub admitted: Arc<Counter>,
    /// Drain protocols started.
    pub drains: Arc<Counter>,
    /// Drains that had to hard-cancel in-flight work after the grace.
    pub drain_cancels: Arc<Counter>,
    /// Response-cache lookups answered from the cache.
    pub response_cache_hits: Arc<Counter>,
    /// Response-cache lookups that fell through to computation.
    pub response_cache_misses: Arc<Counter>,
    /// Cache entries removed (capacity pressure or dataset invalidation).
    pub response_cache_evictions: Arc<Counter>,
    /// Bytes currently held by the response cache (keys + values).
    pub response_cache_bytes: Arc<Gauge>,
    shed: [Arc<Counter>; 3],
}

const REQUESTS_NAME: &str = "deptree_requests_total";
const REQUESTS_HELP: &str = "Requests answered, by route and status.";

impl ServeMetrics {
    fn new() -> Self {
        let reg = obs::registry();
        // Eagerly register the engine families and seed the dynamic
        // request family, so a scrape before any traffic still exposes
        // every required series (at zero).
        let _ = obs::engine_metrics();
        let _ = reg.counter(
            REQUESTS_NAME,
            REQUESTS_HELP,
            &[("route", "/healthz"), ("status", "200")],
        );
        let shed = |reason: &'static str| {
            reg.counter(
                "deptree_shed_total",
                "Connections shed by admission control, by reason.",
                &[("reason", reason)],
            )
        };
        ServeMetrics {
            latency: reg.histogram(
                "deptree_request_duration_seconds",
                "Request latency from parsed frame to response hand-off.",
                &[],
                obs::LATENCY_BUCKETS,
            ),
            inflight: reg.gauge(
                "deptree_inflight_requests",
                "Task requests currently executing.",
                &[],
            ),
            admitted: reg.counter(
                "deptree_admitted_total",
                "Connections admitted past admission control.",
                &[],
            ),
            drains: reg.counter("deptree_drains_total", "Drain protocols started.", &[]),
            drain_cancels: reg.counter(
                "deptree_drain_cancels_total",
                "Drains that hard-cancelled in-flight work after the grace period.",
                &[],
            ),
            response_cache_hits: reg.counter(
                "deptree_response_cache_hits_total",
                "Response-cache lookups answered with a byte-identical cached reply.",
                &[],
            ),
            response_cache_misses: reg.counter(
                "deptree_response_cache_misses_total",
                "Response-cache lookups that fell through to computation.",
                &[],
            ),
            response_cache_evictions: reg.counter(
                "deptree_response_cache_evictions_total",
                "Response-cache entries removed by capacity pressure or dataset invalidation.",
                &[],
            ),
            response_cache_bytes: reg.gauge(
                "deptree_response_cache_bytes",
                "Bytes currently held by the response cache (keys and values).",
                &[],
            ),
            shed: [shed("connections"), shed("queue"), shed("closed")],
        }
    }

    /// The shed counter for one admission-refusal reason.
    pub fn shed(&self, reason: ShedReason) -> &Counter {
        match reason {
            ShedReason::Connections => &self.shed[0],
            ShedReason::Queue => &self.shed[1],
            ShedReason::Closed => &self.shed[2],
        }
    }

    /// The `(route, status)` request counter. Routes are normalized to
    /// the known endpoint set so a path-scanning client cannot inflate
    /// series cardinality.
    pub fn requests(&self, path: &str, status: u16) -> Arc<Counter> {
        obs::registry().counter(
            REQUESTS_NAME,
            REQUESTS_HELP,
            &[
                ("route", normalize_route(path)),
                ("status", status_str(status)),
            ],
        )
    }
}

/// The serve-layer metric handles, registered in the global registry on
/// first use. [`crate::spawn`] touches this at boot so every required
/// series exists (at zero) before the first request arrives.
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(ServeMetrics::new)
}

fn normalize_route(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/metrics" => "/metrics",
        "/v1/datasets" => "/v1/datasets",
        "/v1/discover" => "/v1/discover",
        "/v1/validate" => "/v1/validate",
        "/v1/detect" => "/v1/detect",
        "/v1/repair" => "/v1/repair",
        "/v1/dedup" => "/v1/dedup",
        "/v1/batch" => "/v1/batch",
        "/admin/datasets" => "/admin/datasets",
        "/admin/datasets/drop" => "/admin/datasets/drop",
        "/admin/reload" => "/admin/reload",
        _ => "other",
    }
}

fn status_str(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        413 => "413",
        429 => "429",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

/// Render the whole registry as Prometheus text. Every gauge —
/// including `deptree_inflight_requests`, which the listener maintains
/// at request start/end — is already live; nothing is refreshed at
/// scrape time.
pub fn render() -> String {
    let _ = serve_metrics();
    obs::registry().render()
}

/// Pre-registered handles for the gateway-layer series (cluster front).
#[derive(Debug)]
pub struct GatewayMetrics {
    /// Scatter/gather latency of one sharded fan-out, seconds.
    pub fanout_latency: Arc<Histogram>,
    /// Merged responses that had to report a `degraded` detail.
    pub degraded: Arc<Counter>,
    /// Single-dataset requests proxied to a home worker.
    pub proxied: Arc<Counter>,
    /// Workers currently quarantined for crash-looping.
    pub quarantined: Arc<Gauge>,
    /// Slices re-homed onto a survivor after their primary died.
    pub reshard: Arc<Counter>,
    /// Slice reads hedged to a second copy after the primary stalled.
    pub hedged_reads: Arc<Counter>,
    /// Children `SIGKILL`ed because the drain deadline expired.
    pub force_kill: Arc<Counter>,
}

impl GatewayMetrics {
    fn new() -> Self {
        let reg = obs::registry();
        GatewayMetrics {
            fanout_latency: reg.histogram(
                "deptree_gateway_fanout_duration_seconds",
                "Latency of one sharded discovery fan-out (scatter to merge).",
                &[],
                obs::LATENCY_BUCKETS,
            ),
            degraded: reg.counter(
                "deptree_gateway_degraded_total",
                "Merged responses marked partial because a worker died or timed out.",
                &[],
            ),
            proxied: reg.counter(
                "deptree_gateway_proxied_total",
                "Single-dataset requests proxied to a home worker.",
                &[],
            ),
            quarantined: reg.gauge(
                "deptree_gateway_workers_quarantined",
                "Workers currently quarantined for crash-looping.",
                &[],
            ),
            reshard: reg.counter(
                "deptree_reshard_total",
                "Slices re-homed onto a surviving worker after their primary died.",
                &[],
            ),
            hedged_reads: reg.counter(
                "deptree_hedged_reads_total",
                "Slice reads hedged to a second live copy after the first stalled.",
                &[],
            ),
            force_kill: reg.counter(
                "deptree_worker_force_kill_total",
                "Workers SIGKILLed because they outlived the drain grace deadline.",
                &[],
            ),
        }
    }
}

/// The gateway metric handles, registered on first use (gateway boot).
pub fn gateway_metrics() -> &'static GatewayMetrics {
    static METRICS: OnceLock<GatewayMetrics> = OnceLock::new();
    METRICS.get_or_init(GatewayMetrics::new)
}

/// Per-worker liveness gauge: `deptree_gateway_worker_up{worker="N"}`.
pub fn worker_up(worker: usize) -> Arc<Gauge> {
    let id = worker.to_string();
    obs::registry().gauge(
        "deptree_gateway_worker_up",
        "Whether the supervised worker is up and answering /readyz.",
        &[("worker", id.as_str())],
    )
}

/// Per-worker respawn counter:
/// `deptree_gateway_worker_restarts_total{worker="N"}`.
pub fn worker_restarts(worker: usize) -> Arc<Counter> {
    let id = worker.to_string();
    obs::registry().counter(
        "deptree_gateway_worker_restarts_total",
        "Times the supervisor respawned this worker after a crash or failed probes.",
        &[("worker", id.as_str())],
    )
}

/// Every state a supervised worker slot can be in, in wire order. The
/// lifecycle gauge emits one series per (slot, state) pair with exactly
/// one `1` per slot, so dashboards can plot the state machine directly.
pub const SLOT_STATES: [&str; 5] = ["up", "respawning", "quarantined", "probation", "draining"];

/// One `deptree_worker_slot_state{slot="N",state="S"}` gauge.
pub fn slot_state(slot: usize, state: &str) -> Arc<Gauge> {
    let id = slot.to_string();
    obs::registry().gauge(
        "deptree_worker_slot_state",
        "Worker slot lifecycle (one-hot per slot: up, respawning, quarantined, probation, draining).",
        &[("slot", id.as_str()), ("state", state)],
    )
}

/// Publish one slot's lifecycle state: set the named state's gauge to 1
/// and every other state in the family to 0 (one-hot encoding).
pub fn set_slot_state(slot: usize, state: &str) {
    for s in SLOT_STATES {
        slot_state(slot, s).set(i64::from(s == state));
    }
}

/// Per-worker in-flight gauge on the gateway side:
/// `deptree_gateway_worker_inflight{worker="N"}` — requests this
/// gateway currently has outstanding against the worker. The fan-out
/// reads it to pick the least-loaded live copy of a slice.
pub fn worker_inflight(worker: usize) -> Arc<Gauge> {
    let id = worker.to_string();
    obs::registry().gauge(
        "deptree_gateway_worker_inflight",
        "Requests the gateway currently has outstanding against this worker.",
        &[("worker", id.as_str())],
    )
}

/// Per-dataset resident-footprint gauge:
/// `deptree_dataset_bytes{dataset="NAME"}`. Set at preload from the
/// columnar `Relation::approx_bytes` estimate and refreshed after each
/// task touching the dataset, so a scrape shows what each loaded table
/// actually costs once its lazy views (sorted runs, bit-packed codes)
/// have materialized.
pub fn dataset_bytes(dataset: &str) -> Arc<Gauge> {
    obs::registry().gauge(
        "deptree_dataset_bytes",
        "Approximate resident bytes of a preloaded dataset (columnar estimate).",
        &[("dataset", dataset)],
    )
}

/// Re-emit one worker's `/metrics` exposition with a `worker="N"` label
/// on every sample, so the gateway's aggregated scrape keeps the
/// workers' series apart instead of colliding same-named series from
/// different processes into one.
///
/// `# HELP`/`# TYPE` comment lines are dropped: the family metadata
/// would otherwise repeat once per worker, which Prometheus parsers
/// reject as duplicate TYPE declarations. Sample lines keep their
/// existing labels (`le`, `route`, …) after the injected `worker`.
pub fn relabel_worker(exposition: &str, worker: usize) -> String {
    let mut out = String::with_capacity(exposition.len() + 64);
    for line in exposition.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A sample is `name value`, `name{labels} value`. The metric
        // name cannot contain '{' or ' ', so the first of either splits
        // name from the rest.
        let split = line.find(['{', ' ']);
        let Some(at) = split else { continue };
        let (name, rest) = line.split_at(at);
        if rest.starts_with('{') {
            let Some(close) = rest.find('}') else {
                continue;
            };
            let existing = &rest[1..close];
            let tail = &rest[close + 1..];
            if existing.is_empty() {
                out.push_str(&format!("{name}{{worker=\"{worker}\"}}{tail}\n"));
            } else {
                out.push_str(&format!("{name}{{worker=\"{worker}\",{existing}}}{tail}\n"));
            }
        } else {
            out.push_str(&format!("{name}{{worker=\"{worker}\"}}{rest}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_series_exist_at_boot() {
        let text = render();
        for series in [
            "deptree_requests_total",
            "deptree_shed_total",
            "deptree_request_duration_seconds",
            "deptree_inflight_requests",
            "deptree_cache_hits_total",
            "deptree_response_cache_hits_total",
            "deptree_response_cache_misses_total",
            "deptree_response_cache_evictions_total",
            "deptree_response_cache_bytes",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn relabel_injects_worker_on_bare_and_labeled_samples() {
        let exposition = "\
# HELP deptree_requests_total Requests answered.
# TYPE deptree_requests_total counter
deptree_requests_total{route=\"/v1/discover\",status=\"200\"} 3
deptree_inflight_requests 1
deptree_request_duration_seconds_bucket{le=\"0.01\"} 2
deptree_request_duration_seconds_sum 0.5
";
        let out = relabel_worker(exposition, 2);
        assert!(
            out.contains(
                "deptree_requests_total{worker=\"2\",route=\"/v1/discover\",status=\"200\"} 3"
            ),
            "{out}"
        );
        assert!(
            out.contains("deptree_inflight_requests{worker=\"2\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("deptree_request_duration_seconds_bucket{worker=\"2\",le=\"0.01\"} 2"),
            "{out}"
        );
        // Comment lines are dropped: family metadata must not repeat
        // once per worker in the aggregated exposition.
        assert!(!out.contains('#'), "{out}");
    }

    #[test]
    fn relabel_keeps_same_named_series_from_two_workers_apart() {
        // The satellite's collision case: the same series scraped from
        // two workers must stay two lines, not intern into one.
        let series = "deptree_admitted_total 7\n";
        let a = relabel_worker(series, 0);
        let b = relabel_worker(series, 1);
        assert_ne!(a, b);
        let merged = format!("{a}{b}");
        assert!(merged.contains("deptree_admitted_total{worker=\"0\"} 7"));
        assert!(merged.contains("deptree_admitted_total{worker=\"1\"} 7"));
    }

    #[test]
    fn per_worker_registry_handles_are_distinct_series() {
        // Registry-level check for the label path: interning the same
        // family under different `worker` labels yields independent
        // handles, and both render.
        let a = worker_restarts(90);
        let b = worker_restarts(91);
        a.inc();
        b.inc();
        b.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 2);
        let text = obs::registry().render();
        assert!(
            text.contains("deptree_gateway_worker_restarts_total{worker=\"90\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("deptree_gateway_worker_restarts_total{worker=\"91\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn gateway_series_exist_at_boot() {
        let _ = gateway_metrics();
        let _ = worker_up(0);
        set_slot_state(0, "up");
        let _ = worker_inflight(0);
        let text = render();
        for series in [
            "deptree_gateway_fanout_duration_seconds",
            "deptree_gateway_degraded_total",
            "deptree_gateway_workers_quarantined",
            "deptree_gateway_worker_up",
            "deptree_reshard_total",
            "deptree_hedged_reads_total",
            "deptree_worker_force_kill_total",
            "deptree_gateway_worker_inflight",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn slot_state_gauge_is_one_hot() {
        set_slot_state(77, "quarantined");
        let text = obs::registry().render();
        assert!(
            text.contains("deptree_worker_slot_state{slot=\"77\",state=\"quarantined\"} 1"),
            "{text}"
        );
        for other in ["up", "respawning", "probation", "draining"] {
            let line = format!("deptree_worker_slot_state{{slot=\"77\",state=\"{other}\"}} 0");
            assert!(text.contains(&line), "missing {line} in:\n{text}");
        }
        // Moving state flips the hot bit, never leaves two set.
        set_slot_state(77, "probation");
        let text = obs::registry().render();
        assert!(
            text.contains("deptree_worker_slot_state{slot=\"77\",state=\"probation\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("deptree_worker_slot_state{slot=\"77\",state=\"quarantined\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn unknown_routes_collapse_to_other() {
        let c = serve_metrics().requests("/etc/passwd", 404);
        let before = c.get();
        serve_metrics().requests("/../../x", 404).inc();
        assert_eq!(c.get(), before + 1, "both paths intern to the same series");
    }
}
