//! Server-side metrics: request accounting, shed/drain counters and the
//! `/metrics` exposition.
//!
//! All series live in the engine's global registry
//! ([`deptree_core::engine::obs::registry`]), so one scrape covers the
//! HTTP layer and the engine internals (cache traffic, pool stealing,
//! budget exhaustions) alike. Handles are resolved once at first use;
//! the per-request cost is atomic adds plus one registry lock to intern
//! the `(route, status)` counter — negligible next to a discovery run.

use deptree_core::engine::obs::{self, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

use crate::admission::ShedReason;

/// Pre-registered handles for the serve-layer series.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Request latency from frame parse to response hand-off, seconds.
    pub latency: Arc<Histogram>,
    /// Requests currently executing (sampled from the drain tracker).
    pub inflight: Arc<Gauge>,
    /// Connections admitted past admission control.
    pub admitted: Arc<Counter>,
    /// Drain protocols started.
    pub drains: Arc<Counter>,
    /// Drains that had to hard-cancel in-flight work after the grace.
    pub drain_cancels: Arc<Counter>,
    shed: [Arc<Counter>; 3],
}

const REQUESTS_NAME: &str = "deptree_requests_total";
const REQUESTS_HELP: &str = "Requests answered, by route and status.";

impl ServeMetrics {
    fn new() -> Self {
        let reg = obs::registry();
        // Eagerly register the engine families and seed the dynamic
        // request family, so a scrape before any traffic still exposes
        // every required series (at zero).
        let _ = obs::engine_metrics();
        let _ = reg.counter(
            REQUESTS_NAME,
            REQUESTS_HELP,
            &[("route", "/healthz"), ("status", "200")],
        );
        let shed = |reason: &'static str| {
            reg.counter(
                "deptree_shed_total",
                "Connections shed by admission control, by reason.",
                &[("reason", reason)],
            )
        };
        ServeMetrics {
            latency: reg.histogram(
                "deptree_request_duration_seconds",
                "Request latency from parsed frame to response hand-off.",
                &[],
                obs::LATENCY_BUCKETS,
            ),
            inflight: reg.gauge(
                "deptree_inflight_requests",
                "Task requests currently executing.",
                &[],
            ),
            admitted: reg.counter(
                "deptree_admitted_total",
                "Connections admitted past admission control.",
                &[],
            ),
            drains: reg.counter("deptree_drains_total", "Drain protocols started.", &[]),
            drain_cancels: reg.counter(
                "deptree_drain_cancels_total",
                "Drains that hard-cancelled in-flight work after the grace period.",
                &[],
            ),
            shed: [shed("connections"), shed("queue"), shed("closed")],
        }
    }

    /// The shed counter for one admission-refusal reason.
    pub fn shed(&self, reason: ShedReason) -> &Counter {
        match reason {
            ShedReason::Connections => &self.shed[0],
            ShedReason::Queue => &self.shed[1],
            ShedReason::Closed => &self.shed[2],
        }
    }

    /// The `(route, status)` request counter. Routes are normalized to
    /// the known endpoint set so a path-scanning client cannot inflate
    /// series cardinality.
    pub fn requests(&self, path: &str, status: u16) -> Arc<Counter> {
        obs::registry().counter(
            REQUESTS_NAME,
            REQUESTS_HELP,
            &[
                ("route", normalize_route(path)),
                ("status", status_str(status)),
            ],
        )
    }
}

/// The serve-layer metric handles, registered in the global registry on
/// first use. [`crate::spawn`] touches this at boot so every required
/// series exists (at zero) before the first request arrives.
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(ServeMetrics::new)
}

fn normalize_route(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/metrics" => "/metrics",
        "/v1/datasets" => "/v1/datasets",
        "/v1/discover" => "/v1/discover",
        "/v1/validate" => "/v1/validate",
        "/v1/detect" => "/v1/detect",
        "/v1/repair" => "/v1/repair",
        "/v1/dedup" => "/v1/dedup",
        _ => "other",
    }
}

fn status_str(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        413 => "413",
        429 => "429",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

/// Render the whole registry as Prometheus text, refreshing the sampled
/// gauges first.
pub fn render(inflight: usize) -> String {
    let m = serve_metrics();
    m.inflight.set(inflight as i64);
    obs::registry().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_series_exist_at_boot() {
        let text = render(0);
        for series in [
            "deptree_requests_total",
            "deptree_shed_total",
            "deptree_request_duration_seconds",
            "deptree_inflight_requests",
            "deptree_cache_hits_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn unknown_routes_collapse_to_other() {
        let c = serve_metrics().requests("/etc/passwd", 404);
        let before = c.get();
        serve_metrics().requests("/../../x", 404).inc();
        assert_eq!(c.get(), before + 1, "both paths intern to the same series");
    }
}
