//! Admission control: a bounded hand-off queue with explicit load
//! shedding.
//!
//! The accept loop never buffers work it cannot bound. Each accepted
//! socket must clear two gates before a worker sees it:
//!
//! 1. a **connection cap** — the total number of sockets the server holds
//!    (queued + being served) stays below `max_active`;
//! 2. a **bounded queue** — `queue_depth` slots between the accept loop
//!    and the worker pool.
//!
//! When either gate fails the socket is handed back to the caller, which
//! answers `429 overloaded` and closes — *shedding* the load instead of
//! growing a queue without limit. Shed counts are kept so operators (and
//! the fault-injection suite) can observe the policy working.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// The active-connection claim; dropping it releases the slot.
struct Slot {
    active: Arc<AtomicUsize>,
}

impl Drop for Slot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One admitted connection. Holds the active-connection slot; dropping
/// the `Conn` (worker done, or socket closed early) releases it.
pub struct Conn {
    /// The client socket.
    pub stream: TcpStream,
    slot: Slot,
}

/// Counters exposed by the admission gate.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    /// Connections handed to the worker pool.
    pub admitted: AtomicU64,
    /// Connections shed with `429` (either gate).
    pub shed: AtomicU64,
}

/// Why a connection was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The connection cap was reached.
    Connections,
    /// The hand-off queue was full.
    Queue,
    /// The worker pool is gone (server shutting down).
    Closed,
}

/// The accept-side of the gate.
pub struct Admission {
    tx: SyncSender<Conn>,
    active: Arc<AtomicUsize>,
    max_active: usize,
    /// Shed/admit counters (shared with the router for introspection).
    pub stats: Arc<AdmissionStats>,
}

impl Admission {
    /// Build the gate; returns the worker-side receiver alongside.
    pub fn new(queue_depth: usize, max_active: usize) -> (Admission, Receiver<Conn>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_depth.max(1));
        (
            Admission {
                tx,
                active: Arc::new(AtomicUsize::new(0)),
                max_active: max_active.max(1),
                stats: Arc::new(AdmissionStats::default()),
            },
            rx,
        )
    }

    /// Try to admit a socket. On failure the socket is returned so the
    /// caller can answer `429` before closing it.
    pub fn try_admit(&self, stream: TcpStream) -> Result<(), (TcpStream, ShedReason)> {
        // Optimistically claim a slot; the queue push below can still
        // fail, in which case the Conn drop releases the claim.
        let claimed = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        let conn = Conn {
            stream,
            slot: Slot {
                active: Arc::clone(&self.active),
            },
        };
        if claimed > self.max_active {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(take_stream(conn, ShedReason::Connections));
        }
        match self.tx.try_send(conn) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(conn)) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(take_stream(conn, ShedReason::Queue))
            }
            Err(TrySendError::Disconnected(conn)) => Err(take_stream(conn, ShedReason::Closed)),
        }
    }

    /// Connections currently held (queued + in service).
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }
}

/// Unwrap the socket from a rejected `Conn`, releasing its slot.
fn take_stream(conn: Conn, reason: ShedReason) -> (TcpStream, ShedReason) {
    let Conn { stream, slot } = conn;
    drop(slot);
    (stream, reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpListener, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        (listener, client)
    }

    #[test]
    fn queue_depth_sheds_beyond_capacity() {
        let (admission, _rx) = Admission::new(2, 100);
        let mut keep = Vec::new();
        let mut shed = 0;
        for _ in 0..5 {
            let (l, c) = pair();
            keep.push(l);
            match admission.try_admit(c) {
                Ok(()) => {}
                Err((_, reason)) => {
                    assert_eq!(reason, ShedReason::Queue);
                    shed += 1;
                }
            }
        }
        assert_eq!(shed, 3);
        assert_eq!(admission.stats.admitted.load(Ordering::Relaxed), 2);
        assert_eq!(admission.stats.shed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn connection_cap_sheds_first() {
        let (admission, _rx) = Admission::new(100, 1);
        let (_l1, c1) = pair();
        let (_l2, c2) = pair();
        assert!(admission.try_admit(c1).is_ok());
        match admission.try_admit(c2) {
            Err((_, ShedReason::Connections)) => {}
            other => panic!("expected connection-cap shed, got {:?}", other.map(|_| ())),
        }
        assert_eq!(admission.active(), 1);
    }

    #[test]
    fn dropping_conn_releases_the_slot() {
        let (admission, rx) = Admission::new(4, 2);
        let (_l1, c1) = pair();
        let (_l2, c2) = pair();
        assert!(admission.try_admit(c1).is_ok());
        assert!(admission.try_admit(c2).is_ok());
        assert_eq!(admission.active(), 2);
        drop(rx.recv().unwrap());
        assert_eq!(admission.active(), 1);
        let (_l3, c3) = pair();
        assert!(admission.try_admit(c3).is_ok());
    }

    #[test]
    fn disconnected_pool_reports_closed() {
        let (admission, rx) = Admission::new(2, 2);
        drop(rx);
        let (_l, c) = pair();
        match admission.try_admit(c) {
            Err((_, ShedReason::Closed)) => {}
            other => panic!("expected closed, got {:?}", other.map(|_| ())),
        }
    }
}
