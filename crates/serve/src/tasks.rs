//! The service tasks, shared verbatim between `deptree` (CLI) and
//! `deptree serve` (daemon).
//!
//! Each task renders a plain-text report. The CLI prints it to stdout;
//! the server ships it in the `report` field of the response body. There
//! is exactly one rendering code path, which is what makes the
//! fault-injection suite's byte-identity check (`server report ==
//! CLI stdout`, at any thread count) meaningful rather than aspirational.
//!
//! All bounded work ticks one shared [`Exec`] per request, so a deadline
//! or drain-cancellation covers the whole task (every phase of `profile`
//! included) and the report carries the sound partial plus an honest
//! `exhausted` cause.

use deptree_core::engine::{BudgetKind, Exec};
use deptree_core::{Dependency, DeptreeError, Fd, Md};
use deptree_discovery::{cords, dc, od, tane};
use deptree_metrics::Metric;
use deptree_quality::{dedup, repair};
use deptree_relation::{AttrId, AttrSet, Relation, ValueType};
use std::fmt::Write as _;

/// A rendered task: the report text plus why it stopped, if early.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// The full plain-text report (newline-terminated lines).
    pub text: String,
    /// `Some(kind)` when a budget/cancellation truncated the work.
    pub exhausted: Option<BudgetKind>,
    /// Machine-readable FD rules discovered (discovery tasks only; the
    /// `"a, b -> c"` form accepted by `Fd::parse`). The gateway's
    /// fan-out merger re-validates these against the full snapshot, so
    /// they must round-trip losslessly — unlike the truncated-for-humans
    /// listing inside `text`.
    pub fds: Vec<String>,
}

/// Options for [`profile`].
#[derive(Debug, Clone)]
pub struct ProfileOpts {
    /// Maximum LHS size for the TANE lattice.
    pub max_lhs: usize,
    /// g3 error bound; 0.0 means exact FDs.
    pub error: f64,
}

impl Default for ProfileOpts {
    fn default() -> Self {
        ProfileOpts {
            max_lhs: 2,
            error: 0.0,
        }
    }
}

macro_rules! line {
    ($buf:expr) => {
        let _ = writeln!($buf);
    };
    ($buf:expr, $($arg:tt)*) => {
        let _ = writeln!($buf, $($arg)*);
    };
}

/// The discovery profile: approximate/exact FDs (TANE), soft FDs
/// (CORDS), and — when the schema has numeric columns — order
/// dependencies and denial constraints. One `exec` spans all phases.
pub fn profile(r: &Relation, opts: &ProfileOpts, exec: &Exec) -> TaskReport {
    let mut buf = String::new();
    let mut exhausted: Option<BudgetKind> = None;

    line!(buf, "{} rows × {} columns", r.n_rows(), r.n_attrs());
    line!(buf);

    let kind = if opts.error > 0.0 {
        "approximate FDs"
    } else {
        "exact FDs"
    };
    let mut span = exec.span("profile.tane");
    let t = tane::discover_bounded(
        r,
        &tane::TaneConfig {
            max_lhs: opts.max_lhs,
            max_error: opts.error,
        },
        exec,
    );
    span.attr("fds", t.result.fds.len() as u64);
    drop(span);
    exhausted = exhausted.or(t.exhausted);
    // The machine-readable list is never truncated: soundness of a
    // downstream merge depends on seeing everything TANE verified.
    let fds: Vec<String> = t.result.fds.iter().map(|fd| fd.rule().to_owned()).collect();
    line!(
        buf,
        "== {kind} (TANE, max LHS {}) — {} found{} ==",
        opts.max_lhs,
        t.result.fds.len(),
        if t.complete { "" } else { ", search truncated" }
    );
    for fd in t.result.fds.iter().take(25) {
        line!(buf, "  {fd}");
    }
    if t.result.fds.len() > 25 {
        line!(buf, "  … and {} more", t.result.fds.len() - 25);
    }

    let mut span = exec.span("profile.cords");
    let c = cords::discover(
        r,
        &cords::CordsConfig {
            min_strength: 0.8,
            ..Default::default()
        },
    );
    span.attr("sfds", c.sfds.len() as u64);
    drop(span);
    line!(
        buf,
        "\n== soft FDs (CORDS, strength ≥ 0.8 on {}-row sample) — {} found ==",
        c.sampled_rows,
        c.sfds.len()
    );
    for sfd in c.sfds.iter().take(10) {
        line!(buf, "  {sfd} (strength {:.2})", sfd.strength(r));
    }

    let numeric = r
        .schema()
        .iter()
        .filter(|(_, a)| a.ty == ValueType::Numeric)
        .count();
    if numeric >= 2 {
        let mut span = exec.span("profile.od");
        let ods = od::discover_bounded(r, &od::OdConfig::default(), exec);
        span.attr("ods", ods.result.len() as u64);
        drop(span);
        exhausted = exhausted.or(ods.exhausted);
        line!(
            buf,
            "\n== order dependencies — {} found{} ==",
            ods.result.len(),
            if ods.complete {
                ""
            } else {
                ", search truncated"
            }
        );
        for o in ods.result.iter().take(10) {
            line!(buf, "  {o}");
        }
        if r.n_rows() <= 500 || !exec.budget().is_unlimited() {
            let mut span = exec.span("profile.fastdc");
            let d = dc::discover_bounded(r, &dc::DcConfig::default(), exec);
            span.attr("dcs", d.result.dcs.len() as u64);
            drop(span);
            exhausted = exhausted.or(d.exhausted);
            line!(
                buf,
                "\n== denial constraints (FASTDC) — {} found{} ==",
                d.result.dcs.len(),
                if d.complete { "" } else { ", search truncated" }
            );
            for rule in d.result.dcs.iter().take(10) {
                line!(buf, "  {rule}");
            }
        } else {
            line!(
                buf,
                "\n(skipping FASTDC: {} rows > 500; sample the file or pass --timeout-ms)",
                r.n_rows()
            );
        }
    }
    TaskReport {
        text: buf,
        exhausted,
        fds,
    }
}

/// Parse an FD-style rule (`"a, b -> c"`) against the schema.
pub fn parse_rule(r: &Relation, rule: &str) -> Result<Fd, DeptreeError> {
    Fd::parse(r.schema(), rule).ok_or_else(|| {
        DeptreeError::Parse(format!("cannot parse rule `{rule}` against the header"))
    })
}

/// Does the rule hold, and how badly does it fail (g3)?
pub fn validate(r: &Relation, rule: &str) -> Result<TaskReport, DeptreeError> {
    let fd = parse_rule(r, rule)?;
    let mut buf = String::new();
    line!(buf, "{fd}: holds = {}, g3 = {:.4}", fd.holds(r), fd.g3(r));
    Ok(TaskReport {
        text: buf,
        exhausted: None,
        fds: Vec::new(),
    })
}

/// Violation witnesses of one FD-style rule.
pub fn detect(r: &Relation, rule: &str) -> Result<TaskReport, DeptreeError> {
    let fd = parse_rule(r, rule)?;
    let violations = fd.violations(r);
    let mut buf = String::new();
    line!(
        buf,
        "{fd}: {} violation witness(es), g3 = {:.4}",
        violations.len(),
        fd.g3(r)
    );
    for v in violations.iter().take(50) {
        let rows: Vec<String> = v.rows.iter().map(|row| format!("#{}", row + 1)).collect();
        line!(buf, "  rows {}", rows.join(" / "));
    }
    if violations.len() > 50 {
        line!(buf, "  … and {} more", violations.len() - 50);
    }
    Ok(TaskReport {
        text: buf,
        exhausted: None,
        fds: Vec::new(),
    })
}

/// Equivalence-class repair of one FD-style rule. Returns the report and
/// the repaired relation (the CLI writes it to `--out`; the server ships
/// it as CSV).
pub fn repair(
    r: &Relation,
    rule: &str,
    exec: &Exec,
) -> Result<(TaskReport, Relation), DeptreeError> {
    let fd = parse_rule(r, rule)?;
    let mut span = exec.span("repair.fds");
    let outcome = repair::repair_fds_bounded(r, std::slice::from_ref(&fd), 10, exec);
    let result = outcome.result;
    span.attr("iterations", result.iterations as u64);
    span.attr("changes", result.changes.len() as u64);
    drop(span);
    let mut buf = String::new();
    line!(
        buf,
        "repaired in {} iteration(s), {} cell(s) changed; rule now holds: {}",
        result.iterations,
        result.changes.len(),
        fd.holds(&result.relation)
    );
    Ok((
        TaskReport {
            text: buf,
            exhausted: outcome.exhausted,
            fds: Vec::new(),
        },
        result.relation,
    ))
}

/// Exact-duplicate clustering on the named key columns: rows equal on
/// every key are merged into one cluster (an all-equality MD).
pub fn dedup(r: &Relation, keys: &[String], exec: &Exec) -> Result<TaskReport, DeptreeError> {
    if keys.is_empty() {
        return Err(DeptreeError::InvalidConfig(
            "dedup needs at least one key column".into(),
        ));
    }
    let schema = r.schema();
    let mut lhs: Vec<(AttrId, Metric, f64)> = Vec::new();
    let mut key_set = AttrSet::empty();
    for key in keys {
        let Some((id, _)) = schema.iter().find(|(_, a)| a.name == *key) else {
            return Err(DeptreeError::InvalidConfig(format!(
                "unknown key column `{key}`"
            )));
        };
        lhs.push((id, Metric::Equality, 0.0));
        key_set = key_set.insert(id);
    }
    let rhs: AttrSet = schema
        .ids()
        .filter(|a| !key_set.contains(*a))
        .fold(AttrSet::empty(), |s, a| s.insert(a));
    if rhs.is_empty() {
        return Err(DeptreeError::InvalidConfig(
            "dedup keys must leave at least one non-key column".into(),
        ));
    }
    let md = Md::new(schema, lhs, rhs);
    let mut span = exec.span("dedup.cluster");
    let outcome = dedup::cluster_bounded(r, std::slice::from_ref(&md), exec);
    let clustering = outcome.result;
    span.attr("clusters", clustering.n_clusters as u64);
    drop(span);
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (row, &rep) in clustering.cluster.iter().enumerate() {
        groups.entry(rep).or_default().push(row);
    }
    let dup_groups: Vec<&Vec<usize>> = groups.values().filter(|g| g.len() > 1).collect();
    let mut buf = String::new();
    line!(
        buf,
        "== dedup on ({}) — {} rows → {} cluster(s), {} duplicate group(s){} ==",
        keys.join(", "),
        r.n_rows(),
        clustering.n_clusters,
        dup_groups.len(),
        if outcome.complete {
            ""
        } else {
            ", clustering truncated"
        }
    );
    for group in dup_groups.iter().take(20) {
        let rows: Vec<String> = group.iter().map(|row| format!("#{}", row + 1)).collect();
        line!(buf, "  rows {}", rows.join(" / "));
    }
    if dup_groups.len() > 20 {
        line!(buf, "  … and {} more group(s)", dup_groups.len() - 20);
    }
    Ok(TaskReport {
        text: buf,
        exhausted: outcome.exhausted,
        fds: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_core::engine::Budget;
    use deptree_relation::examples::hotels_r1;

    #[test]
    fn profile_reports_hotels() {
        let r = hotels_r1();
        let report = profile(&r, &ProfileOpts::default(), &Exec::unbounded());
        assert!(report.text.contains("rows × "));
        assert!(report.text.contains("exact FDs"));
        assert!(report.exhausted.is_none());
    }

    #[test]
    fn profile_is_deterministic_across_thread_counts() {
        let r = hotels_r1();
        let one = profile(
            &r,
            &ProfileOpts::default(),
            &Exec::unbounded().with_threads(1),
        );
        let eight = profile(
            &r,
            &ProfileOpts::default(),
            &Exec::unbounded().with_threads(8),
        );
        assert_eq!(one.text, eight.text);
    }

    #[test]
    fn detect_and_validate_agree_on_g3() {
        let r = hotels_r1();
        let d = detect(&r, "address -> region").unwrap();
        let v = validate(&r, "address -> region").unwrap();
        assert!(d.text.contains("g3 = 0.2500"), "{}", d.text);
        assert!(v.text.contains("g3 = 0.2500"), "{}", v.text);
        assert!(v.text.contains("holds = false"));
    }

    #[test]
    fn bad_rule_is_a_parse_error() {
        let r = hotels_r1();
        assert!(matches!(
            detect(&r, "no_such -> col"),
            Err(DeptreeError::Parse(_))
        ));
    }

    #[test]
    fn dedup_finds_exact_duplicates() {
        let r = hotels_r1();
        // Cluster on address: the two West Lake Rd. tuples merge.
        let report = dedup(&r, &["address".into()], &Exec::unbounded()).unwrap();
        assert!(report.text.contains("duplicate group"), "{}", report.text);
    }

    #[test]
    fn dedup_rejects_unknown_and_empty_keys() {
        let r = hotels_r1();
        assert!(dedup(&r, &[], &Exec::unbounded()).is_err());
        assert!(dedup(&r, &["nope".into()], &Exec::unbounded()).is_err());
    }

    #[test]
    fn profile_under_node_budget_reports_exhaustion() {
        let r = hotels_r1();
        let exec = Exec::new(Budget::new().with_max_nodes(1));
        let report = profile(&r, &ProfileOpts::default(), &exec);
        assert_eq!(report.exhausted, Some(BudgetKind::Nodes));
        assert!(report.text.contains("search truncated"));
    }
}
