//! Graceful drain: the controlled path from "serving" to "exited 0".
//!
//! Drain is a two-phase protocol driven by [`run_drain`]:
//!
//! 1. **Soft phase** — [`DrainState::begin`] flips the readiness probe
//!    (`/readyz` → 503) and makes the router refuse *new* task work with
//!    `draining`, while in-flight requests keep running. The accept loop
//!    stays up so health checks and already-queued clients still get
//!    answers.
//! 2. **Hard phase** — after the grace period, any work still in flight
//!    is cancelled through the shared [`CancelToken`]; thanks to the
//!    anytime contract each request winds down promptly and responds with
//!    its sound partial (`partial: true`, `exhausted: "cancelled"`).
//!
//! When the last in-flight request finishes, [`DrainState::finish`] lets
//! the accept loop exit, the worker pool drains its queue and joins, and
//! the process can exit 0.

use deptree_core::engine::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared lifecycle flags for one server instance.
#[derive(Debug, Default)]
pub struct DrainState {
    draining: AtomicBool,
    finished: AtomicBool,
    inflight: AtomicUsize,
    cancel: CancelToken,
}

/// Decrements the in-flight counter on drop; returned by
/// [`DrainState::track`] so request accounting survives panics.
pub struct InflightGuard<'a> {
    state: &'a DrainState,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl DrainState {
    /// A fresh, serving state.
    pub fn new() -> Arc<DrainState> {
        Arc::new(DrainState::default())
    }

    /// Has drain been requested (soft phase entered)?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Has drain completed (accept loop may exit)?
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Enter the soft phase. Idempotent.
    pub fn begin(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Mark drain complete; the accept loop exits on its next poll.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// The token every request `Exec` observes; cancelled in the hard
    /// phase.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Register one in-flight request; drop the guard when it completes.
    pub fn track(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { state: self }
    }

    /// Requests currently executing.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// Poll interval for the drain coordinator.
const POLL: Duration = Duration::from_millis(5);

/// Hard upper bound on the post-cancel wait. Cancelled requests wind down
/// in milliseconds under the anytime contract; this cap only guards
/// against a wedged socket write (itself bounded by the write timeout).
const HARD_CAP: Duration = Duration::from_secs(30);

/// Run the drain protocol to completion (blocking). `grace` is how long
/// in-flight work may keep running before the hard cancel.
pub fn run_drain(state: &DrainState, grace: Duration) {
    crate::telemetry::serve_metrics().drains.inc();
    state.begin();
    let soft_deadline = Instant::now() + grace;
    while state.inflight() > 0 && Instant::now() < soft_deadline {
        std::thread::sleep(POLL);
    }
    if state.inflight() > 0 {
        crate::telemetry::serve_metrics().drain_cancels.inc();
        state.cancel_token().cancel();
    }
    let hard_deadline = Instant::now() + HARD_CAP;
    while state.inflight() > 0 && Instant::now() < hard_deadline {
        std::thread::sleep(POLL);
    }
    state.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_without_load_finishes_immediately() {
        let state = DrainState::new();
        run_drain(&state, Duration::from_millis(200));
        assert!(state.is_draining());
        assert!(state.is_finished());
        assert!(!state.cancel_token().is_cancelled());
    }

    #[test]
    fn drain_under_load_cancels_after_grace() {
        let state = DrainState::new();
        let worker_state = Arc::clone(&state);
        let worker = std::thread::spawn(move || {
            let _guard = worker_state.track();
            // Simulate a long request that honors cancellation.
            while !worker_state.cancel_token().is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        while state.inflight() == 0 {
            std::thread::yield_now();
        }
        run_drain(&state, Duration::from_millis(20));
        assert!(state.is_finished());
        assert!(state.cancel_token().is_cancelled());
        worker.join().ok();
    }

    #[test]
    fn guard_releases_on_drop_even_mid_drain() {
        let state = DrainState::new();
        {
            let _g = state.track();
            assert_eq!(state.inflight(), 1);
        }
        assert_eq!(state.inflight(), 0);
    }
}
