//! Request routing: paths → tasks, budgets → `Exec`, errors → codes.
//!
//! The router is a pure function from a parsed [`Request`] and the shared
//! [`AppState`] to `(status, body)`. All state mutation is confined to
//! the in-flight counter (for drain) and the engine's own atomics, so the
//! router can be driven concurrently by every worker thread.
//!
//! Endpoints:
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET  | `/healthz`     | liveness (200 while the process serves) |
//! | GET  | `/readyz`      | readiness (503 once draining) |
//! | GET  | `/v1/datasets` | preloaded dataset catalogue |
//! | POST | `/v1/discover` | discovery profile (TANE/CORDS/OD/FASTDC) |
//! | POST | `/v1/validate` | does one rule hold (+ g3)? |
//! | POST | `/v1/detect`   | violation witnesses of one rule |
//! | POST | `/v1/repair`   | FD repair; returns repaired CSV |
//! | POST | `/v1/dedup`    | exact-key duplicate clustering |
//! | POST | `/v1/batch`    | N task requests under one shared budget |
//! | POST | `/admin/datasets`      | register a dataset from inline CSV |
//! | POST | `/admin/datasets/drop` | unregister a dataset |
//!
//! Task bodies share the envelope `{dataset, timeout_ms?, max_nodes?,
//! max_rows?}` plus per-task fields; task responses share `{task,
//! dataset, report, partial, exhausted?, stats}`. A request truncated by
//! its deadline or by drain cancellation still answers `200` with
//! `partial: true` — the sound-partial anytime contract carried over the
//! wire.
//!
//! Successful non-partial task replies are cached per dataset *version*
//! (a monotonic counter bumped on every `/admin` load or drop), so a
//! repeat read replays the exact bytes of the original reply and any
//! mutation invalidates by construction — see [`crate::cache`].

use crate::cache::ResponseCache;
use crate::drain::DrainState;
use crate::json::Json;
use crate::protocol::{budget_wire, code_for, error_body, ErrorCode, Request};
use crate::tasks;
use deptree_core::engine::{Budget, Exec};
use deptree_core::DeptreeError;
use deptree_relation::{parse_csv, to_csv, Relation, ValueType};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Separator inside cache keys; cannot occur in a dataset name that came
/// from a header-derived CSV column or a JSON string without escaping,
/// and even a crafted name cannot collide because the version and path
/// segments are server-controlled.
const KEY_SEP: char = '\u{1}';

/// Task endpoints whose successful replies may be cached. Admin,
/// catalogue and batch traffic never is: admin mutates, the catalogue is
/// cheap, and a batch's reply depends on a shared budget's timing.
const CACHEABLE: [&str; 5] = [
    "/v1/discover",
    "/v1/validate",
    "/v1/detect",
    "/v1/repair",
    "/v1/dedup",
];

/// Most requests one `/v1/batch` frame may carry.
const MAX_BATCH_ITEMS: usize = 256;

/// Per-server state shared by all workers. Everything is immutable
/// except the dataset map, which `/admin/datasets` may grow or shrink
/// at runtime (the gateway re-homes a dead worker's slice by POSTing
/// it to a survivor), and the drain/engine atomics.
pub struct AppState {
    /// Named datasets with their version: preloaded at boot, extended
    /// over `/admin`. `Arc` per relation so a task keeps its snapshot
    /// alive even if an admin drop races the request — reads never block
    /// on a parse. The version is globally monotonic (never reused, even
    /// across a drop/re-add of the same name), so it is safe to key
    /// cached responses by.
    datasets: RwLock<BTreeMap<String, (u64, Arc<Relation>)>>,
    /// Source of dataset versions; see `datasets`.
    next_version: AtomicU64,
    /// Cached rendered replies, keyed by dataset version + request.
    cache: ResponseCache,
    /// Lifecycle flags; the router refuses task work while draining.
    pub drain: Arc<DrainState>,
    /// Worker threads each request's `Exec` may use.
    pub threads: usize,
    /// Deadline applied when the request names none.
    pub default_deadline: Duration,
    /// Hard cap on any requested deadline.
    pub max_deadline: Duration,
}

impl AppState {
    /// Wrap a boot-time dataset map into shared state.
    /// `response_cache_bytes` caps the response cache (0 disables it).
    pub fn new(
        datasets: BTreeMap<String, Relation>,
        drain: Arc<DrainState>,
        threads: usize,
        default_deadline: Duration,
        max_deadline: Duration,
        response_cache_bytes: usize,
    ) -> Self {
        let mut version = 0u64;
        AppState {
            datasets: RwLock::new(
                datasets
                    .into_iter()
                    .map(|(k, v)| {
                        version += 1;
                        (k, (version, Arc::new(v)))
                    })
                    .collect(),
            ),
            next_version: AtomicU64::new(version + 1),
            cache: ResponseCache::new(response_cache_bytes),
            drain,
            threads,
            default_deadline,
            max_deadline,
        }
    }

    /// Fetch one dataset's relation (a cheap `Arc` clone).
    pub fn dataset(&self, name: &str) -> Option<Arc<Relation>> {
        self.dataset_versioned(name).map(|(_, r)| r)
    }

    /// Fetch one dataset's `(version, relation)` pair.
    pub fn dataset_versioned(&self, name: &str) -> Option<(u64, Arc<Relation>)> {
        self.datasets
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Register (or replace) a dataset at runtime under a fresh version,
    /// invalidating any cached replies for the name. Returns `true` when
    /// a same-named dataset was replaced.
    pub fn insert_dataset(&self, name: String, relation: Relation) -> bool {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let prefix = format!("{name}{KEY_SEP}");
        let replaced = self
            .datasets
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name, (version, Arc::new(relation)))
            .is_some();
        self.cache.purge_prefix(&prefix);
        replaced
    }

    /// Drop a dataset and its cached replies. Returns `true` when it
    /// existed. In-flight tasks holding its `Arc` finish unharmed.
    pub fn remove_dataset(&self, name: &str) -> bool {
        let existed = self
            .datasets
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(name)
            .is_some();
        self.cache.purge_prefix(&format!("{name}{KEY_SEP}"));
        existed
    }

    /// `(name, rows, columns)` for every registered dataset, in name
    /// order — the `/v1/datasets` catalogue.
    pub fn dataset_summaries(&self) -> Vec<(String, usize, usize)> {
        self.datasets
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, (_, r))| (name.clone(), r.n_rows(), r.n_attrs()))
            .collect()
    }

    /// The response-cache key for this request, or `None` when the
    /// request is not cacheable (wrong route, unparseable body, unknown
    /// dataset, cache disabled). The key embeds the dataset's current
    /// version and the *canonical* body rendering, so key-order or
    /// whitespace differences in client JSON still hit the same entry.
    pub fn cache_key(&self, req: &Request) -> Option<String> {
        if !self.cache.enabled() || req.method != "POST" {
            return None;
        }
        if !CACHEABLE.contains(&req.path.as_str()) {
            return None;
        }
        let body = std::str::from_utf8(&req.body).ok()?;
        let body = Json::parse(body).ok()?;
        let name = body.str_field("dataset")?;
        let (version, _) = self.dataset_versioned(name)?;
        Some(format!(
            "{name}{KEY_SEP}{version}{KEY_SEP}{}{KEY_SEP}{}",
            req.path,
            canonical_render(&body)
        ))
    }

    /// Replay a cached reply for `key`, if present.
    pub fn cache_lookup(&self, key: &str) -> Option<Vec<u8>> {
        self.cache.get(key)
    }

    /// Store a reply under `key` if it qualifies (200, `partial: false`)
    /// and return the exact bytes stored, so the caller serves those and
    /// a later hit is a byte-identical replay.
    pub fn cache_store(&self, key: String, status: u16, body: &Json) -> Option<Vec<u8>> {
        if status != 200 || body.bool_field("partial") != Some(false) {
            return None;
        }
        let rendered = body.render().into_bytes();
        self.cache.put(key, rendered.clone());
        Some(rendered)
    }

    /// Response-cache resident bytes (test and debugging hook).
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }
}

/// Dispatch one request. Infallible: every failure becomes a structured
/// error response.
pub fn handle(app: &AppState, req: &Request) -> (u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            Json::obj()
                .set("status", "ok")
                .set("draining", app.drain.is_draining())
                .set("inflight", app.drain.inflight() as u64),
        ),
        ("GET", "/readyz") => {
            if app.drain.is_draining() {
                (
                    503,
                    Json::obj()
                        .set("ready", false)
                        .set("error", draining_error()),
                )
            } else {
                (200, Json::obj().set("ready", true))
            }
        }
        ("GET", "/v1/datasets") => {
            let list: Vec<Json> = app
                .dataset_summaries()
                .into_iter()
                .map(|(name, rows, columns)| {
                    Json::obj()
                        .set("name", name.as_str())
                        .set("rows", rows)
                        .set("columns", columns)
                })
                .collect();
            (200, Json::obj().set("datasets", list))
        }
        ("POST", "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup") => {
            task(app, req)
        }
        ("POST", "/v1/batch") => batch(app, req),
        ("POST", "/admin/datasets") => admin_load(app, req),
        ("POST", "/admin/datasets/drop") => admin_drop(app, req),
        (
            _,
            "/healthz" | "/readyz" | "/v1/datasets" | "/admin/datasets" | "/admin/datasets/drop",
        ) => err(
            ErrorCode::MethodNotAllowed,
            &format!("{} not allowed here", req.method),
        ),
        (
            "GET" | "HEAD",
            "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup"
            | "/v1/batch",
        ) => err(ErrorCode::MethodNotAllowed, "use POST with a JSON body"),
        _ => err(ErrorCode::NotFound, &format!("no route for {}", req.path)),
    }
}

/// Render `body` with object keys sorted recursively. The codec itself
/// preserves insertion order (responses must render deterministically in
/// the order they were built), so cache keys sort a copy: two requests
/// differing only in field order or whitespace share one entry.
fn canonical_render(body: &Json) -> String {
    fn sorted(v: &Json) -> Json {
        match v {
            Json::Obj(fields) => {
                let mut fields: Vec<(String, Json)> =
                    fields.iter().map(|(k, v)| (k.clone(), sorted(v))).collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(fields)
            }
            Json::Arr(items) => Json::Arr(items.iter().map(sorted).collect()),
            other => other.clone(),
        }
    }
    sorted(body).render()
}

fn err(code: ErrorCode, message: &str) -> (u16, Json) {
    (code.http_status(), error_body(code, message))
}

fn err_for(e: &DeptreeError) -> (u16, Json) {
    let code = code_for(e);
    (code.http_status(), error_body(code, &e.to_string()))
}

fn draining_error() -> Json {
    Json::obj()
        .set("code", ErrorCode::Draining.wire())
        .set("message", "server is draining; retry elsewhere")
}

/// Execute one task endpoint under admission + drain + budget rules.
fn task(app: &AppState, req: &Request) -> (u16, Json) {
    // Count the request as in flight *before* the drain check so the
    // drain coordinator can never miss work that raced past the flag.
    let _inflight = app.drain.track();
    if app.drain.is_draining() {
        return err(ErrorCode::Draining, "server is draining");
    }

    let body = match parse_body(req) {
        Ok(v) => v,
        Err(msg) => return err(ErrorCode::Parse, &msg),
    };
    let exec = match exec_for(app, &body) {
        Ok(exec) => exec,
        Err(msg) => return err(ErrorCode::InvalidConfig, &msg),
    };
    run_task(app, req.path.trim_start_matches("/v1/"), &body, &exec)
}

fn parse_body(req: &Request) -> Result<Json, String> {
    std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
}

/// `POST /v1/batch` — execute up to [`MAX_BATCH_ITEMS`] task requests
/// from one frame under one shared budget: `{requests: [{task, dataset,
/// …}, …], timeout_ms?, max_nodes?, max_rows?}`. The envelope's budget
/// fields build a single `Exec` that every item draws from; per-item
/// budget fields are ignored. Items run in order; once the shared budget
/// is exhausted, remaining items answer `budget_exhausted` without
/// running and the envelope reports `partial: true`. Batch replies are
/// never cached — their contents depend on where the shared budget ran
/// out, which is timing, not data.
fn batch(app: &AppState, req: &Request) -> (u16, Json) {
    let _inflight = app.drain.track();
    if app.drain.is_draining() {
        return err(ErrorCode::Draining, "server is draining");
    }
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(msg) => return err(ErrorCode::Parse, &msg),
    };
    let Some(items) = body.get("requests").and_then(Json::as_arr) else {
        return err(
            ErrorCode::BadRequest,
            "missing `requests` field (want an array of task requests)",
        );
    };
    if items.len() > MAX_BATCH_ITEMS {
        return err(
            ErrorCode::TooLarge,
            &format!(
                "batch holds {} requests; the cap is {MAX_BATCH_ITEMS}",
                items.len()
            ),
        );
    }
    let exec = match exec_for(app, &body) {
        Ok(exec) => exec,
        Err(msg) => return err(ErrorCode::InvalidConfig, &msg),
    };
    let mut responses: Vec<Json> = Vec::with_capacity(items.len());
    let mut starved = 0usize;
    for item in items {
        if exec.interrupted() {
            // The shared budget ran dry: answer the remaining items
            // without running them, so the caller can tell "executed
            // and truncated" apart from "never started".
            starved += 1;
            responses.push(Json::obj().set("status", 503u64).set(
                "body",
                error_body(
                    ErrorCode::BudgetExhausted,
                    "shared batch budget exhausted before this request",
                ),
            ));
            continue;
        }
        let (status, reply) = match item.str_field("task") {
            Some(task_name) => run_task(app, task_name, item, &exec),
            None => err(ErrorCode::BadRequest, "missing `task` field"),
        };
        responses.push(
            Json::obj()
                .set("status", u64::from(status))
                .set("body", reply),
        );
    }
    (
        200,
        Json::obj()
            .set("partial", starved > 0)
            .set("executed", (responses.len() - starved) as u64)
            .set("responses", responses),
    )
}

/// Run one named task against `app` with an already-built execution
/// context. Shared by the single-request path (`task`, which builds a
/// per-request `Exec`) and `/v1/batch` (which shares one `Exec` across
/// every item).
fn run_task(app: &AppState, task_name: &str, body: &Json, exec: &Exec) -> (u16, Json) {
    let Some(name) = body.str_field("dataset") else {
        return err(ErrorCode::BadRequest, "missing `dataset` field");
    };
    let Some(relation) = app.dataset(name) else {
        return err(ErrorCode::NotFound, &format!("unknown dataset `{name}`"));
    };
    let relation = relation.as_ref();

    let rendered = match task_name {
        "discover" => {
            let opts = tasks::ProfileOpts {
                max_lhs: body.u64_field("max_lhs").unwrap_or(2) as usize,
                error: body.f64_field("error").unwrap_or(0.0),
            };
            Ok((tasks::profile(relation, &opts, exec), None))
        }
        "validate" => rule_of(body)
            .and_then(|rule| tasks::validate(relation, rule))
            .map(|r| (r, None)),
        "detect" => rule_of(body)
            .and_then(|rule| tasks::detect(relation, rule))
            .map(|r| (r, None)),
        "repair" => rule_of(body)
            .and_then(|rule| tasks::repair(relation, rule, exec))
            .map(|(r, repaired)| (r, Some(to_csv(&repaired)))),
        "dedup" => {
            let keys: Vec<String> = body
                .get("keys")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default();
            tasks::dedup(relation, &keys, exec).map(|r| (r, None))
        }
        _ => Err(DeptreeError::Unsupported(format!(
            "task `{task_name}` is not implemented"
        ))),
    };

    // Lazy columnar views (sorted numeric runs, bit-packed codes, value
    // indexes) materialize inside the task; re-read the footprint so the
    // gauge tracks resident bytes, not just the post-load dictionary size.
    crate::telemetry::dataset_bytes(name).set(relation.approx_bytes() as i64);

    match rendered {
        Err(e) => err_for(&e),
        Ok((report, csv)) => {
            let stats = exec.stats();
            let mut resp = Json::obj()
                .set("task", task_name)
                .set("dataset", name)
                .set("report", report.text)
                .set("partial", report.exhausted.is_some());
            if let Some(kind) = report.exhausted {
                resp = resp.set("exhausted", budget_wire(kind));
            }
            if let Some(csv) = csv {
                resp = resp.set("csv", csv);
            }
            if task_name == "discover" {
                // Full machine-readable FD list (the human `report`
                // truncates at 25) — what the gateway merger consumes.
                let fds: Vec<Json> = report.fds.iter().map(|s| Json::from(s.as_str())).collect();
                resp = resp.set("fds", fds);
            }
            resp = resp.set(
                "stats",
                Json::obj()
                    .set("nodes", stats.nodes_visited)
                    .set("rows", stats.rows_processed)
                    .set("elapsed_ms", stats.elapsed.as_millis() as u64),
            );
            (200, resp)
        }
    }
}

/// Parse the admin `types` spec (`"c,t,n"` — one letter per column).
fn admin_types(spec: &str) -> Result<Vec<ValueType>, String> {
    spec.split(',')
        .map(|t| match t.trim() {
            "c" => Ok(ValueType::Categorical),
            "t" => Ok(ValueType::Text),
            "n" => Ok(ValueType::Numeric),
            other => Err(format!("bad column type `{other}` (want c, t or n)")),
        })
        .collect()
}

/// `POST /admin/datasets` — register a dataset at runtime from inline
/// CSV: `{name, csv, types?}`. This is the re-homing primitive: the
/// gateway ships a dead worker's row slice here so a survivor can serve
/// it without a restart. Strict parse (no lossy salvage): the payload
/// comes from a process that already parsed it once, so any defect is a
/// bug worth surfacing, not data to repair.
fn admin_load(app: &AppState, req: &Request) -> (u16, Json) {
    // Track as in-flight so a drain never cuts a half-applied load.
    let _inflight = app.drain.track();
    if app.drain.is_draining() {
        return err(ErrorCode::Draining, "server is draining");
    }
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return err(ErrorCode::Parse, &msg),
    };
    let Some(name) = body.str_field("name") else {
        return err(ErrorCode::BadRequest, "missing `name` field");
    };
    let Some(csv) = body.str_field("csv") else {
        return err(ErrorCode::BadRequest, "missing `csv` field");
    };
    let types = match body.str_field("types") {
        Some(spec) => match admin_types(spec) {
            Ok(types) => Some(types),
            Err(msg) => return err(ErrorCode::InvalidConfig, &msg),
        },
        None => None,
    };
    let types = match types {
        Some(t) => t,
        None => {
            let cols = csv.lines().next().map_or(0, |h| h.split(',').count());
            vec![ValueType::Categorical; cols]
        }
    };
    let relation = match parse_csv(csv, &types) {
        Ok(r) => r,
        Err(e) => return err(ErrorCode::Parse, &e.to_string()),
    };
    let (rows, columns) = (relation.n_rows(), relation.n_attrs());
    crate::telemetry::dataset_bytes(name).set(relation.approx_bytes() as i64);
    let replaced = app.insert_dataset(name.to_owned(), relation);
    (
        200,
        Json::obj()
            .set("loaded", name)
            .set("rows", rows)
            .set("columns", columns)
            .set("replaced", replaced),
    )
}

/// `POST /admin/datasets/drop` — unregister a dataset: `{name}`. The
/// re-absorb half of re-homing: once the primary is healthy again the
/// gateway drops the survivor's temporary copy. Dropping a name that
/// is not registered is not an error (`existed: false`) — re-absorb is
/// idempotent.
fn admin_drop(app: &AppState, req: &Request) -> (u16, Json) {
    let _inflight = app.drain.track();
    if app.drain.is_draining() {
        return err(ErrorCode::Draining, "server is draining");
    }
    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return err(ErrorCode::Parse, &msg),
    };
    let Some(name) = body.str_field("name") else {
        return err(ErrorCode::BadRequest, "missing `name` field");
    };
    let existed = app.remove_dataset(name);
    if existed {
        crate::telemetry::dataset_bytes(name).set(0);
    }
    (
        200,
        Json::obj().set("dropped", name).set("existed", existed),
    )
}

fn rule_of(body: &Json) -> Result<&str, DeptreeError> {
    body.str_field("rule")
        .ok_or_else(|| DeptreeError::InvalidConfig("missing `rule` field".into()))
}

/// Build the per-request execution context: requested deadline clamped to
/// the server cap, optional node/row budgets, the drain cancel token, and
/// the server's thread count.
fn exec_for(app: &AppState, body: &Json) -> Result<Exec, String> {
    let deadline = match body.get("timeout_ms") {
        None => app.default_deadline,
        Some(v) => match v.as_u64() {
            Some(ms) => Duration::from_millis(ms).min(app.max_deadline),
            None => return Err("bad `timeout_ms` (want a non-negative integer)".into()),
        },
    };
    let mut budget = Budget::new().with_deadline(deadline);
    if let Some(v) = body.get("max_nodes") {
        match v.as_u64() {
            Some(n) => budget = budget.with_max_nodes(n),
            None => return Err("bad `max_nodes` (want a non-negative integer)".into()),
        }
    }
    if let Some(v) = body.get("max_rows") {
        match v.as_u64() {
            Some(n) => budget = budget.with_max_rows(n),
            None => return Err("bad `max_rows` (want a non-negative integer)".into()),
        }
    }
    Ok(Exec::with_cancel(budget, app.drain.cancel_token().clone()).with_threads(app.threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r1;

    fn app() -> AppState {
        app_with_cache(0)
    }

    fn app_with_cache(cache_bytes: usize) -> AppState {
        let mut datasets = BTreeMap::new();
        datasets.insert("hotels".to_owned(), hotels_r1());
        AppState::new(
            datasets,
            DrainState::new(),
            1,
            Duration::from_secs(10),
            Duration::from_secs(30),
            cache_bytes,
        )
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn health_and_ready_flip_on_drain() {
        let app = app();
        assert_eq!(handle(&app, &get("/healthz")).0, 200);
        assert_eq!(handle(&app, &get("/readyz")).0, 200);
        app.drain.begin();
        assert_eq!(handle(&app, &get("/healthz")).0, 200);
        let (status, body) = handle(&app, &get("/readyz"));
        assert_eq!(status, 503);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("draining")
        );
        // Task traffic is refused while draining.
        let (status, _) = handle(&app, &post("/v1/detect", r#"{"dataset":"hotels"}"#));
        assert_eq!(status, 503);
    }

    #[test]
    fn detect_round_trip() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/detect",
                r#"{"dataset":"hotels","rule":"address -> region"}"#,
            ),
        );
        assert_eq!(status, 200);
        let report = body.str_field("report").unwrap();
        assert!(report.contains("2 violation witness(es)"), "{report}");
        assert_eq!(body.bool_field("partial"), Some(false));
    }

    #[test]
    fn unknown_dataset_is_404() {
        let app = app();
        let (status, body) = handle(&app, &post("/v1/detect", r#"{"dataset":"nope"}"#));
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("not_found")
        );
    }

    #[test]
    fn bad_json_is_a_parse_error() {
        let app = app();
        let (status, body) = handle(&app, &post("/v1/discover", "{not json"));
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("parse")
        );
    }

    #[test]
    fn wrong_method_and_unknown_route() {
        let app = app();
        assert_eq!(handle(&app, &get("/v1/discover")).0, 405);
        assert_eq!(handle(&app, &post("/healthz", "")).0, 405);
        assert_eq!(handle(&app, &get("/nope")).0, 404);
    }

    #[test]
    fn node_budget_yields_partial_with_cause() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post("/v1/discover", r#"{"dataset":"hotels","max_nodes":1}"#),
        );
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("partial"), Some(true));
        assert_eq!(body.str_field("exhausted"), Some("nodes"));
    }

    #[test]
    fn repair_ships_csv() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/repair",
                r#"{"dataset":"hotels","rule":"address -> region"}"#,
            ),
        );
        assert_eq!(status, 200);
        let csv = body.str_field("csv").unwrap();
        assert!(csv.contains("name"), "{csv}");
        let report = body.str_field("report").unwrap();
        assert!(report.contains("rule now holds: true"), "{report}");
    }

    #[test]
    fn bad_budget_fields_are_invalid_config() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post("/v1/discover", r#"{"dataset":"hotels","timeout_ms":-5}"#),
        );
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("invalid_config")
        );
    }

    #[test]
    fn admin_load_registers_a_dataset_for_immediate_queries() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/admin/datasets",
                r#"{"name":"mini#1","csv":"a,b\n1,x\n1,x\n2,y\n","types":"c,c"}"#,
            ),
        );
        assert_eq!(status, 200, "{body:?}");
        assert_eq!(body.str_field("loaded"), Some("mini#1"));
        assert_eq!(body.u64_field("rows"), Some(3));
        assert_eq!(body.bool_field("replaced"), Some(false));

        // The slice is queryable under its registered name right away.
        let (status, body) = handle(
            &app,
            &post("/v1/validate", r#"{"dataset":"mini#1","rule":"a -> b"}"#),
        );
        assert_eq!(status, 200);
        assert!(body.str_field("report").unwrap().contains("holds = true"));

        // Re-posting the same name replaces, not duplicates.
        let (status, body) = handle(
            &app,
            &post(
                "/admin/datasets",
                r#"{"name":"mini#1","csv":"a,b\n1,x\n","types":"c,c"}"#,
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("replaced"), Some(true));
    }

    #[test]
    fn admin_drop_is_idempotent_and_unregisters() {
        let app = app();
        let (status, _) = handle(
            &app,
            &post("/admin/datasets", r#"{"name":"tmp","csv":"a\n1\n"}"#),
        );
        assert_eq!(status, 200);
        let (status, body) = handle(&app, &post("/admin/datasets/drop", r#"{"name":"tmp"}"#));
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("existed"), Some(true));
        // Second drop: still 200, just `existed: false`.
        let (status, body) = handle(&app, &post("/admin/datasets/drop", r#"{"name":"tmp"}"#));
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("existed"), Some(false));
        // And the dataset is gone for task traffic.
        let (status, _) = handle(
            &app,
            &post("/v1/detect", r#"{"dataset":"tmp","rule":"a -> a"}"#),
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn admin_is_refused_while_draining_and_on_bad_input() {
        let app = app();
        let (status, body) = handle(&app, &post("/admin/datasets", r#"{"name":"x"}"#));
        assert_eq!(status, 400);
        assert!(body.get("error").is_some());
        let (status, _) = handle(
            &app,
            &post(
                "/admin/datasets",
                r#"{"name":"x","csv":"a\n1\n","types":"z"}"#,
            ),
        );
        assert_eq!(status, 400);
        assert_eq!(handle(&app, &get("/admin/datasets")).0, 405);
        app.drain.begin();
        let (status, _) = handle(
            &app,
            &post("/admin/datasets", r#"{"name":"x","csv":"a\n1\n"}"#),
        );
        assert_eq!(status, 503);
    }

    #[test]
    fn batch_runs_items_in_order_under_one_envelope() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/batch",
                r#"{"requests":[
                    {"task":"validate","dataset":"hotels","rule":"address -> region"},
                    {"task":"detect","dataset":"hotels","rule":"address -> region"},
                    {"task":"nope","dataset":"hotels"},
                    {"dataset":"hotels"}
                ]}"#,
            ),
        );
        assert_eq!(status, 200, "{body:?}");
        assert_eq!(body.bool_field("partial"), Some(false));
        let responses = body.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].u64_field("status"), Some(200));
        assert_eq!(
            responses[0].get("body").and_then(|b| b.str_field("task")),
            Some("validate")
        );
        assert_eq!(responses[1].u64_field("status"), Some(200));
        assert!(responses[1]
            .get("body")
            .and_then(|b| b.str_field("report"))
            .unwrap()
            .contains("violation witness(es)"));
        // Unknown task name and missing task field each fail their item
        // without failing the envelope.
        assert_eq!(responses[2].u64_field("status"), Some(400));
        assert_eq!(responses[3].u64_field("status"), Some(400));
    }

    #[test]
    fn batch_shares_one_budget_and_reports_starved_items() {
        let app = app();
        // A zero-ms shared deadline: the first interrupted() check
        // already fails, so every item is starved and none executes.
        let (status, body) = handle(
            &app,
            &post(
                "/v1/batch",
                r#"{"timeout_ms":0,"requests":[
                    {"task":"validate","dataset":"hotels","rule":"address -> region"},
                    {"task":"detect","dataset":"hotels","rule":"address -> region"}
                ]}"#,
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("partial"), Some(true));
        assert_eq!(body.u64_field("executed"), Some(0));
        let responses = body.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(responses.len(), 2);
        for resp in responses {
            assert_eq!(resp.u64_field("status"), Some(503));
            assert_eq!(
                resp.get("body")
                    .and_then(|b| b.get("error"))
                    .and_then(|e| e.str_field("code")),
                Some("budget_exhausted")
            );
        }
    }

    #[test]
    fn batch_rejects_missing_requests_and_oversized_batches() {
        let app = app();
        let (status, _) = handle(&app, &post("/v1/batch", r#"{"dataset":"hotels"}"#));
        assert_eq!(status, 400);
        let items: Vec<String> = (0..257)
            .map(|_| r#"{"task":"validate","dataset":"hotels","rule":"a -> b"}"#.to_owned())
            .collect();
        let big = format!(r#"{{"requests":[{}]}}"#, items.join(","));
        let (status, body) = handle(&app, &post("/v1/batch", &big));
        assert_eq!(status, 413, "{body:?}");
        assert_eq!(handle(&app, &get("/v1/batch")).0, 405);
    }

    #[test]
    fn cache_replays_identical_bytes_and_counts_a_hit() {
        let app = app_with_cache(1 << 20);
        let req = post(
            "/v1/detect",
            r#"{"dataset":"hotels","rule":"address -> region"}"#,
        );
        let key = app.cache_key(&req).expect("cacheable request");
        assert!(app.cache_lookup(&key).is_none());
        let (status, body) = handle(&app, &req);
        let stored = app.cache_store(key.clone(), status, &body).unwrap();
        assert_eq!(stored, body.render().into_bytes());
        assert_eq!(
            app.cache_lookup(&key),
            Some(stored),
            "hit replays the stored bytes"
        );
    }

    #[test]
    fn cache_key_is_canonical_across_field_order_and_whitespace() {
        let app = app_with_cache(1 << 20);
        let a = post(
            "/v1/detect",
            r#"{"dataset":"hotels","rule":"address -> region"}"#,
        );
        let b = post(
            "/v1/detect",
            r#"{ "rule": "address -> region", "dataset": "hotels" }"#,
        );
        let (ka, kb) = (app.cache_key(&a), app.cache_key(&b));
        assert!(ka.is_some());
        assert_eq!(ka, kb, "canonicalized bodies share one cache entry");
        // Different rule, different entry.
        let c = post(
            "/v1/detect",
            r#"{"dataset":"hotels","rule":"region -> address"}"#,
        );
        assert_ne!(app.cache_key(&c), ka);
    }

    #[test]
    fn cache_keys_are_version_scoped_and_mutations_invalidate() {
        let app = app_with_cache(1 << 20);
        let req = post("/v1/validate", r#"{"dataset":"mini","rule":"a -> b"}"#);
        assert!(
            app.cache_key(&req).is_none(),
            "unknown dataset is not cacheable"
        );
        let (status, _) = handle(
            &app,
            &post(
                "/admin/datasets",
                r#"{"name":"mini","csv":"a,b\n1,x\n","types":"c,c"}"#,
            ),
        );
        assert_eq!(status, 200);
        let key_v1 = app.cache_key(&req).unwrap();
        let (status, body) = handle(&app, &req);
        app.cache_store(key_v1.clone(), status, &body);
        assert!(app.cache_lookup(&key_v1).is_some());
        // Replacing the dataset bumps the version: the old entry is both
        // purged and unreachable, and the new key differs.
        let (status, _) = handle(
            &app,
            &post(
                "/admin/datasets",
                r#"{"name":"mini","csv":"a,b\n1,x\n2,y\n","types":"c,c"}"#,
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(app.cache_bytes(), 0, "mutation purged the entry");
        let key_v2 = app.cache_key(&req).unwrap();
        assert_ne!(key_v1, key_v2);
        assert!(app.cache_lookup(&key_v2).is_none());
        // Dropping the dataset makes the request uncacheable again.
        let (status, _) = handle(&app, &post("/admin/datasets/drop", r#"{"name":"mini"}"#));
        assert_eq!(status, 200);
        assert!(app.cache_key(&req).is_none());
    }

    #[test]
    fn partial_and_error_replies_are_never_cached() {
        let app = app_with_cache(1 << 20);
        // Partial: a node budget of 1 truncates discovery.
        let req = post("/v1/discover", r#"{"dataset":"hotels","max_nodes":1}"#);
        let key = app.cache_key(&req).unwrap();
        let (status, body) = handle(&app, &req);
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("partial"), Some(true));
        assert!(app.cache_store(key.clone(), status, &body).is_none());
        assert!(app.cache_lookup(&key).is_none());
        // Error: a bad rule fails validation.
        let req = post("/v1/validate", r#"{"dataset":"hotels","rule":"@@"}"#);
        let key = app.cache_key(&req).unwrap();
        let (status, body) = handle(&app, &req);
        assert_ne!(status, 200);
        assert!(app.cache_store(key, status, &body).is_none());
    }

    #[test]
    fn budget_fields_beyond_f64_precision_are_invalid_config() {
        // 2^53 + 1 is not representable as f64; accepting it would
        // silently run with a different budget than the client asked for.
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/discover",
                r#"{"dataset":"hotels","max_nodes":9007199254740993}"#,
            ),
        );
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("invalid_config")
        );
    }
}
