//! Request routing: paths → tasks, budgets → `Exec`, errors → codes.
//!
//! The router is a pure function from a parsed [`Request`] and the shared
//! [`AppState`] to `(status, body)`. All state mutation is confined to
//! the in-flight counter (for drain) and the engine's own atomics, so the
//! router can be driven concurrently by every worker thread.
//!
//! Endpoints:
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | GET  | `/healthz`     | liveness (200 while the process serves) |
//! | GET  | `/readyz`      | readiness (503 once draining) |
//! | GET  | `/v1/datasets` | preloaded dataset catalogue |
//! | POST | `/v1/discover` | discovery profile (TANE/CORDS/OD/FASTDC) |
//! | POST | `/v1/validate` | does one rule hold (+ g3)? |
//! | POST | `/v1/detect`   | violation witnesses of one rule |
//! | POST | `/v1/repair`   | FD repair; returns repaired CSV |
//! | POST | `/v1/dedup`    | exact-key duplicate clustering |
//!
//! Task bodies share the envelope `{dataset, timeout_ms?, max_nodes?,
//! max_rows?}` plus per-task fields; task responses share `{task,
//! dataset, report, partial, exhausted?, stats}`. A request truncated by
//! its deadline or by drain cancellation still answers `200` with
//! `partial: true` — the sound-partial anytime contract carried over the
//! wire.

use crate::drain::DrainState;
use crate::json::Json;
use crate::protocol::{budget_wire, code_for, error_body, ErrorCode, Request};
use crate::tasks;
use deptree_core::engine::{Budget, Exec};
use deptree_core::DeptreeError;
use deptree_relation::{to_csv, Relation};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Immutable per-server state shared by all workers.
pub struct AppState {
    /// Named, preloaded datasets.
    pub datasets: BTreeMap<String, Relation>,
    /// Lifecycle flags; the router refuses task work while draining.
    pub drain: Arc<DrainState>,
    /// Worker threads each request's `Exec` may use.
    pub threads: usize,
    /// Deadline applied when the request names none.
    pub default_deadline: Duration,
    /// Hard cap on any requested deadline.
    pub max_deadline: Duration,
}

/// Dispatch one request. Infallible: every failure becomes a structured
/// error response.
pub fn handle(app: &AppState, req: &Request) -> (u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            Json::obj()
                .set("status", "ok")
                .set("draining", app.drain.is_draining())
                .set("inflight", app.drain.inflight() as u64),
        ),
        ("GET", "/readyz") => {
            if app.drain.is_draining() {
                (
                    503,
                    Json::obj()
                        .set("ready", false)
                        .set("error", draining_error()),
                )
            } else {
                (200, Json::obj().set("ready", true))
            }
        }
        ("GET", "/v1/datasets") => {
            let list: Vec<Json> = app
                .datasets
                .iter()
                .map(|(name, r)| {
                    Json::obj()
                        .set("name", name.as_str())
                        .set("rows", r.n_rows())
                        .set("columns", r.n_attrs())
                })
                .collect();
            (200, Json::obj().set("datasets", list))
        }
        ("POST", "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup") => {
            task(app, req)
        }
        (_, "/healthz" | "/readyz" | "/v1/datasets") => err(
            ErrorCode::MethodNotAllowed,
            &format!("{} not allowed here", req.method),
        ),
        (
            "GET" | "HEAD",
            "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup",
        ) => err(ErrorCode::MethodNotAllowed, "use POST with a JSON body"),
        _ => err(ErrorCode::NotFound, &format!("no route for {}", req.path)),
    }
}

fn err(code: ErrorCode, message: &str) -> (u16, Json) {
    (code.http_status(), error_body(code, message))
}

fn err_for(e: &DeptreeError) -> (u16, Json) {
    let code = code_for(e);
    (code.http_status(), error_body(code, &e.to_string()))
}

fn draining_error() -> Json {
    Json::obj()
        .set("code", ErrorCode::Draining.wire())
        .set("message", "server is draining; retry elsewhere")
}

/// Execute one task endpoint under admission + drain + budget rules.
fn task(app: &AppState, req: &Request) -> (u16, Json) {
    // Count the request as in flight *before* the drain check so the
    // drain coordinator can never miss work that raced past the flag.
    let _inflight = app.drain.track();
    if app.drain.is_draining() {
        return err(ErrorCode::Draining, "server is draining");
    }

    let body = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(msg) => return err(ErrorCode::Parse, &msg),
    };
    let Some(name) = body.str_field("dataset") else {
        return err(ErrorCode::BadRequest, "missing `dataset` field");
    };
    let Some(relation) = app.datasets.get(name) else {
        return err(ErrorCode::NotFound, &format!("unknown dataset `{name}`"));
    };

    let exec = match exec_for(app, &body) {
        Ok(exec) => exec,
        Err(msg) => return err(ErrorCode::InvalidConfig, &msg),
    };

    let task_name = req.path.trim_start_matches("/v1/");
    let rendered = match task_name {
        "discover" => {
            let opts = tasks::ProfileOpts {
                max_lhs: body.u64_field("max_lhs").unwrap_or(2) as usize,
                error: body.f64_field("error").unwrap_or(0.0),
            };
            Ok((tasks::profile(relation, &opts, &exec), None))
        }
        "validate" => rule_of(&body)
            .and_then(|rule| tasks::validate(relation, rule))
            .map(|r| (r, None)),
        "detect" => rule_of(&body)
            .and_then(|rule| tasks::detect(relation, rule))
            .map(|r| (r, None)),
        "repair" => rule_of(&body)
            .and_then(|rule| tasks::repair(relation, rule, &exec))
            .map(|(r, repaired)| (r, Some(to_csv(&repaired)))),
        "dedup" => {
            let keys: Vec<String> = body
                .get("keys")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Json::as_str)
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default();
            tasks::dedup(relation, &keys, &exec).map(|r| (r, None))
        }
        _ => Err(DeptreeError::Unsupported(format!(
            "task `{task_name}` is not implemented"
        ))),
    };

    // Lazy columnar views (sorted numeric runs, bit-packed codes, value
    // indexes) materialize inside the task; re-read the footprint so the
    // gauge tracks resident bytes, not just the post-load dictionary size.
    crate::telemetry::dataset_bytes(name).set(relation.approx_bytes() as i64);

    match rendered {
        Err(e) => err_for(&e),
        Ok((report, csv)) => {
            let stats = exec.stats();
            let mut resp = Json::obj()
                .set("task", task_name)
                .set("dataset", name)
                .set("report", report.text)
                .set("partial", report.exhausted.is_some());
            if let Some(kind) = report.exhausted {
                resp = resp.set("exhausted", budget_wire(kind));
            }
            if let Some(csv) = csv {
                resp = resp.set("csv", csv);
            }
            if task_name == "discover" {
                // Full machine-readable FD list (the human `report`
                // truncates at 25) — what the gateway merger consumes.
                let fds: Vec<Json> = report.fds.iter().map(|s| Json::from(s.as_str())).collect();
                resp = resp.set("fds", fds);
            }
            resp = resp.set(
                "stats",
                Json::obj()
                    .set("nodes", stats.nodes_visited)
                    .set("rows", stats.rows_processed)
                    .set("elapsed_ms", stats.elapsed.as_millis() as u64),
            );
            (200, resp)
        }
    }
}

fn rule_of(body: &Json) -> Result<&str, DeptreeError> {
    body.str_field("rule")
        .ok_or_else(|| DeptreeError::InvalidConfig("missing `rule` field".into()))
}

/// Build the per-request execution context: requested deadline clamped to
/// the server cap, optional node/row budgets, the drain cancel token, and
/// the server's thread count.
fn exec_for(app: &AppState, body: &Json) -> Result<Exec, String> {
    let deadline = match body.get("timeout_ms") {
        None => app.default_deadline,
        Some(v) => match v.as_u64() {
            Some(ms) => Duration::from_millis(ms).min(app.max_deadline),
            None => return Err("bad `timeout_ms` (want a non-negative integer)".into()),
        },
    };
    let mut budget = Budget::new().with_deadline(deadline);
    if let Some(v) = body.get("max_nodes") {
        match v.as_u64() {
            Some(n) => budget = budget.with_max_nodes(n),
            None => return Err("bad `max_nodes` (want a non-negative integer)".into()),
        }
    }
    if let Some(v) = body.get("max_rows") {
        match v.as_u64() {
            Some(n) => budget = budget.with_max_rows(n),
            None => return Err("bad `max_rows` (want a non-negative integer)".into()),
        }
    }
    Ok(Exec::with_cancel(budget, app.drain.cancel_token().clone()).with_threads(app.threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deptree_relation::examples::hotels_r1;

    fn app() -> AppState {
        let mut datasets = BTreeMap::new();
        datasets.insert("hotels".to_owned(), hotels_r1());
        AppState {
            datasets,
            drain: DrainState::new(),
            threads: 1,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(30),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn health_and_ready_flip_on_drain() {
        let app = app();
        assert_eq!(handle(&app, &get("/healthz")).0, 200);
        assert_eq!(handle(&app, &get("/readyz")).0, 200);
        app.drain.begin();
        assert_eq!(handle(&app, &get("/healthz")).0, 200);
        let (status, body) = handle(&app, &get("/readyz"));
        assert_eq!(status, 503);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("draining")
        );
        // Task traffic is refused while draining.
        let (status, _) = handle(&app, &post("/v1/detect", r#"{"dataset":"hotels"}"#));
        assert_eq!(status, 503);
    }

    #[test]
    fn detect_round_trip() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/detect",
                r#"{"dataset":"hotels","rule":"address -> region"}"#,
            ),
        );
        assert_eq!(status, 200);
        let report = body.str_field("report").unwrap();
        assert!(report.contains("2 violation witness(es)"), "{report}");
        assert_eq!(body.bool_field("partial"), Some(false));
    }

    #[test]
    fn unknown_dataset_is_404() {
        let app = app();
        let (status, body) = handle(&app, &post("/v1/detect", r#"{"dataset":"nope"}"#));
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("not_found")
        );
    }

    #[test]
    fn bad_json_is_a_parse_error() {
        let app = app();
        let (status, body) = handle(&app, &post("/v1/discover", "{not json"));
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("parse")
        );
    }

    #[test]
    fn wrong_method_and_unknown_route() {
        let app = app();
        assert_eq!(handle(&app, &get("/v1/discover")).0, 405);
        assert_eq!(handle(&app, &post("/healthz", "")).0, 405);
        assert_eq!(handle(&app, &get("/nope")).0, 404);
    }

    #[test]
    fn node_budget_yields_partial_with_cause() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post("/v1/discover", r#"{"dataset":"hotels","max_nodes":1}"#),
        );
        assert_eq!(status, 200);
        assert_eq!(body.bool_field("partial"), Some(true));
        assert_eq!(body.str_field("exhausted"), Some("nodes"));
    }

    #[test]
    fn repair_ships_csv() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/repair",
                r#"{"dataset":"hotels","rule":"address -> region"}"#,
            ),
        );
        assert_eq!(status, 200);
        let csv = body.str_field("csv").unwrap();
        assert!(csv.contains("name"), "{csv}");
        let report = body.str_field("report").unwrap();
        assert!(report.contains("rule now holds: true"), "{report}");
    }

    #[test]
    fn bad_budget_fields_are_invalid_config() {
        let app = app();
        let (status, body) = handle(
            &app,
            &post("/v1/discover", r#"{"dataset":"hotels","timeout_ms":-5}"#),
        );
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("invalid_config")
        );
    }

    #[test]
    fn budget_fields_beyond_f64_precision_are_invalid_config() {
        // 2^53 + 1 is not representable as f64; accepting it would
        // silently run with a different budget than the client asked for.
        let app = app();
        let (status, body) = handle(
            &app,
            &post(
                "/v1/discover",
                r#"{"dataset":"hotels","max_nodes":9007199254740993}"#,
            ),
        );
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").and_then(|e| e.str_field("code")),
            Some("invalid_config")
        );
    }
}
