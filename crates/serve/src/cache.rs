//! Versioned LRU response cache for the task endpoints.
//!
//! Production traffic against a profiling service is dominated by repeat
//! reads: the same `discover`/`validate`/`detect` request against an
//! unchanged dataset, where recomputing the answer costs milliseconds to
//! seconds and replaying it costs a hash lookup. The cache stores the
//! **rendered response bytes** of successful, non-partial task replies
//! and replays them byte-identically.
//!
//! Correctness leans on two invariants rather than TTLs:
//!
//! - **Keys pin a dataset version.** Every key embeds the dataset's
//!   monotonic version number (bumped on every `/admin` load or drop), so
//!   a mutation makes every prior entry unreachable by construction; the
//!   mutation path additionally purges the dead entries to reclaim their
//!   bytes immediately. There is no window where a stale reply can be
//!   served for a new dataset.
//! - **Only complete answers are cached.** A `partial: true` reply is a
//!   budget artifact of one request's deadline, not a property of the
//!   data; replaying it to a caller with a looser budget would be wrong.
//!   Error replies are likewise never cached.
//!
//! Capacity is accounted in bytes (key + value), evicting
//! least-recently-used entries; hits, misses, evictions and resident
//! bytes are exported as `deptree_response_cache_*` series.

use crate::telemetry;
use std::collections::HashMap;
use std::sync::Mutex;

#[derive(Debug)]
struct Entry {
    reply: Vec<u8>,
    /// Logical clock of the last touch; smallest value is the LRU victim.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Monotonic touch counter backing `Entry::last_used`.
    tick: u64,
    /// Resident bytes (keys + values), mirrored into the bytes gauge.
    bytes: usize,
}

/// Byte-capped LRU cache of rendered response bodies. `capacity == 0`
/// disables every operation, so a disabled cache costs one branch.
#[derive(Debug)]
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

fn cost(key: &str, reply: &[u8]) -> usize {
    key.len() + reply.len()
}

impl ResponseCache {
    /// A cache holding at most `capacity` bytes of keys + values.
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether caching is on at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a reply; counts a hit or miss and refreshes recency.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        if !self.enabled() {
            return None;
        }
        let metrics = telemetry::serve_metrics();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                metrics.response_cache_hits.inc();
                Some(entry.reply.clone())
            }
            None => {
                metrics.response_cache_misses.inc();
                None
            }
        }
    }

    /// Insert a reply, evicting LRU entries until it fits. An entry
    /// larger than the whole capacity is silently not cached.
    pub fn put(&self, key: String, reply: Vec<u8>) {
        if !self.enabled() || cost(&key, &reply) > self.capacity {
            return;
        }
        let metrics = telemetry::serve_metrics();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= cost(&key, &old.reply);
        }
        inner.bytes += cost(&key, &reply);
        inner.map.insert(
            key,
            Entry {
                reply,
                last_used: tick,
            },
        );
        while inner.bytes > self.capacity {
            // Linear LRU scan: entries are whole task responses, so the
            // map holds few, large items and the scan is cheap next to
            // the computation a single hit saves.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(old) = inner.map.remove(&victim) {
                inner.bytes -= cost(&victim, &old.reply);
                metrics.response_cache_evictions.inc();
            }
        }
        metrics.response_cache_bytes.set(inner.bytes as i64);
    }

    /// Drop every entry whose key starts with `prefix` — the dataset
    /// mutation path, where `prefix` names the dataset. Counted as
    /// evictions: the series is "entries removed without being replayed".
    pub fn purge_prefix(&self, prefix: &str) {
        if !self.enabled() {
            return;
        }
        let metrics = telemetry::serve_metrics();
        let mut inner = self.lock();
        let dead: Vec<String> = inner
            .map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        for key in dead {
            if let Some(old) = inner.map.remove(&key) {
                inner.bytes -= cost(&key, &old.reply);
                metrics.response_cache_evictions.inc();
            }
        }
        metrics.response_cache_bytes.set(inner.bytes as i64);
    }

    /// Resident bytes (keys + values) currently held.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = ResponseCache::new(0);
        cache.put("k".into(), vec![1, 2, 3]);
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn round_trips_bytes_exactly() {
        let cache = ResponseCache::new(1024);
        let reply = b"{\"report\":\"x\"}".to_vec();
        cache.put("a\u{1}1\u{1}/v1/detect\u{1}{}".into(), reply.clone());
        assert_eq!(
            cache.get("a\u{1}1\u{1}/v1/detect\u{1}{}"),
            Some(reply),
            "replay must be the stored bytes"
        );
    }

    #[test]
    fn lru_eviction_respects_recency_and_byte_cap() {
        // Three 40-byte entries in a 100-byte cache: inserting the third
        // evicts the least recently *used*, which after a get() of the
        // first is the second.
        let cache = ResponseCache::new(100);
        let value = vec![b'x'; 39];
        cache.put("a".into(), value.clone());
        cache.put("b".into(), value.clone());
        assert!(cache.get("a").is_some());
        cache.put("c".into(), value.clone());
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert!(cache.get("c").is_some());
        assert!(cache.bytes() <= 100);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ResponseCache::new(10);
        cache.put("k".into(), vec![0u8; 64]);
        assert_eq!(cache.get("k"), None);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn purge_prefix_removes_only_that_dataset() {
        let cache = ResponseCache::new(4096);
        cache.put("hotels\u{1}1\u{1}/v1/detect\u{1}{}".into(), vec![1]);
        cache.put("hotels\u{1}1\u{1}/v1/dedup\u{1}{}".into(), vec![2]);
        cache.put("flights\u{1}4\u{1}/v1/detect\u{1}{}".into(), vec![3]);
        cache.purge_prefix("hotels\u{1}");
        assert_eq!(cache.len(), 1);
        assert!(cache.get("flights\u{1}4\u{1}/v1/detect\u{1}{}").is_some());
    }

    #[test]
    fn replacing_a_key_updates_byte_accounting() {
        let cache = ResponseCache::new(1024);
        cache.put("k".into(), vec![0u8; 100]);
        let before = cache.bytes();
        cache.put("k".into(), vec![0u8; 10]);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() < before);
    }
}
