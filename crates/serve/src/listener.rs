//! The server proper: accept loop, worker pool, and lifecycle handle.
//!
//! Thread layout for one server:
//!
//! ```text
//! accept thread ──try_admit──▶ bounded queue ──recv──▶ worker 0..N
//!      │  (shed: answer 429 inline, close)                  │
//!      │                                                    ▼
//!      └── polls DrainState::is_finished ──▶ exit     route + respond
//! ```
//!
//! The accept loop is nonblocking so it can interleave accepting with the
//! drain flag; accepted sockets are switched back to blocking, and every
//! request frame is read under both a per-read socket timeout (stalled
//! peer) and an absolute frame deadline (drip-feeding peer) — together
//! the slow-loris bound. A worker holds exactly one connection at a time, so `workers`
//! is also the in-service concurrency cap; `queue_depth` bounds the wait
//! line behind them, and everything past that is shed at accept time.
//!
//! Connections are reused (HTTP/1.1 keep-alive): a worker serves up to
//! `max_requests_per_conn` sequential requests per socket, each under its
//! own fresh [`FrameClock`]. Because a parked idle connection pins a
//! worker thread, the between-request idle window (`keepalive_idle`) is
//! deliberately short — reuse is for clients actively pipelining work,
//! not a long-lived pool slot — and the per-connection request cap
//! rotates workers across clients under contention. Draining, an
//! explicit `Connection: close` from the client, or any framing error
//! flips the connection to close behind the in-flight reply.
//!
//! The listener is generic over a [`Service`]: the same hardened front
//! end (admission, framing, slow-loris bounds, panic barrier, drain)
//! serves both the single-process task router ([`spawn`]) and the
//! cluster gateway ([`spawn_service`] with a proxying service).

use crate::admission::{Admission, AdmissionStats, ShedReason};
use crate::drain::{run_drain, DrainState};
use crate::json::Json;
use crate::protocol::{
    error_body, read_request, write_json_bytes_response, write_response, write_text_response,
    ErrorCode, FrameClock, Limits, Request,
};
use crate::router::{handle, AppState};
use crate::telemetry;
use deptree_core::DeptreeError;
use deptree_relation::Relation;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a server instance needs to start.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Named datasets, preloaded by the caller.
    pub datasets: Vec<(String, Relation)>,
    /// Connection cap (queued + in service); excess is shed with 429.
    pub max_connections: usize,
    /// Accept→worker hand-off queue depth; excess is shed with 429.
    pub queue_depth: usize,
    /// Worker threads; also the in-service concurrency cap.
    pub workers: usize,
    /// Per-read socket timeout (fully-stalled-peer bound).
    pub read_timeout: Duration,
    /// Absolute cap on reading one whole request frame, however slowly
    /// the bytes arrive (drip-feeding-peer bound).
    pub frame_timeout: Duration,
    /// Socket write timeout (stuck-peer bound).
    pub write_timeout: Duration,
    /// Header/body byte caps.
    pub limits: Limits,
    /// Deadline for requests that do not name one.
    pub default_deadline: Duration,
    /// Cap on any requested deadline.
    pub max_deadline: Duration,
    /// Engine threads available to each request.
    pub threads: usize,
    /// Soft-drain grace before in-flight work is cancelled.
    pub drain_grace: Duration,
    /// Requests served per connection before the server closes it
    /// (keep-alive rotation cap; 1 restores close-per-request).
    pub max_requests_per_conn: usize,
    /// How long a reused connection may sit idle between requests before
    /// the server closes it (an idle connection pins a worker thread).
    pub keepalive_idle: Duration,
    /// Response cache capacity in bytes; 0 disables caching.
    pub response_cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            datasets: Vec::new(),
            max_connections: 64,
            queue_depth: 16,
            workers: 4,
            read_timeout: Duration::from_secs(5),
            frame_timeout: Duration::from_secs(15),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            threads: 1,
            drain_grace: Duration::from_secs(3),
            max_requests_per_conn: 64,
            keepalive_idle: Duration::from_millis(500),
            response_cache_bytes: 0,
        }
    }
}

/// What a [`Service`] answers one request with.
pub enum ServiceReply {
    /// A JSON body (the normal task/error path).
    Json(u16, Json),
    /// A plain-text body (the Prometheus `/metrics` exposition).
    Text(u16, String),
    /// A pre-rendered JSON body forwarded byte-for-byte (the gateway's
    /// proxy path: the worker's response must reach the client unchanged).
    Bytes(u16, Vec<u8>),
}

/// The application half of a server: everything behind the framing.
///
/// The listener owns sockets, admission, timeouts and the panic
/// barrier; the service owns routing and state. [`AppState`] implements
/// it for the single-process daemon, the gateway for the cluster front.
pub trait Service: Send + Sync + 'static {
    /// Answer one parsed request. Must not panic for correctness — the
    /// listener's catch-unwind turns a panic into one `500`, not a dead
    /// worker — but panicking loses the request.
    fn respond(&self, req: &Request) -> ServiceReply;

    /// The lifecycle state the accept loop polls to stop.
    fn drain_handle(&self) -> &Arc<DrainState>;
}

/// Network/framing knobs for [`spawn_service`] — the transport subset of
/// [`ServeConfig`], shared by the daemon and the gateway front end.
#[derive(Debug, Clone)]
pub struct ListenOpts {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Connection cap (queued + in service); excess is shed with 429.
    pub max_connections: usize,
    /// Accept→worker hand-off queue depth; excess is shed with 429.
    pub queue_depth: usize,
    /// Worker threads; also the in-service concurrency cap.
    pub workers: usize,
    /// Per-read socket timeout (fully-stalled-peer bound).
    pub read_timeout: Duration,
    /// Absolute cap on reading one whole request frame.
    pub frame_timeout: Duration,
    /// Socket write timeout (stuck-peer bound).
    pub write_timeout: Duration,
    /// Header/body byte caps.
    pub limits: Limits,
    /// Soft-drain grace before in-flight work is cancelled.
    pub drain_grace: Duration,
    /// Requests served per connection before the server closes it.
    pub max_requests_per_conn: usize,
    /// Idle window between requests on a reused connection.
    pub keepalive_idle: Duration,
}

impl Default for ListenOpts {
    fn default() -> Self {
        let d = ServeConfig::default();
        ListenOpts {
            addr: d.addr,
            max_connections: d.max_connections,
            queue_depth: d.queue_depth,
            workers: d.workers,
            read_timeout: d.read_timeout,
            frame_timeout: d.frame_timeout,
            write_timeout: d.write_timeout,
            limits: d.limits,
            drain_grace: d.drain_grace,
            max_requests_per_conn: d.max_requests_per_conn,
            keepalive_idle: d.keepalive_idle,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::drain`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    drain: Arc<DrainState>,
    drain_grace: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<AdmissionStats>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The lifecycle state, for wiring signal handlers.
    pub fn drain_state(&self) -> &Arc<DrainState> {
        &self.drain
    }

    /// Connections shed so far.
    pub fn shed(&self) -> u64 {
        self.stats.shed.load(Ordering::Relaxed)
    }

    /// Connections admitted so far.
    pub fn admitted(&self) -> u64 {
        self.stats.admitted.load(Ordering::Relaxed)
    }

    /// Run the graceful-drain protocol to completion (blocking): flip
    /// readiness, wait out the grace, cancel stragglers, stop accepting.
    pub fn drain(&self) {
        run_drain(&self.drain, self.drain_grace);
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`ServerHandle::drain`]; joining a serving handle blocks forever.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// The single-process daemon routes requests to [`AppState`]'s tasks;
/// `/metrics` is text and bypasses the JSON router.
impl Service for AppState {
    fn respond(&self, req: &Request) -> ServiceReply {
        if req.method == "GET" && req.path == "/metrics" {
            return ServiceReply::Text(200, telemetry::render());
        }
        // Response cache: the key is computed exactly once per request —
        // it pins the dataset version this request is answered against,
        // so a concurrent dataset swap can never file a reply under the
        // new version's key (the stale entry lands under the old version,
        // which no future lookup resolves to).
        let key = self.cache_key(req);
        if let Some(key) = &key {
            if let Some(bytes) = self.cache_lookup(key) {
                return ServiceReply::Bytes(200, bytes);
            }
        }
        let (status, body) = handle(self, req);
        if let Some(key) = key {
            if let Some(bytes) = self.cache_store(key, status, &body) {
                // Serve the exact bytes that were stored, so a later hit
                // is a byte-identical replay of this reply.
                return ServiceReply::Bytes(status, bytes);
            }
        }
        ServiceReply::Json(status, body)
    }

    fn drain_handle(&self) -> &Arc<DrainState> {
        &self.drain
    }
}

/// Bind, spawn the accept loop and worker pool, and return the handle.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle, DeptreeError> {
    let drain = DrainState::new();
    let mut datasets = BTreeMap::new();
    for (name, r) in config.datasets {
        // Resident-footprint gauge per table: the columnar estimate at
        // preload. The router refreshes it after each task, when lazy
        // views (sorted runs, bit-packed codes) have materialized.
        telemetry::dataset_bytes(&name).set(r.approx_bytes() as i64);
        datasets.insert(name, r);
    }
    let app = Arc::new(AppState::new(
        datasets,
        drain,
        config.threads.max(1),
        config.default_deadline,
        config.max_deadline,
        config.response_cache_bytes,
    ));
    let opts = ListenOpts {
        addr: config.addr,
        max_connections: config.max_connections,
        queue_depth: config.queue_depth,
        workers: config.workers,
        read_timeout: config.read_timeout,
        frame_timeout: config.frame_timeout,
        write_timeout: config.write_timeout,
        limits: config.limits,
        drain_grace: config.drain_grace,
        max_requests_per_conn: config.max_requests_per_conn,
        keepalive_idle: config.keepalive_idle,
    };
    spawn_service(opts, app)
}

/// Bind, spawn the accept loop and worker pool for an arbitrary
/// [`Service`], and return the handle. The service's own
/// [`DrainState`] drives the lifecycle, so one drain covers both the
/// transport and whatever the service tracks in flight.
pub fn spawn_service(
    opts: ListenOpts,
    service: Arc<impl Service>,
) -> Result<ServerHandle, DeptreeError> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| DeptreeError::Io {
        path: opts.addr.clone(),
        message: format!("bind failed: {e}"),
    })?;
    let addr = listener.local_addr().map_err(|e| DeptreeError::Io {
        path: opts.addr.clone(),
        message: format!("local_addr failed: {e}"),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| DeptreeError::Io {
            path: opts.addr.clone(),
            message: format!("set_nonblocking failed: {e}"),
        })?;

    // Register every metric family before the first request, so an early
    // scrape (or the CI smoke) sees all required series at zero.
    let _ = telemetry::serve_metrics();

    let drain = Arc::clone(service.drain_handle());
    let (admission, rx) = Admission::new(opts.queue_depth, opts.max_connections);
    let stats = Arc::clone(&admission.stats);
    let rx = Arc::new(Mutex::new(rx));
    let io = IoConfig {
        read_timeout: opts.read_timeout,
        frame_timeout: opts.frame_timeout,
        write_timeout: opts.write_timeout,
        limits: opts.limits,
        max_requests_per_conn: opts.max_requests_per_conn,
        keepalive_idle: opts.keepalive_idle,
    };

    let mut workers = Vec::with_capacity(opts.workers.max(1));
    for i in 0..opts.workers.max(1) {
        let service = Arc::clone(&service);
        let rx = Arc::clone(&rx);
        workers.push(
            std::thread::Builder::new()
                .name(format!("deptree-worker-{i}"))
                .spawn(move || worker_loop(service.as_ref(), &rx, &io))
                .map_err(|e| DeptreeError::Io {
                    path: "worker".into(),
                    message: e.to_string(),
                })?,
        );
    }

    let accept_drain = Arc::clone(&drain);
    let accept = std::thread::Builder::new()
        .name("deptree-accept".to_owned())
        .spawn(move || accept_loop(&listener, &admission, &accept_drain, &io))
        .map_err(|e| DeptreeError::Io {
            path: "accept".into(),
            message: e.to_string(),
        })?;

    Ok(ServerHandle {
        addr,
        drain,
        drain_grace: opts.drain_grace,
        accept: Some(accept),
        workers,
        stats,
    })
}

/// Per-connection I/O settings shared by accept and worker threads.
#[derive(Debug, Clone, Copy)]
struct IoConfig {
    read_timeout: Duration,
    frame_timeout: Duration,
    write_timeout: Duration,
    limits: Limits,
    max_requests_per_conn: usize,
    keepalive_idle: Duration,
}

/// How long the accept loop sleeps when there is nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn accept_loop(listener: &TcpListener, admission: &Admission, drain: &DrainState, io: &IoConfig) {
    while !drain.is_finished() {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is nonblocking; the accepted socket must
                // not be, or every worker read would spin on WouldBlock.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Err((stream, reason)) = admission.try_admit(stream) {
                    shed(stream, reason, io);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake);
                // back off briefly instead of spinning.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // Dropping `admission` here closes the queue; workers drain what is
    // left and exit on the disconnect.
}

/// Answer a shed connection with `429 overloaded` (best effort) and
/// close it. Runs on the accept thread, so it must stay cheap: a short
/// write timeout bounds it.
fn shed(mut stream: TcpStream, reason: ShedReason, io: &IoConfig) {
    telemetry::serve_metrics().shed(reason).inc();
    let _ = stream.set_write_timeout(Some(io.write_timeout.min(Duration::from_millis(500))));
    let (code, detail) = match reason {
        ShedReason::Connections => (ErrorCode::Overloaded, "connection cap reached"),
        ShedReason::Queue => (ErrorCode::Overloaded, "request queue full"),
        ShedReason::Closed => (ErrorCode::Draining, "server is shutting down"),
    };
    let _ = write_response(
        &mut stream,
        code.http_status(),
        &error_body(code, detail),
        false,
    );
}

/// How long a worker blocks on the queue before re-checking liveness.
const WORKER_POLL: Duration = Duration::from_millis(50);

fn worker_loop(service: &dyn Service, rx: &Mutex<Receiver<crate::admission::Conn>>, io: &IoConfig) {
    loop {
        // Hold the lock only for the timed receive, never while serving.
        let conn = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(WORKER_POLL)
        };
        match conn {
            Ok(conn) => serve_conn(service, conn, io),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Wait up to `idle` for the first byte of a follow-up request on a
/// reused connection. `peek` leaves the byte in the socket buffer for
/// `read_request`. Returns `false` on idle timeout, peer close, or any
/// socket error — all of which mean "stop reusing this connection".
fn next_request_arrives(stream: &TcpStream, idle: Duration) -> bool {
    if stream
        .set_read_timeout(Some(idle.max(Duration::from_millis(1))))
        .is_err()
    {
        return false;
    }
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(n) => n > 0,
        Err(_) => false,
    }
}

/// Serve one connection: up to `max_requests_per_conn` sequential
/// request/response exchanges, then close.
///
/// Each request gets a fresh [`FrameClock`] — the slow-loris budget is
/// per frame, not per connection, so a long-lived well-behaved client is
/// never starved by its own history. Bytes read past one frame's end are
/// carried into the next parse (`carry`), which is what makes client-side
/// pipelining safe. Any framing error is answered (best effort) with
/// `Connection: close` and ends the connection: after a malformed frame
/// the stream position is untrusted and resynchronizing would be
/// guesswork.
fn serve_conn(service: &dyn Service, mut conn: crate::admission::Conn, io: &IoConfig) {
    // `conn` stays whole for the duration: its admission slot is the
    // "in service" claim and must not release until the socket closes.
    let stream = &mut conn.stream;
    if stream.set_write_timeout(Some(io.write_timeout)).is_err() {
        return;
    }
    // No Nagle: each response leaves in one write, and batching it
    // against the client's delayed ACK would stall every keep-alive
    // round trip by tens of milliseconds.
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let metrics = telemetry::serve_metrics();
    metrics.admitted.inc();
    let mut carry: Vec<u8> = Vec::new();
    let max_requests = io.max_requests_per_conn.max(1);
    for served in 1..=max_requests {
        // Between requests, with no pipelined bytes already in hand,
        // give the client one short idle window to start its next frame.
        if served > 1 && carry.is_empty() && !next_request_arrives(stream, io.keepalive_idle) {
            break;
        }
        let clock = FrameClock::start(io.read_timeout, io.frame_timeout);
        let req = match read_request(stream, &io.limits, &clock, &mut carry) {
            Ok(req) => req,
            Err(crate::protocol::ProtoError::Closed) => break, // nobody to answer
            Err(e) => {
                let code = e.code();
                metrics.requests("other", code.http_status()).inc();
                let _ = write_response(
                    stream,
                    code.http_status(),
                    &error_body(code, &e.message()),
                    false,
                );
                break;
            }
        };
        let started = std::time::Instant::now();
        // The in-flight gauge brackets respond() itself; the panic
        // barrier below guarantees the decrement runs even when the
        // handler panics.
        metrics.inflight.add(1);
        // Last-resort panic barrier: a handler bug must cost one
        // request, not the worker thread (and with it 1/N of the
        // server's capacity).
        let reply = match catch_unwind(AssertUnwindSafe(|| service.respond(&req))) {
            Ok(reply) => reply,
            Err(_) => ServiceReply::Json(
                ErrorCode::Internal.http_status(),
                error_body(ErrorCode::Internal, "request handler panicked"),
            ),
        };
        metrics.inflight.add(-1);
        metrics.latency.observe_duration(started.elapsed());
        // Decided after respond(), not before: a drain that began while
        // this request was computing must close the connection behind
        // the in-flight reply, not hand the client a dead socket.
        let keep = req.keep_alive && served < max_requests && !service.drain_handle().is_draining();
        metrics.requests(&req.path, reply_status(&reply)).inc();
        let wrote = match reply {
            ServiceReply::Text(status, text) => write_text_response(stream, status, &text, keep),
            ServiceReply::Bytes(status, bytes) => {
                write_json_bytes_response(stream, status, &bytes, keep)
            }
            ServiceReply::Json(status, body) => write_response(stream, status, &body, keep),
        };
        if wrote.is_err() || !keep {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    // `conn` drops here, releasing its admission slot.
}

fn reply_status(reply: &ServiceReply) -> u16 {
    match reply {
        ServiceReply::Text(status, _)
        | ServiceReply::Bytes(status, _)
        | ServiceReply::Json(status, _) => *status,
    }
}
