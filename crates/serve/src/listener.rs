//! The server proper: accept loop, worker pool, and lifecycle handle.
//!
//! Thread layout for one server:
//!
//! ```text
//! accept thread ──try_admit──▶ bounded queue ──recv──▶ worker 0..N
//!      │  (shed: answer 429 inline, close)                  │
//!      │                                                    ▼
//!      └── polls DrainState::is_finished ──▶ exit     route + respond
//! ```
//!
//! The accept loop is nonblocking so it can interleave accepting with the
//! drain flag; accepted sockets are switched back to blocking, and every
//! request frame is read under both a per-read socket timeout (stalled
//! peer) and an absolute frame deadline (drip-feeding peer) — together
//! the slow-loris bound. A worker holds exactly one connection at a time, so `workers`
//! is also the in-service concurrency cap; `queue_depth` bounds the wait
//! line behind them, and everything past that is shed at accept time.

use crate::admission::{Admission, AdmissionStats, ShedReason};
use crate::drain::{run_drain, DrainState};
use crate::protocol::{
    error_body, read_request, write_response, write_text_response, ErrorCode, FrameClock, Limits,
};
use crate::router::{handle, AppState};
use crate::telemetry;
use deptree_core::DeptreeError;
use deptree_relation::Relation;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a server instance needs to start.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Named datasets, preloaded by the caller.
    pub datasets: Vec<(String, Relation)>,
    /// Connection cap (queued + in service); excess is shed with 429.
    pub max_connections: usize,
    /// Accept→worker hand-off queue depth; excess is shed with 429.
    pub queue_depth: usize,
    /// Worker threads; also the in-service concurrency cap.
    pub workers: usize,
    /// Per-read socket timeout (fully-stalled-peer bound).
    pub read_timeout: Duration,
    /// Absolute cap on reading one whole request frame, however slowly
    /// the bytes arrive (drip-feeding-peer bound).
    pub frame_timeout: Duration,
    /// Socket write timeout (stuck-peer bound).
    pub write_timeout: Duration,
    /// Header/body byte caps.
    pub limits: Limits,
    /// Deadline for requests that do not name one.
    pub default_deadline: Duration,
    /// Cap on any requested deadline.
    pub max_deadline: Duration,
    /// Engine threads available to each request.
    pub threads: usize,
    /// Soft-drain grace before in-flight work is cancelled.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            datasets: Vec::new(),
            max_connections: 64,
            queue_depth: 16,
            workers: 4,
            read_timeout: Duration::from_secs(5),
            frame_timeout: Duration::from_secs(15),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            threads: 1,
            drain_grace: Duration::from_secs(3),
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::drain`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    drain: Arc<DrainState>,
    drain_grace: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<AdmissionStats>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The lifecycle state, for wiring signal handlers.
    pub fn drain_state(&self) -> &Arc<DrainState> {
        &self.drain
    }

    /// Connections shed so far.
    pub fn shed(&self) -> u64 {
        self.stats.shed.load(Ordering::Relaxed)
    }

    /// Connections admitted so far.
    pub fn admitted(&self) -> u64 {
        self.stats.admitted.load(Ordering::Relaxed)
    }

    /// Run the graceful-drain protocol to completion (blocking): flip
    /// readiness, wait out the grace, cancel stragglers, stop accepting.
    pub fn drain(&self) {
        run_drain(&self.drain, self.drain_grace);
    }

    /// Wait for the accept loop and every worker to exit. Call after
    /// [`ServerHandle::drain`]; joining a serving handle blocks forever.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Bind, spawn the accept loop and worker pool, and return the handle.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle, DeptreeError> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| DeptreeError::Io {
        path: config.addr.clone(),
        message: format!("bind failed: {e}"),
    })?;
    let addr = listener.local_addr().map_err(|e| DeptreeError::Io {
        path: config.addr.clone(),
        message: format!("local_addr failed: {e}"),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| DeptreeError::Io {
            path: config.addr.clone(),
            message: format!("set_nonblocking failed: {e}"),
        })?;

    // Register every metric family before the first request, so an early
    // scrape (or the CI smoke) sees all required series at zero.
    let _ = telemetry::serve_metrics();

    let drain = DrainState::new();
    let mut datasets = BTreeMap::new();
    for (name, r) in config.datasets {
        datasets.insert(name, r);
    }
    let app = Arc::new(AppState {
        datasets,
        drain: Arc::clone(&drain),
        threads: config.threads.max(1),
        default_deadline: config.default_deadline,
        max_deadline: config.max_deadline,
    });

    let (admission, rx) = Admission::new(config.queue_depth, config.max_connections);
    let stats = Arc::clone(&admission.stats);
    let rx = Arc::new(Mutex::new(rx));
    let io = IoConfig {
        read_timeout: config.read_timeout,
        frame_timeout: config.frame_timeout,
        write_timeout: config.write_timeout,
        limits: config.limits,
    };

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let app = Arc::clone(&app);
        let rx = Arc::clone(&rx);
        workers.push(
            std::thread::Builder::new()
                .name(format!("deptree-worker-{i}"))
                .spawn(move || worker_loop(&app, &rx, &io))
                .map_err(|e| DeptreeError::Io {
                    path: "worker".into(),
                    message: e.to_string(),
                })?,
        );
    }

    let accept_drain = Arc::clone(&drain);
    let accept = std::thread::Builder::new()
        .name("deptree-accept".to_owned())
        .spawn(move || accept_loop(&listener, &admission, &accept_drain, &io))
        .map_err(|e| DeptreeError::Io {
            path: "accept".into(),
            message: e.to_string(),
        })?;

    Ok(ServerHandle {
        addr,
        drain,
        drain_grace: config.drain_grace,
        accept: Some(accept),
        workers,
        stats,
    })
}

/// Per-connection I/O settings shared by accept and worker threads.
#[derive(Debug, Clone, Copy)]
struct IoConfig {
    read_timeout: Duration,
    frame_timeout: Duration,
    write_timeout: Duration,
    limits: Limits,
}

/// How long the accept loop sleeps when there is nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn accept_loop(listener: &TcpListener, admission: &Admission, drain: &DrainState, io: &IoConfig) {
    while !drain.is_finished() {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is nonblocking; the accepted socket must
                // not be, or every worker read would spin on WouldBlock.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Err((stream, reason)) = admission.try_admit(stream) {
                    shed(stream, reason, io);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake);
                // back off briefly instead of spinning.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // Dropping `admission` here closes the queue; workers drain what is
    // left and exit on the disconnect.
}

/// Answer a shed connection with `429 overloaded` (best effort) and
/// close it. Runs on the accept thread, so it must stay cheap: a short
/// write timeout bounds it.
fn shed(mut stream: TcpStream, reason: ShedReason, io: &IoConfig) {
    telemetry::serve_metrics().shed(reason).inc();
    let _ = stream.set_write_timeout(Some(io.write_timeout.min(Duration::from_millis(500))));
    let (code, detail) = match reason {
        ShedReason::Connections => (ErrorCode::Overloaded, "connection cap reached"),
        ShedReason::Queue => (ErrorCode::Overloaded, "request queue full"),
        ShedReason::Closed => (ErrorCode::Draining, "server is shutting down"),
    };
    let _ = write_response(&mut stream, code.http_status(), &error_body(code, detail));
}

/// How long a worker blocks on the queue before re-checking liveness.
const WORKER_POLL: Duration = Duration::from_millis(50);

fn worker_loop(app: &AppState, rx: &Mutex<Receiver<crate::admission::Conn>>, io: &IoConfig) {
    loop {
        // Hold the lock only for the timed receive, never while serving.
        let conn = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(WORKER_POLL)
        };
        match conn {
            Ok(conn) => serve_conn(app, conn, io),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection: frame, route, respond, close.
fn serve_conn(app: &AppState, mut conn: crate::admission::Conn, io: &IoConfig) {
    // `conn` stays whole for the duration: its admission slot is the
    // "in service" claim and must not release until the socket closes.
    let stream = &mut conn.stream;
    if stream.set_write_timeout(Some(io.write_timeout)).is_err() {
        return;
    }
    // The clock re-arms the read timeout before every read, bounding the
    // whole frame no matter how slowly its bytes drip in.
    let clock = FrameClock::start(io.read_timeout, io.frame_timeout);
    let metrics = telemetry::serve_metrics();
    metrics.admitted.inc();
    let (status, body) = match read_request(stream, &io.limits, &clock) {
        Ok(req) if req.method == "GET" && req.path == "/metrics" => {
            // Exposition is text, not JSON, so it bypasses the router.
            let started = std::time::Instant::now();
            let text = telemetry::render(app.drain.inflight());
            let _ = write_text_response(stream, 200, &text);
            metrics.latency.observe_duration(started.elapsed());
            metrics.requests(&req.path, 200).inc();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        Ok(req) => {
            let started = std::time::Instant::now();
            // Last-resort panic barrier: a handler bug must cost one
            // request, not the worker thread (and with it 1/N of the
            // server's capacity).
            let resp = match catch_unwind(AssertUnwindSafe(|| handle(app, &req))) {
                Ok(resp) => resp,
                Err(_) => (
                    ErrorCode::Internal.http_status(),
                    error_body(ErrorCode::Internal, "request handler panicked"),
                ),
            };
            metrics.latency.observe_duration(started.elapsed());
            metrics.requests(&req.path, resp.0).inc();
            resp
        }
        Err(e) => {
            if e == crate::protocol::ProtoError::Closed {
                return; // nobody to answer
            }
            let code = e.code();
            metrics.requests("other", code.http_status()).inc();
            (code.http_status(), error_body(code, &e.message()))
        }
    };
    // Best effort: the peer may have hung up mid-response.
    let _ = write_response(stream, status, &body);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    // `conn` drops here, releasing its admission slot.
}
