//! `deptree gateway`: a supervising front for a fleet of `deptree serve`
//! workers — sharding, health-probed respawn, and degraded-partial
//! fan-out (DESIGN.md §12).
//!
//! The gateway is one process that:
//!
//! - **spawns and supervises** N worker processes on ephemeral ports
//!   ([`supervisor`]): crash → exponential-backoff respawn, crash loop →
//!   quarantine, wedged worker → `/readyz` probes declare it dead;
//! - **places datasets** ([`shard`]): whole datasets get a digest-stable
//!   home worker (plus optional replicas), sharded datasets are split
//!   into contiguous row slices with the full snapshot retained in the
//!   gateway for merging;
//! - **routes requests**: single-dataset requests are proxied to the
//!   home worker byte-for-byte (replica failover on refusal), discovery
//!   over a sharded dataset fans out to every slice under a split budget
//!   and merges with full-snapshot re-validation ([`merge`]) — a dead or
//!   slow worker degrades the answer (`partial: true` + `degraded`
//!   detail), it never fails the request;
//! - **front-ends with the same hardened listener** as `deptree serve`
//!   ([`crate::listener`]): admission control, slow-loris bounds, panic
//!   barrier, and the two-phase drain all apply unchanged.
//!
//! Lifecycle on SIGTERM: stop accepting, drain in-flight fan-outs,
//! SIGTERM every worker, reap each under a grace (SIGKILL past it),
//! exit 0 — see [`GatewayHandle::drain_and_join`].

mod merge;
mod shard;
mod supervisor;

pub use shard::DatasetSpec;

use crate::client::{self, ClientConfig};
use crate::drain::DrainState;
use crate::json::Json;
use crate::listener::{spawn_service, ListenOpts, ServerHandle, Service, ServiceReply};
use crate::protocol::{error_body, ErrorCode, Request};
use crate::router::{self, AppState};
use crate::telemetry;
use deptree_core::engine::Budget;
use deptree_core::DeptreeError;
use merge::ShardReply;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use supervisor::{log, Supervisor, SupervisorConfig};

/// Everything `spawn_gateway` needs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The worker binary; normally the running `deptree` binary itself.
    pub worker_bin: PathBuf,
    /// How many workers to supervise.
    pub workers: usize,
    /// Extra copies of each non-sharded dataset on successor workers,
    /// used for proxy failover while the home worker respawns.
    pub replicas: usize,
    /// Datasets to place, from `--data` / `--shard`.
    pub datasets: Vec<DatasetSpec>,
    /// Parse CSVs leniently (drop bad rows with a warning).
    pub lossy: bool,
    /// Engine threads per worker (and for the gateway's local tasks).
    pub worker_threads: usize,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard cap on any requested deadline.
    pub max_deadline: Duration,
    /// Base respawn delay after a worker crash.
    pub respawn_base: Duration,
    /// Cap on the exponential respawn delay.
    pub respawn_max: Duration,
    /// Uptime below this counts as a fast crash (quarantine fuel).
    pub fast_crash: Duration,
    /// Consecutive fast crashes before a worker is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined worker sits out before probation.
    pub quarantine_cooldown: Duration,
    /// How often each Up worker's `/readyz` is probed.
    pub probe_interval: Duration,
    /// Consecutive failed probes before a worker is declared dead.
    pub probe_failures: u32,
    /// How long a starting worker may take to announce its address.
    pub spawn_timeout: Duration,
    /// SIGTERM→SIGKILL grace per worker at shutdown.
    pub child_grace: Duration,
    /// Front-end transport knobs (bind address, admission, timeouts).
    pub listen: ListenOpts,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            worker_bin: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("deptree")),
            workers: 4,
            replicas: 0,
            datasets: Vec::new(),
            lossy: false,
            worker_threads: 1,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            respawn_base: Duration::from_millis(500),
            respawn_max: Duration::from_secs(15),
            fast_crash: Duration::from_secs(1),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(30),
            probe_interval: Duration::from_millis(500),
            probe_failures: 3,
            spawn_timeout: Duration::from_secs(10),
            child_grace: Duration::from_secs(5),
            listen: ListenOpts::default(),
        }
    }
}

/// The gateway's [`Service`]: routing on top of the shared listener.
struct GatewayState {
    supervisor: Arc<Supervisor>,
    /// Full snapshots of sharded datasets; answers non-discovery tasks
    /// locally and re-validates merged candidates.
    local: AppState,
    /// Sharded dataset → workers holding a slice.
    shard_workers: BTreeMap<String, Vec<usize>>,
    /// Whole dataset → candidate workers (home first, then replicas).
    homes: BTreeMap<String, Vec<usize>>,
    drain: Arc<DrainState>,
    default_deadline: Duration,
    max_deadline: Duration,
}

impl Service for GatewayState {
    fn respond(&self, req: &Request) -> ServiceReply {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => ServiceReply::Text(200, self.aggregated_metrics()),
            ("GET", "/healthz") => ServiceReply::Json(200, self.healthz()),
            ("GET", "/readyz") => {
                let (status, body) = self.readyz();
                ServiceReply::Json(status, body)
            }
            ("GET", "/v1/datasets") => ServiceReply::Json(200, self.catalogue()),
            (
                "POST",
                "/v1/discover" | "/v1/validate" | "/v1/detect" | "/v1/repair" | "/v1/dedup",
            ) => self.task(req),
            // Everything else (method mismatches, unknown routes) gets the
            // router's own answers, byte-identical to a single worker's.
            _ => {
                let (status, body) = router::handle(&self.local, req);
                ServiceReply::Json(status, body)
            }
        }
    }

    fn drain_handle(&self) -> &Arc<DrainState> {
        &self.drain
    }
}

impl GatewayState {
    fn healthz(&self) -> Json {
        Json::obj()
            .set("status", "ok")
            .set("draining", self.drain.is_draining())
            .set("inflight", self.drain.inflight() as u64)
            .set("workers", self.supervisor.status_json())
            .set("quarantined", self.supervisor.quarantined_count() as u64)
    }

    fn readyz(&self) -> (u16, Json) {
        if self.drain.is_draining() {
            return (
                503,
                Json::obj().set("ready", false).set(
                    "error",
                    Json::obj()
                        .set("code", ErrorCode::Draining.wire())
                        .set("message", "server is draining; retry elsewhere"),
                ),
            );
        }
        let up = self.supervisor.live_count();
        if up == 0 {
            return (
                503,
                Json::obj().set("ready", false).set(
                    "error",
                    Json::obj()
                        .set("code", ErrorCode::Overloaded.wire())
                        .set("message", "no live workers"),
                ),
            );
        }
        (
            200,
            Json::obj().set("ready", true).set("workers_up", up as u64),
        )
    }

    /// Union catalogue: sharded datasets from the local snapshots (full
    /// row counts, not slice counts), whole datasets from their home
    /// worker's own catalogue. Unreachable datasets are omitted; they
    /// reappear when a home or replica comes back.
    fn catalogue(&self) -> Json {
        let mut entries: BTreeMap<String, (u64, u64)> = self
            .local
            .datasets
            .iter()
            .map(|(name, r)| (name.clone(), (r.n_rows() as u64, r.n_attrs() as u64)))
            .collect();
        let mut fetched: BTreeMap<usize, Option<Json>> = BTreeMap::new();
        for (name, holders) in &self.homes {
            for &w in holders {
                let Some(addr) = self.supervisor.worker_addr(w) else {
                    continue;
                };
                let body = fetched.entry(w).or_insert_with(|| {
                    client::query(
                        &self.worker_client(&addr, 0, Duration::from_secs(5)),
                        "GET",
                        "/v1/datasets",
                        None,
                    )
                    .ok()
                    .map(|r| r.body)
                });
                let Some(body) = body else { continue };
                let found = body
                    .get("datasets")
                    .and_then(Json::as_arr)
                    .and_then(|list| {
                        list.iter()
                            .find(|d| d.str_field("name") == Some(name.as_str()))
                            .map(|d| {
                                (
                                    d.u64_field("rows").unwrap_or(0),
                                    d.u64_field("columns").unwrap_or(0),
                                )
                            })
                    });
                if let Some(dims) = found {
                    entries.insert(name.clone(), dims);
                    break;
                }
            }
        }
        let list: Vec<Json> = entries
            .iter()
            .map(|(name, (rows, columns))| {
                Json::obj()
                    .set("name", name.as_str())
                    .set("rows", *rows)
                    .set("columns", *columns)
            })
            .collect();
        Json::obj().set("datasets", list)
    }

    /// Gateway registry first, then every live worker's exposition with
    /// a `worker="N"` label injected so same-named series stay apart.
    fn aggregated_metrics(&self) -> String {
        let mut out = telemetry::render(self.drain.inflight());
        for (w, addr) in self.supervisor.live() {
            let cfg = self.worker_client(&addr, 0, Duration::from_secs(5));
            if let Ok((200, text)) = client::fetch_text(&cfg, "/metrics") {
                out.push_str(&telemetry::relabel_worker(&text, w));
            }
        }
        out
    }

    fn task(&self, req: &Request) -> ServiceReply {
        // Track before the drain check, like the router: the drain
        // coordinator must never miss a fan-out that raced past the flag.
        let _inflight = self.drain.track();
        if self.drain.is_draining() {
            return reply_err(ErrorCode::Draining, "server is draining");
        }
        let body = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_owned())
            .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(msg) => return reply_err(ErrorCode::Parse, &msg),
        };
        let Some(name) = body.str_field("dataset") else {
            return reply_err(ErrorCode::BadRequest, "missing `dataset` field");
        };
        if self.local.datasets.contains_key(name) {
            if req.path == "/v1/discover" {
                return self.fan_out(name, &body);
            }
            // Validate/detect/repair/dedup on a sharded dataset: answer
            // from the full local snapshot through the shared router, so
            // the rendering path (and therefore the bytes) match a
            // single worker holding the whole dataset.
            let (status, body) = router::handle(&self.local, req);
            return ServiceReply::Json(status, body);
        }
        let name = name.to_owned();
        match self.homes.get(&name) {
            Some(holders) => self.proxy(req, &name, holders),
            None => reply_err(ErrorCode::NotFound, &format!("unknown dataset `{name}`")),
        }
    }

    /// Proxy a whole-dataset request to its home worker, failing over to
    /// replicas in digest order. The worker's response body is forwarded
    /// byte-for-byte.
    fn proxy(&self, req: &Request, name: &str, holders: &[usize]) -> ServiceReply {
        let deadline = self.deadline_of(req);
        let mut last: Option<client::ClientError> = None;
        for &w in holders {
            let Some(addr) = self.supervisor.worker_addr(w) else {
                continue;
            };
            let cfg = self.worker_client(&addr, 1, deadline);
            match client::forward(&cfg, &req.method, &req.path, Some(&req.body)) {
                Ok(raw) => {
                    telemetry::gateway_metrics().proxied.inc();
                    return ServiceReply::Bytes(raw.status, raw.body);
                }
                Err(e) => {
                    log(&format!(
                        "proxy of `{name}` to worker {w} failed ({}): failing over",
                        e.code.wire()
                    ));
                    last = Some(e);
                }
            }
        }
        match last {
            Some(e) => reply_err(
                e.code,
                &format!("every holder of `{name}` failed; last: {}", e.message),
            ),
            None => reply_err(
                ErrorCode::Overloaded,
                &format!("no live worker holds `{name}` (respawning); retry"),
            ),
        }
    }

    /// Row-sharded discovery: scatter to every slice holder under a
    /// split budget, then union + re-validate on the full snapshot.
    /// Always 200 — a missing shard degrades the merge, never the
    /// request.
    fn fan_out(&self, name: &str, body: &Json) -> ServiceReply {
        let started = Instant::now();
        let Some(holders) = self.shard_workers.get(name) else {
            return reply_err(ErrorCode::Internal, "sharded dataset lost its plan");
        };
        let Some(full) = self.local.datasets.get(name) else {
            return reply_err(ErrorCode::Internal, "sharded dataset lost its snapshot");
        };
        let shards = holders.len().max(1);

        // One request budget, split into per-shard shares. Counter caps
        // divide (ceil); the wall-clock deadline is shared because the
        // shards run concurrently.
        let deadline = match body.get("timeout_ms") {
            None => self.default_deadline,
            Some(v) => match v.as_u64() {
                Some(ms) => Duration::from_millis(ms).min(self.max_deadline),
                None => {
                    return reply_err(
                        ErrorCode::InvalidConfig,
                        "bad `timeout_ms` (want a non-negative integer)",
                    )
                }
            },
        };
        let mut budget = Budget::new().with_deadline(deadline);
        for (field, setter) in [
            (
                "max_nodes",
                Budget::with_max_nodes as fn(Budget, u64) -> Budget,
            ),
            ("max_rows", Budget::with_max_rows),
        ] {
            if let Some(v) = body.get(field) {
                match v.as_u64() {
                    Some(n) => budget = setter(budget, n),
                    None => {
                        return reply_err(
                            ErrorCode::InvalidConfig,
                            &format!("bad `{field}` (want a non-negative integer)"),
                        )
                    }
                }
            }
        }
        let share = budget.split(shards);
        let error = body.f64_field("error").unwrap_or(0.0);
        let mut wbody = Json::obj()
            .set("dataset", name)
            .set("max_lhs", body.u64_field("max_lhs").unwrap_or(2))
            .set("error", error)
            .set("timeout_ms", deadline.as_millis() as u64);
        if let Some(n) = share.max_nodes {
            wbody = wbody.set("max_nodes", n);
        }
        if let Some(n) = share.max_rows {
            wbody = wbody.set("max_rows", n);
        }
        let mut replies: Vec<ShardReply> = Vec::with_capacity(shards);
        let mut joins = Vec::new();
        for &w in holders {
            match self.supervisor.worker_addr(w) {
                None => replies.push(ShardReply {
                    worker: w,
                    outcome: Err("down (respawning)".into()),
                }),
                Some(addr) => {
                    let cfg = self.worker_client(&addr, 1, deadline);
                    let payload = wbody.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("deptree-fanout-{w}"))
                        .spawn(move || client::query(&cfg, "POST", "/v1/discover", Some(&payload)));
                    match handle {
                        Ok(h) => joins.push((w, h)),
                        Err(e) => replies.push(ShardReply {
                            worker: w,
                            outcome: Err(format!("fan-out thread failed to spawn: {e}")),
                        }),
                    }
                }
            }
        }
        for (w, h) in joins {
            let outcome = match h.join() {
                Ok(Ok(resp)) => Ok(resp.body),
                Ok(Err(e)) => Err(format!(
                    "{} after {} attempt(s): {}",
                    e.code.wire(),
                    e.attempts,
                    e.message
                )),
                Err(_) => Err("fan-out thread panicked".into()),
            };
            replies.push(ShardReply { worker: w, outcome });
        }

        let out = merge::merge_discover(name, full, error, shards, &replies, started.elapsed());
        let m = telemetry::gateway_metrics();
        m.fanout_latency.observe_duration(started.elapsed());
        if out.degraded {
            m.degraded.inc();
        }
        ServiceReply::Json(200, out.body)
    }

    /// The deadline a proxied request is working under, for sizing the
    /// gateway→worker I/O timeouts around it.
    fn deadline_of(&self, req: &Request) -> Duration {
        std::str::from_utf8(&req.body)
            .ok()
            .and_then(|t| Json::parse(t).ok())
            .and_then(|b| b.u64_field("timeout_ms"))
            .map_or(self.default_deadline, |ms| {
                Duration::from_millis(ms).min(self.max_deadline)
            })
    }

    /// Client config for one gateway→worker call: generous I/O timeouts
    /// beyond the task deadline (the worker enforces the real budget),
    /// retries only for the transient codes the client already knows.
    fn worker_client(&self, addr: &str, retries: u32, deadline: Duration) -> ClientConfig {
        ClientConfig {
            addr: addr.to_owned(),
            retries,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(1),
            io_timeout: deadline + Duration::from_secs(10),
            frame_timeout: deadline + Duration::from_secs(15),
            seed: shard::fnv1a64(addr),
            max_response_bytes: 64 << 20,
        }
    }
}

fn reply_err(code: ErrorCode, message: &str) -> ServiceReply {
    ServiceReply::Json(code.http_status(), error_body(code, message))
}

/// A running gateway: front-end server plus the supervised fleet.
pub struct GatewayHandle {
    server: ServerHandle,
    supervisor: Arc<Supervisor>,
    slice_dir: PathBuf,
}

impl GatewayHandle {
    /// The gateway's bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The lifecycle state, for wiring signal handlers.
    pub fn drain_state(&self) -> &Arc<DrainState> {
        self.server.drain_state()
    }

    /// Current worker pids, one entry per slot (`None` while down).
    pub fn worker_pids(&self) -> Vec<Option<u32>> {
        self.supervisor.pids()
    }

    /// Total worker respawns so far (initial spawns not counted).
    pub fn worker_restarts(&self) -> u64 {
        self.supervisor.restarts()
    }

    /// The orderly exit: stop accepting, drain in-flight fan-outs
    /// (cancelling stragglers past the grace), then SIGTERM every worker
    /// and reap it — SIGKILL past the child grace — and remove the slice
    /// files. No zombies survive this call.
    pub fn drain_and_join(self) {
        self.server.drain();
        self.server.join();
        self.supervisor.shutdown();
        let _ = std::fs::remove_dir_all(&self.slice_dir);
    }
}

/// Build the placement, boot the fleet, and bind the front end.
pub fn spawn_gateway(config: GatewayConfig) -> Result<GatewayHandle, DeptreeError> {
    static SLICE_SEQ: AtomicU64 = AtomicU64::new(0);
    let slice_dir = std::env::temp_dir().join(format!(
        "deptree-gateway-{}-{}",
        std::process::id(),
        SLICE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&slice_dir).map_err(|e| DeptreeError::Io {
        path: slice_dir.display().to_string(),
        message: e.to_string(),
    })?;
    let plan = match shard::build_plan(
        &config.datasets,
        config.workers,
        config.replicas,
        &slice_dir,
        config.lossy,
    ) {
        Ok(plan) => plan,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&slice_dir);
            return Err(e);
        }
    };
    for warning in &plan.warnings {
        log(&format!("warning: {warning}"));
    }

    let worker_args: Vec<Vec<String>> = plan
        .worker_specs
        .iter()
        .map(|specs| {
            let mut args = vec![
                "serve".to_owned(),
                "--addr".to_owned(),
                "127.0.0.1:0".to_owned(),
                "--threads".to_owned(),
                config.worker_threads.max(1).to_string(),
                "--default-timeout-ms".to_owned(),
                config.default_deadline.as_millis().to_string(),
                "--max-timeout-ms".to_owned(),
                config.max_deadline.as_millis().to_string(),
            ];
            for spec in specs {
                args.push("--data".to_owned());
                args.push(spec.clone());
            }
            if config.lossy {
                args.push("--lossy".to_owned());
            }
            args
        })
        .collect();

    // Register every gateway series before the first scrape, so the CI
    // smoke sees them at zero.
    let _ = telemetry::gateway_metrics();
    for w in 0..config.workers.max(1) {
        let _ = telemetry::worker_up(w);
        let _ = telemetry::worker_restarts(w);
    }

    let supervisor = Supervisor::start(SupervisorConfig {
        worker_bin: config.worker_bin.clone(),
        worker_args,
        respawn_base: config.respawn_base,
        respawn_max: config.respawn_max,
        fast_crash: config.fast_crash,
        quarantine_after: config.quarantine_after.max(1),
        quarantine_cooldown: config.quarantine_cooldown,
        probe_interval: config.probe_interval,
        probe_failures: config.probe_failures.max(1),
        spawn_timeout: config.spawn_timeout,
        child_grace: config.child_grace,
    });

    let drain = DrainState::new();
    let mut datasets = BTreeMap::new();
    for (name, r) in plan.sharded {
        datasets.insert(name, r);
    }
    let local = AppState {
        datasets,
        drain: Arc::clone(&drain),
        threads: config.worker_threads.max(1),
        default_deadline: config.default_deadline,
        max_deadline: config.max_deadline,
    };
    let state = Arc::new(GatewayState {
        supervisor: Arc::clone(&supervisor),
        local,
        shard_workers: plan.shard_workers,
        homes: plan.homes,
        drain,
        default_deadline: config.default_deadline,
        max_deadline: config.max_deadline,
    });
    match spawn_service(config.listen, state) {
        Ok(server) => Ok(GatewayHandle {
            server,
            supervisor,
            slice_dir,
        }),
        Err(e) => {
            supervisor.shutdown();
            let _ = std::fs::remove_dir_all(&slice_dir);
            Err(e)
        }
    }
}
